"""Perturbation metrics — the paper's key observable.

Section 5.2's headline result: "the current pulse injected during a
very short time (2.5 % of the generated clock period), has an impact on
the filter output during a much larger time.  This results in a clock
frequency ... perturbed during a large number of cycles and not only
during one cycle".  :func:`analyze_perturbation` quantifies exactly
that: how many output-clock cycles deviate, for how long the control
voltage is disturbed, and the ratio between fault duration and clock
period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import MeasurementError
from .measurements import clock_periods


@dataclass
class PerturbationReport:
    """Quantified impact of one injection on the PLL.

    :ivar injection_time: when the fault was injected (s).
    :ivar fault_duration: support of the injected pulse (s).
    :ivar nominal_period: unperturbed clock period (s).
    :ivar fault_to_period_ratio: ``fault_duration / nominal_period``
        (the paper's 2.5 %).
    :ivar perturbed_cycles: number of clock periods after injection
        deviating more than the tolerance.
    :ivar perturbed_span: time between the first and last perturbed
        cycle (s).
    :ivar max_period_deviation: worst absolute period error (s).
    :ivar max_period_deviation_frac: the same, relative to nominal.
    :ivar vctrl_disturbance_duration: how long the control voltage
        stays outside its tolerance band (s); None when no control
        trace was supplied.
    :ivar max_vctrl_deviation: worst control-voltage excursion (V).
    :ivar amplification: ``perturbed_span / fault_duration`` — how much
        longer the effect lasts than its cause.
    """

    injection_time: float
    fault_duration: float
    nominal_period: float
    fault_to_period_ratio: float
    perturbed_cycles: int
    perturbed_span: float
    max_period_deviation: float
    max_period_deviation_frac: float
    vctrl_disturbance_duration: float | None = None
    max_vctrl_deviation: float | None = None
    perturbed_cycle_times: np.ndarray = field(default_factory=lambda: np.array([]))

    @property
    def amplification(self):
        """Effect duration over cause duration."""
        if self.fault_duration <= 0:
            return float("inf")
        return self.perturbed_span / self.fault_duration

    def multi_cycle(self):
        """True when a single fault corrupted more than one cycle —
        the multiplicity the digital analysis must account for."""
        return self.perturbed_cycles > 1

    def summary(self):
        """Multi-line human-readable report."""
        lines = [
            f"injection at {self.injection_time * 1e6:.3f} us, fault lasts "
            f"{self.fault_duration * 1e12:.0f} ps "
            f"({self.fault_to_period_ratio:.1%} of the {self.nominal_period * 1e9:.1f} ns clock period)",
            f"perturbed cycles      : {self.perturbed_cycles}",
            f"perturbation span     : {self.perturbed_span * 1e6:.3f} us "
            f"({self.amplification:.0f}x the fault duration)",
            f"max period deviation  : {self.max_period_deviation * 1e12:.1f} ps "
            f"({self.max_period_deviation_frac:.2%})",
        ]
        if self.vctrl_disturbance_duration is not None:
            lines.append(
                f"vctrl disturbed for   : "
                f"{self.vctrl_disturbance_duration * 1e6:.3f} us "
                f"(max {self.max_vctrl_deviation * 1e3:.1f} mV)"
            )
        return "\n".join(lines)


def perturbed_cycles(clock_trace, injection_time, nominal_period,
                     tol_frac=0.001, threshold=2.5):
    """Cycle end times whose period deviates beyond tolerance.

    Only cycles ending after ``injection_time`` are considered.
    """
    edges, periods = clock_periods(clock_trace, threshold)
    ends = edges[1:]
    after = ends >= injection_time
    deviant = np.abs(periods - nominal_period) > tol_frac * nominal_period
    return ends[after & deviant]


def analyze_perturbation(
    clock_trace,
    injection_time,
    fault_duration,
    nominal_period,
    tol_frac=0.001,
    threshold=2.5,
    vctrl_trace=None,
    vctrl_nominal=None,
    vctrl_tol=0.01,
):
    """Build a :class:`PerturbationReport` for one injection.

    :param clock_trace: probed VCO output (analog) or clock signal.
    :param injection_time: absolute injection time (s).
    :param fault_duration: support of the injected transient (s).
    :param nominal_period: expected clock period (s).
    :param tol_frac: period tolerance as a fraction of nominal — the
        "additional tolerance on the values" of Section 4.1.
    :param vctrl_trace: optional control-voltage trace.
    :param vctrl_nominal: locked control voltage; default: mean of the
        trace before injection.
    :param vctrl_tol: control-voltage tolerance band in volts.
    """
    edges, periods = clock_periods(clock_trace, threshold)
    ends = edges[1:]
    after = ends >= injection_time
    if not after.any():
        raise MeasurementError("no clock cycles after the injection time")
    deviation = np.abs(periods - nominal_period)
    deviant = deviation > tol_frac * nominal_period
    hit = after & deviant
    times = ends[hit]
    count = int(hit.sum())
    span = float(times[-1] - injection_time) if count else 0.0
    max_dev = float(deviation[after].max())

    vctrl_duration = None
    max_vctrl = None
    if vctrl_trace is not None:
        if vctrl_nominal is None:
            pre = vctrl_trace.segment(None, injection_time)
            vctrl_nominal = pre.mean() if len(pre) >= 2 else vctrl_trace.at(injection_time)
        post = vctrl_trace.segment(injection_time, None)
        dev = np.abs(post.values - vctrl_nominal)
        max_vctrl = float(dev.max())
        outside = dev > vctrl_tol
        if outside.any():
            vctrl_duration = float(
                post.times[np.nonzero(outside)[0][-1]] - injection_time
            )
        else:
            vctrl_duration = 0.0

    return PerturbationReport(
        injection_time=injection_time,
        fault_duration=fault_duration,
        nominal_period=nominal_period,
        fault_to_period_ratio=fault_duration / nominal_period,
        perturbed_cycles=count,
        perturbed_span=span,
        max_period_deviation=max_dev,
        max_period_deviation_frac=max_dev / nominal_period,
        vctrl_disturbance_duration=vctrl_duration,
        max_vctrl_deviation=max_vctrl,
        perturbed_cycle_times=times,
    )
