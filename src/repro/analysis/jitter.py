"""Clock-jitter decomposition.

The PLL experiments measure *how long* the clock is wrong; these
helpers measure *how* it is wrong, with the standard timing metrics:

* **period jitter** — deviation of each period from nominal;
* **cycle-to-cycle jitter** — difference between adjacent periods
  (what a digital receiver's timing margin actually sees);
* **time interval error (TIE)** — accumulated phase displacement of
  each edge against an ideal clock, the integral view that makes a
  frequency disturbance visible long after periods recovered.

All operate on the interpolated edges of a probed waveform, so they
inherit the sub-timestep resolution of the sine-output VCO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import MeasurementError
from .measurements import clock_edges


@dataclass
class JitterReport:
    """Summary statistics of one clock segment.

    :ivar n_cycles: number of measured periods.
    :ivar period_mean: average period (s).
    :ivar period_jitter_rms: RMS deviation from the *mean* period.
    :ivar period_jitter_pp: peak-to-peak period deviation.
    :ivar c2c_jitter_rms: RMS cycle-to-cycle jitter.
    :ivar c2c_jitter_pp: peak-to-peak cycle-to-cycle jitter.
    :ivar tie_pp: peak-to-peak time interval error vs the ideal clock.
    :ivar tie_final: TIE of the last edge (net accumulated phase slip).
    """

    n_cycles: int
    period_mean: float
    period_jitter_rms: float
    period_jitter_pp: float
    c2c_jitter_rms: float
    c2c_jitter_pp: float
    tie_pp: float
    tie_final: float

    def summary(self):
        """Readable multi-line rendering (picosecond units)."""
        return "\n".join([
            f"cycles measured      : {self.n_cycles}",
            f"mean period          : {self.period_mean * 1e9:.4f} ns",
            f"period jitter        : {self.period_jitter_rms * 1e12:.2f} ps "
            f"rms / {self.period_jitter_pp * 1e12:.2f} ps pp",
            f"cycle-to-cycle jitter: {self.c2c_jitter_rms * 1e12:.2f} ps "
            f"rms / {self.c2c_jitter_pp * 1e12:.2f} ps pp",
            f"time interval error  : {self.tie_pp * 1e12:.2f} ps pp, "
            f"net slip {self.tie_final * 1e12:.2f} ps",
        ])


def edge_times(trace, threshold=2.5, t0=None, t1=None):
    """Rising-edge times of a clock segment.

    :raises MeasurementError: with fewer than three edges.
    """
    seg = trace.segment(t0, t1)
    edges = clock_edges(seg, threshold)
    if len(edges) < 3:
        raise MeasurementError(
            f"trace {trace.name}: need >= 3 edges for jitter analysis"
        )
    return edges


def time_interval_error(trace, nominal_period=None, threshold=2.5,
                        t0=None, t1=None):
    """Per-edge TIE against an ideal clock: ``(edges, tie)``.

    The ideal clock starts at the first measured edge and ticks at
    ``nominal_period`` (default: the segment's mean period, which
    de-trends any static frequency offset).
    """
    edges = edge_times(trace, threshold, t0, t1)
    if nominal_period is None:
        nominal_period = float(np.mean(np.diff(edges)))
    if nominal_period <= 0:
        raise MeasurementError("nominal period must be positive")
    ideal = edges[0] + nominal_period * np.arange(len(edges))
    return edges, edges - ideal


def cycle_to_cycle_jitter(trace, threshold=2.5, t0=None, t1=None):
    """Adjacent-period differences: ``(edges[2:], c2c)``."""
    edges = edge_times(trace, threshold, t0, t1)
    periods = np.diff(edges)
    return edges[2:], np.diff(periods)


def analyze_jitter(trace, nominal_period=None, threshold=2.5,
                   t0=None, t1=None):
    """Build a :class:`JitterReport` for one clock segment."""
    edges = edge_times(trace, threshold, t0, t1)
    periods = np.diff(edges)
    mean_period = float(np.mean(periods))
    period_dev = periods - mean_period
    c2c = np.diff(periods)
    _edges, tie = time_interval_error(
        trace, nominal_period, threshold, t0, t1
    )
    return JitterReport(
        n_cycles=len(periods),
        period_mean=mean_period,
        period_jitter_rms=float(np.std(period_dev)),
        period_jitter_pp=float(np.ptp(period_dev)),
        c2c_jitter_rms=float(np.std(c2c)) if len(c2c) else 0.0,
        c2c_jitter_pp=float(np.ptp(c2c)) if len(c2c) else 0.0,
        tie_pp=float(np.ptp(tie)),
        tie_final=float(tie[-1]),
    )


def phase_slip_cycles(trace, nominal_period, threshold=2.5, t0=None,
                      t1=None):
    """Net accumulated slip in whole clock cycles over a segment.

    The integer a digital block clocked by this waveform would drift
    by against a golden run — the feed-through metric of Section 5.2.
    """
    _edges, tie = time_interval_error(
        trace, nominal_period, threshold, t0, t1
    )
    return float(tie[-1] / nominal_period)
