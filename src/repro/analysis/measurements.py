"""Waveform measurements.

Clock-period extraction, lock detection and settling measurements used
by the result-analysis stage.  Period measurements interpolate the
probed *analog* waveform (the VCO's sine output), recovering edge
times with sub-timestep resolution — the precision behind the
perturbed-cycle counts of Figures 6–8.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import MeasurementError


def clock_edges(trace, threshold=2.5, direction="rise"):
    """Interpolated threshold-crossing times of a clock waveform."""
    return trace.crossings(threshold, direction=direction)


def clock_periods(trace, threshold=2.5, direction="rise"):
    """``(edge_times, periods)`` between successive same-direction edges.

    ``periods[i]`` is the interval ending at ``edge_times[i + 1]``.
    """
    edges = clock_edges(trace, threshold, direction)
    if len(edges) < 2:
        raise MeasurementError(
            f"trace {trace.name}: fewer than two {direction} crossings"
        )
    return edges, np.diff(edges)


def frequency_trace(trace, threshold=2.5):
    """Per-cycle instantaneous frequency: ``(cycle_end_times, freqs)``."""
    edges, periods = clock_periods(trace, threshold)
    return edges[1:], 1.0 / periods


def mean_frequency(trace, threshold=2.5, t0=None, t1=None):
    """Average frequency over a window from edge counting."""
    seg = trace.segment(t0, t1)
    edges = clock_edges(seg, threshold)
    if len(edges) < 2:
        raise MeasurementError(f"trace {trace.name}: not enough edges")
    return (len(edges) - 1) / (edges[-1] - edges[0])


def period_jitter(trace, threshold=2.5, t0=None, t1=None):
    """RMS deviation of cycle periods from their mean (seconds)."""
    seg = trace.segment(t0, t1)
    _edges, periods = clock_periods(seg, threshold)
    return float(np.std(periods))


def lock_time(trace, nominal_period, tol_frac=0.01, consecutive=20,
              threshold=2.5):
    """Time after which the clock stays within tolerance of nominal.

    Returns the end time of the first run of ``consecutive`` periods
    all within ``tol_frac`` of ``nominal_period``; the lock is also
    required to *hold* to the end of the trace (no later excursion).

    :raises MeasurementError: if the clock never locks.
    """
    edges, periods = clock_periods(trace, threshold)
    good = np.abs(periods - nominal_period) <= tol_frac * nominal_period
    run = 0
    candidate = None
    for i, ok in enumerate(good):
        run = run + 1 if ok else 0
        if run == consecutive and candidate is None:
            candidate = i
        if not ok:
            candidate = None
            run = 0
    if candidate is None:
        raise MeasurementError(
            f"trace {trace.name}: no {consecutive}-cycle window within "
            f"{tol_frac:.2%} of {nominal_period}"
        )
    return float(edges[candidate + 1 - consecutive + 1])


def is_locked(trace, nominal_period, tol_frac=0.01, consecutive=20,
              threshold=2.5):
    """True when :func:`lock_time` succeeds."""
    try:
        lock_time(trace, nominal_period, tol_frac, consecutive, threshold)
        return True
    except MeasurementError:
        return False


def settling_time(trace, final_value, tol, t_from=None):
    """Last time the waveform is outside ``final_value ± tol``.

    Measured relative to ``t_from`` (default: trace start).  Returns
    0.0 when the waveform never leaves the band.
    """
    seg = trace.segment(t_from, None)
    times, values = seg.times, seg.values
    outside = np.abs(values - final_value) > tol
    if not outside.any():
        return 0.0
    last = times[np.nonzero(outside)[0][-1]]
    origin = t_from if t_from is not None else times[0]
    return float(last - origin)


def peak_deviation(trace, reference, t0=None, t1=None):
    """Maximum absolute deviation from a reference level in a window."""
    seg = trace.segment(t0, t1)
    seg._require_samples()
    return float(np.nanmax(np.abs(seg.values - reference)))


def rise_time(trace, v_low, v_high, lo_frac=0.1, hi_frac=0.9):
    """10–90 % rise time of a step-like waveform.

    :raises MeasurementError: when the waveform never crosses the
        thresholds.
    """
    swing = v_high - v_low
    t_lo = trace.crossings(v_low + lo_frac * swing, direction="rise")
    t_hi = trace.crossings(v_low + hi_frac * swing, direction="rise")
    if len(t_lo) == 0 or len(t_hi) == 0:
        raise MeasurementError(f"trace {trace.name}: no rising transition")
    later = t_hi[t_hi >= t_lo[0]]
    if len(later) == 0:
        raise MeasurementError(f"trace {trace.name}: incomplete transition")
    return float(later[0] - t_lo[0])
