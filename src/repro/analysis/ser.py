"""Soft-error-rate estimation from critical charge.

The last step of the "identify the type of particles the circuit will
be sensitive to" argument (Figure 8 discussion): once a node's
critical charge is known, the environment's charge-deposition spectrum
converts it into an error *rate*.  The classical empirical model
(Hazucha & Svensson) takes the collected-charge spectrum as
exponential::

    SER = F * K * A * exp(-Qcrit / Qs)

with particle flux ``F``, sensitive area ``A``, collection-efficiency
slope ``Qs`` and a technology constant ``K``.  The numbers here are
order-of-magnitude engineering estimates — exactly what an *early*
dependability analysis is for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import MeasurementError

#: Sea-level neutron flux (>10 MeV), particles / (cm^2 * s) — the
#: conventional ~13 n/cm^2/h figure.
SEA_LEVEL_NEUTRON_FLUX = 13.0 / 3600.0

#: Seconds per billion hours (the FIT normalisation).
_SECONDS_PER_1E9_HOURS = 1e9 * 3600.0


@dataclass
class SERModel:
    """An exponential collected-charge spectrum environment.

    :ivar flux: particle flux in particles / (cm^2 * s).
    :ivar q_s: charge-collection slope in coulombs (how fast the
        deposition probability falls with charge); ~20-50 fC for
        bulk CMOS around the paper's era.
    :ivar k: dimensionless technology/geometry fitting constant.
    """

    flux: float = SEA_LEVEL_NEUTRON_FLUX
    q_s: float = 25e-15
    k: float = 2.2e-5

    def __post_init__(self):
        if self.flux <= 0 or self.q_s <= 0 or self.k <= 0:
            raise MeasurementError("flux, q_s and k must be positive")

    def upset_rate(self, q_crit, area_cm2):
        """Upsets per second for one node.

        :param q_crit: critical charge in coulombs.
        :param area_cm2: sensitive (drain/node) area in cm^2.
        """
        if q_crit <= 0:
            raise MeasurementError("q_crit must be positive")
        if area_cm2 <= 0:
            raise MeasurementError("area must be positive")
        return self.flux * self.k * area_cm2 * math.exp(-q_crit / self.q_s)

    def fit_rate(self, q_crit, area_cm2):
        """The same rate in FIT (failures per 10^9 device-hours)."""
        return self.upset_rate(q_crit, area_cm2) * _SECONDS_PER_1E9_HOURS

    def qcrit_for_fit_target(self, fit_target, area_cm2):
        """Critical charge needed to stay below a FIT budget.

        Inverts the exponential model: the hardening requirement the
        campaign's Qcrit measurement is compared against.
        """
        if fit_target <= 0:
            raise MeasurementError("fit_target must be positive")
        rate = fit_target / _SECONDS_PER_1E9_HOURS
        argument = rate / (self.flux * self.k * area_cm2)
        if argument >= 1.0:
            return 0.0  # any charge meets the budget
        return -self.q_s * math.log(argument)

    def derate(self, rate, masking_factor):
        """Apply an architectural derating factor in [0, 1].

        E.g. the SET latching window (bench_set_latch_window.py) or
        the per-register masking rates a campaign measures: the
        fraction of raw upsets that become errors.
        """
        if not 0.0 <= masking_factor <= 1.0:
            raise MeasurementError("masking_factor must be in [0, 1]")
        return rate * masking_factor


def compare_nodes(model, nodes, area_cm2=1e-8):
    """FIT table for several (name, q_crit) pairs at equal area.

    Returns ``[(name, q_crit, fit)]`` sorted most-sensitive first.
    """
    rows = [
        (name, q_crit, model.fit_rate(q_crit, area_cm2))
        for name, q_crit in nodes
    ]
    rows.sort(key=lambda row: -row[2])
    return rows


def format_ser_table(rows):
    """Fixed-width rendering of :func:`compare_nodes` output."""
    lines = [f"{'node':30s} {'Qcrit (fC)':>11s} {'FIT':>12s}"]
    for name, q_crit, fit in rows:
        lines.append(f"{name:30s} {q_crit * 1e15:11.1f} {fit:12.3g}")
    return "\n".join(lines)
