"""Sensitivity sweeps over fault parameters.

Figure 8 of the paper varies the pulse definition (PA, RT, FT, PW) and
observes that "the amplitude and length of the pulse have clearly a
cumulative effect"; such sweeps "may allow the designer to identify the
type of particles the circuit will be sensitive to".  This module runs
a metric function over a list of fault variants and summarises the
trend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import MeasurementError


@dataclass
class SweepPoint:
    """One sweep entry: the fault variant, its charge, and metrics."""

    label: str
    charge: float
    metrics: dict

    def metric(self, name):
        """Look up one metric value by name."""
        try:
            return self.metrics[name]
        except KeyError:
            raise MeasurementError(
                f"sweep point {self.label!r} has no metric {name!r}"
            ) from None


class SensitivitySweep:
    """Collects per-variant metrics and analyses monotonic trends."""

    def __init__(self):
        self.points = []

    def add(self, label, charge, metrics):
        """Record one variant's results."""
        self.points.append(SweepPoint(label, float(charge), dict(metrics)))

    def run(self, variants, evaluate, label_fn=None, charge_fn=None):
        """Evaluate ``evaluate(variant) -> metrics dict`` per variant.

        :param label_fn: variant -> label (default: ``describe()`` or
            repr).
        :param charge_fn: variant -> charge (default: ``charge()`` when
            available, else NaN).
        """
        for variant in variants:
            if label_fn is not None:
                label = label_fn(variant)
            elif hasattr(variant, "describe"):
                label = variant.describe()
            else:
                label = repr(variant)
            if charge_fn is not None:
                charge = charge_fn(variant)
            elif hasattr(variant, "charge"):
                charge = variant.charge()
            else:
                charge = float("nan")
            self.add(label, charge, evaluate(variant))
        return self

    def metric_series(self, name):
        """``(charges, values)`` arrays for one metric, in insertion
        order."""
        charges = np.array([p.charge for p in self.points])
        values = np.array([p.metric(name) for p in self.points], dtype=float)
        return charges, values

    def is_monotonic_in_charge(self, name, strict=False):
        """True when the metric never decreases as charge increases.

        The Figure 8 "cumulative effect": more injected charge, more
        disturbance.
        """
        charges, values = self.metric_series(name)
        order = np.argsort(charges, kind="stable")
        sorted_values = values[order]
        diffs = np.diff(sorted_values)
        return bool((diffs > 0).all() if strict else (diffs >= 0).all())

    def spearman(self, name):
        """Spearman rank correlation between charge and a metric."""
        from scipy.stats import spearmanr

        charges, values = self.metric_series(name)
        if len(charges) < 3:
            raise MeasurementError("need at least 3 points for correlation")
        rho, _p = spearmanr(charges, values)
        return float(rho)

    def table(self, metric_names):
        """Fixed-width text table of the sweep results."""
        header = ["variant", "charge (pC)"] + list(metric_names)
        rows = [header]
        for p in self.points:
            row = [p.label, f"{p.charge * 1e12:.3g}"]
            for name in metric_names:
                value = p.metric(name)
                row.append(f"{value:.4g}" if isinstance(value, float) else str(value))
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
