"""Critical-charge (Qcrit) estimation.

Figure 8's discussion says parameter sweeps "may allow the designer to
identify the type of particles the circuit will be sensitive to".  The
quantitative form of that statement is the **critical charge**: the
smallest deposited charge whose injection produces an observable
error.  Particles depositing less are harmless; the LET spectrum above
Qcrit sets the soft-error rate.

:func:`find_critical_charge` locates Qcrit by bisection over the pulse
amplitude, reusing any run-and-classify callable, so it works for any
node of any circuit the flow can simulate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import MeasurementError
from ..faults.current_pulse import TrapezoidPulse


@dataclass
class QcritResult:
    """Outcome of a critical-charge search.

    :ivar q_crit: estimated critical charge (C) — midpoint of the
        final bracket.
    :ivar q_pass: largest tested charge that produced no error.
    :ivar q_fail: smallest tested charge that produced an error.
    :ivar evaluations: number of injection runs performed.
    :ivar history: list of ``(charge, errored)`` pairs in test order.
    """

    q_crit: float
    q_pass: float
    q_fail: float
    evaluations: int
    history: list

    @property
    def uncertainty(self):
        """Half-width of the final bracket (C)."""
        return 0.5 * (self.q_fail - self.q_pass)

    def summary(self):
        """One-line human-readable result."""
        return (
            f"Qcrit = {self.q_crit * 1e15:.1f} fC "
            f"(+/- {self.uncertainty * 1e15:.1f} fC, "
            f"{self.evaluations} runs)"
        )


def scaled_pulse(reference, charge):
    """A copy of ``reference`` re-amplituded to carry ``charge``.

    Shape (RT, FT, PW) is preserved; only PA scales, which is how LET
    varies for a fixed strike geometry.
    """
    if charge <= 0:
        raise MeasurementError("charge must be positive")
    base_charge = abs(reference.charge())
    factor = charge / base_charge
    return TrapezoidPulse(
        reference.pa * factor, reference.rt, reference.ft, reference.pw
    )


def find_critical_charge(
    errored,
    reference_pulse,
    q_lo=1e-16,
    q_hi=1e-11,
    rel_tol=0.05,
    max_evaluations=40,
):
    """Bisect for the smallest error-producing charge.

    :param errored: callable ``(pulse) -> bool`` that injects the
        pulse in a fresh simulation and reports whether an observable
        error occurred (typically: build circuit, inject, compare or
        measure, threshold).
    :param reference_pulse: the pulse *shape*; amplitude is rescaled
        to each trial charge via :func:`scaled_pulse`.
    :param q_lo: charge assumed (and verified) harmless.
    :param q_hi: charge assumed (and verified) harmful.
    :param rel_tol: stop when the bracket is within this fraction of
        its midpoint.
    :param max_evaluations: hard cap on injection runs.
    :returns: a :class:`QcritResult`.
    :raises MeasurementError: when the initial bracket is invalid
        (``q_lo`` already errors, or ``q_hi`` does not).
    """
    if not 0 < q_lo < q_hi:
        raise MeasurementError("need 0 < q_lo < q_hi")
    history = []

    def test(charge):
        result = bool(errored(scaled_pulse(reference_pulse, charge)))
        history.append((charge, result))
        return result

    if test(q_lo):
        raise MeasurementError(
            f"q_lo = {q_lo:g} C already produces an error; lower it"
        )
    if not test(q_hi):
        raise MeasurementError(
            f"q_hi = {q_hi:g} C produces no error; raise it"
        )

    q_pass, q_fail = q_lo, q_hi
    while len(history) < max_evaluations:
        mid = 0.5 * (q_pass + q_fail)
        if (q_fail - q_pass) <= rel_tol * mid:
            break
        if test(mid):
            q_fail = mid
        else:
            q_pass = mid

    return QcritResult(
        q_crit=0.5 * (q_pass + q_fail),
        q_pass=q_pass,
        q_fail=q_fail,
        evaluations=len(history),
        history=history,
    )
