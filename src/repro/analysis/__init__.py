"""Result analysis: measurements, perturbation metrics, sweeps."""

from .jitter import (
    JitterReport,
    analyze_jitter,
    cycle_to_cycle_jitter,
    phase_slip_cycles,
    time_interval_error,
)
from .measurements import (
    clock_edges,
    clock_periods,
    frequency_trace,
    is_locked,
    lock_time,
    mean_frequency,
    peak_deviation,
    period_jitter,
    rise_time,
    settling_time,
)
from .ser import (
    SEA_LEVEL_NEUTRON_FLUX,
    SERModel,
    compare_nodes,
    format_ser_table,
)
from .qcrit import QcritResult, find_critical_charge, scaled_pulse
from .perturbation import (
    PerturbationReport,
    analyze_perturbation,
    perturbed_cycles,
)
from .sensitivity import SensitivitySweep, SweepPoint

__all__ = [
    "JitterReport",
    "PerturbationReport",
    "QcritResult",
    "SEA_LEVEL_NEUTRON_FLUX",
    "SERModel",
    "SensitivitySweep",
    "SweepPoint",
    "analyze_jitter",
    "analyze_perturbation",
    "clock_edges",
    "cycle_to_cycle_jitter",
    "find_critical_charge",
    "clock_periods",
    "compare_nodes",
    "format_ser_table",
    "frequency_trace",
    "is_locked",
    "lock_time",
    "mean_frequency",
    "peak_deviation",
    "period_jitter",
    "perturbed_cycles",
    "phase_slip_cycles",
    "time_interval_error",
    "rise_time",
    "scaled_pulse",
    "settling_time",
]
