"""Netlist descriptions: schema, elaboration, instrumentation passes."""

from .loader import (
    design_factory,
    dumps,
    elaborate,
    load_file,
    loads,
    save_file,
)
from .registry import known_types, lookup, register
from .schema import BusDecl, InstanceDecl, Netlist, NodeDecl, SignalDecl
from .textformat import (
    dumps_text,
    load_text_file,
    loads_text,
    save_text_file,
)
from .transform import (
    attach_current_saboteur,
    insert_digital_saboteur,
    instrument_all_current_nodes,
    instrument_all_digital_nets,
)

__all__ = [
    "BusDecl",
    "InstanceDecl",
    "Netlist",
    "NodeDecl",
    "SignalDecl",
    "attach_current_saboteur",
    "design_factory",
    "dumps",
    "dumps_text",
    "elaborate",
    "insert_digital_saboteur",
    "instrument_all_current_nodes",
    "instrument_all_digital_nets",
    "known_types",
    "load_file",
    "load_text_file",
    "loads",
    "loads_text",
    "lookup",
    "register",
    "save_file",
    "save_text_file",
]
