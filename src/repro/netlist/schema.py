"""Netlist description schema.

The paper's flow transforms the circuit *description* (VHDL text)
before simulating it.  Our equivalent description is a declarative,
JSON-serialisable netlist: named signals, analog nodes and buses plus a
list of component instances with port maps.  Instrumentation passes
(:mod:`repro.netlist.transform`) rewrite this description — inserting
saboteurs by splitting nets — and :mod:`repro.netlist.loader`
elaborates it into a live simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import NetlistError


@dataclass
class SignalDecl:
    """A digital signal declaration."""

    name: str
    init: str = "U"


@dataclass
class NodeDecl:
    """An analog node declaration; ``kind`` is "voltage" or "current"."""

    name: str
    kind: str = "voltage"
    init: float = 0.0

    def __post_init__(self):
        if self.kind not in ("voltage", "current"):
            raise NetlistError(
                f"node {self.name}: kind must be voltage or current, "
                f"got {self.kind!r}"
            )


@dataclass
class BusDecl:
    """A digital bus declaration."""

    name: str
    width: int
    init: object = "U"

    def __post_init__(self):
        if self.width <= 0:
            raise NetlistError(f"bus {self.name}: width must be positive")


@dataclass
class InstanceDecl:
    """One component instance.

    :ivar type: registered component type name.
    :ivar name: instance name (unique in the netlist).
    :ivar ports: mapping port name -> net name (signal/node/bus).
    :ivar params: constructor parameters (engineering strings allowed).
    """

    type: str
    name: str
    ports: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)


@dataclass
class Netlist:
    """A complete circuit description.

    :ivar name: top-level design name.
    :ivar dt: analog solver timestep (seconds or engineering string).
    :ivar probes: net names recorded as traces on elaboration.
    :ivar outputs: subset of probes treated as system outputs by
        campaigns built from this netlist.
    """

    name: str
    signals: list = field(default_factory=list)
    nodes: list = field(default_factory=list)
    buses: list = field(default_factory=list)
    instances: list = field(default_factory=list)
    probes: list = field(default_factory=list)
    outputs: list = field(default_factory=list)
    dt: object = 1e-9

    def __post_init__(self):
        self.validate()

    # -- net namespace ---------------------------------------------------

    def net_names(self):
        """All declared net names (signals, nodes, buses)."""
        names = [s.name for s in self.signals]
        names += [n.name for n in self.nodes]
        names += [b.name for b in self.buses]
        return names

    def instance_names(self):
        """All instance names."""
        return [inst.name for inst in self.instances]

    def find_instance(self, name):
        """Look up an instance declaration by name.

        :raises NetlistError: when absent.
        """
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise NetlistError(f"netlist {self.name}: no instance {name!r}")

    def find_signal(self, name):
        """Look up a signal declaration by name."""
        for sig in self.signals:
            if sig.name == name:
                return sig
        raise NetlistError(f"netlist {self.name}: no signal {name!r}")

    # -- validation -----------------------------------------------------------

    def validate(self):
        """Structural checks: unique names, resolvable port references.

        :raises NetlistError: on the first inconsistency.
        """
        nets = self.net_names()
        duplicates = {n for n in nets if nets.count(n) > 1}
        if duplicates:
            raise NetlistError(
                f"netlist {self.name}: duplicate net names {sorted(duplicates)}"
            )
        inst_names = self.instance_names()
        dup_inst = {n for n in inst_names if inst_names.count(n) > 1}
        if dup_inst:
            raise NetlistError(
                f"netlist {self.name}: duplicate instances {sorted(dup_inst)}"
            )
        net_set = set(nets)
        for inst in self.instances:
            for port, net in inst.ports.items():
                if net not in net_set:
                    raise NetlistError(
                        f"netlist {self.name}: instance {inst.name} port "
                        f"{port} references undeclared net {net!r}"
                    )
        # Probes may also name *internal* nets that assemblies (PLL,
        # ADC, ...) create during elaboration — e.g. "pll.icp" — so
        # unresolved names are allowed here and checked by the loader
        # once the design is live.
        for out in self.outputs:
            if out not in self.probes:
                raise NetlistError(
                    f"netlist {self.name}: output {out!r} must also be "
                    "probed"
                )
        return self

    # -- (de)serialisation --------------------------------------------------------

    def to_dict(self):
        """Plain-dict form for JSON serialisation."""
        return {
            "name": self.name,
            "dt": self.dt,
            "signals": [vars(s).copy() for s in self.signals],
            "nodes": [vars(n).copy() for n in self.nodes],
            "buses": [vars(b).copy() for b in self.buses],
            "instances": [
                {
                    "type": i.type,
                    "name": i.name,
                    "ports": dict(i.ports),
                    "params": dict(i.params),
                }
                for i in self.instances
            ],
            "probes": list(self.probes),
            "outputs": list(self.outputs),
        }

    @classmethod
    def from_dict(cls, data):
        """Build (and validate) a netlist from a plain dict.

        :raises NetlistError: on malformed input.
        """
        try:
            return cls(
                name=data["name"],
                dt=data.get("dt", 1e-9),
                signals=[SignalDecl(**s) for s in data.get("signals", [])],
                nodes=[NodeDecl(**n) for n in data.get("nodes", [])],
                buses=[BusDecl(**b) for b in data.get("buses", [])],
                instances=[InstanceDecl(**i) for i in data.get("instances", [])],
                probes=list(data.get("probes", [])),
                outputs=list(data.get("outputs", [])),
            )
        except (KeyError, TypeError) as exc:
            raise NetlistError(f"malformed netlist dict: {exc}") from exc

    def copy(self):
        """Deep copy (transform passes never mutate their input)."""
        return Netlist.from_dict(self.to_dict())
