"""Description-level instrumentation transforms.

The paper's instrumentation happens on the circuit *description*
("an instrumentation is done by transforming the VHDL code before
synthesis", Section 3.1).  These passes do the same on netlists:

* :func:`insert_digital_saboteur` splits a digital net between its
  driver and its readers and splices a
  :class:`~repro.injection.saboteur.DigitalSaboteur` in between — the
  saboteur mechanism, limited (exactly as the paper notes) to
  interconnections.
* :func:`attach_current_saboteur` adds a current-pulse saboteur on an
  analog current node — no rewiring needed, since current injection is
  a superposition.

Every pass returns a *new* netlist; descriptions are immutable inputs.
"""

from __future__ import annotations

from ..core.errors import NetlistError
from .registry import lookup
from .schema import InstanceDecl, Netlist, SignalDecl


def _reader_ports(netlist, net):
    """(instance, port) pairs that *read* ``net``."""
    readers = []
    for inst in netlist.instances:
        entry = lookup(inst.type)
        for port, bound in inst.ports.items():
            if bound == net and port in entry.inputs:
                readers.append((inst.name, port))
    return readers


def _driver_ports(netlist, net):
    """(instance, port) pairs that *drive* ``net``."""
    drivers = []
    for inst in netlist.instances:
        entry = lookup(inst.type)
        for port, bound in inst.ports.items():
            if bound == net and port in entry.outputs:
                drivers.append((inst.name, port))
    return drivers


def insert_digital_saboteur(netlist, net, saboteur_name=None):
    """Splice a digital saboteur into a signal net.

    The original net keeps its driver; readers are rewired to a new net
    ``"<net>__sab"`` driven by the saboteur.  Probes on the net are
    left on the driver side (the saboteur corrupts what *readers* see,
    which is what fault effects depend on; probe the new net explicitly
    to observe the corrupted value).

    :returns: ``(new_netlist, saboteur_instance_name, new_net_name)``.
    :raises NetlistError: when the net is unknown, is not a signal, or
        has no readers to corrupt.
    """
    netlist.find_signal(net)  # raises for nodes/buses/unknown
    readers = _reader_ports(netlist, net)
    if not readers:
        raise NetlistError(
            f"net {net!r} has no reader ports; a serial saboteur there "
            "would corrupt nothing"
        )
    result = netlist.copy()
    new_net = f"{net}__sab"
    if new_net in result.net_names():
        raise NetlistError(f"net {new_net!r} already exists")
    saboteur_name = saboteur_name or f"sab_{net.replace('[', '_').replace(']', '')}"
    if saboteur_name in result.instance_names():
        raise NetlistError(f"instance {saboteur_name!r} already exists")

    result.signals.append(SignalDecl(name=new_net, init="U"))
    for inst_name, port in readers:
        result.find_instance(inst_name).ports[port] = new_net
    result.instances.append(
        InstanceDecl(
            type="DigitalSaboteur",
            name=saboteur_name,
            ports={"sig_in": net, "sig_out": new_net},
        )
    )
    result.validate()
    return result, saboteur_name, new_net


def attach_current_saboteur(netlist, node, saboteur_name=None):
    """Attach a current-pulse saboteur to a current node.

    :returns: ``(new_netlist, saboteur_instance_name)``.
    :raises NetlistError: when the node is unknown or not a current
        node.
    """
    matches = [n for n in netlist.nodes if n.name == node]
    if not matches:
        raise NetlistError(f"no analog node {node!r} in netlist")
    if matches[0].kind != "current":
        raise NetlistError(
            f"node {node!r} is a voltage node; current saboteurs need a "
            "current-summing node"
        )
    result = netlist.copy()
    saboteur_name = saboteur_name or f"sab_{node.replace('.', '_')}"
    if saboteur_name in result.instance_names():
        raise NetlistError(f"instance {saboteur_name!r} already exists")
    result.instances.append(
        InstanceDecl(
            type="CurrentPulseSaboteur",
            name=saboteur_name,
            ports={"node": node},
        )
    )
    result.validate()
    return result, saboteur_name


def instrument_all_digital_nets(netlist):
    """Insert saboteurs on every signal net with readers.

    :returns: ``(new_netlist, {net: saboteur_name})``.
    """
    current = netlist
    placed = {}
    for decl in netlist.signals:
        if not _reader_ports(netlist, decl.name):
            continue
        current, sab_name, _new_net = insert_digital_saboteur(
            current, decl.name
        )
        placed[decl.name] = sab_name
    return current, placed


def instrument_all_current_nodes(netlist):
    """Attach a saboteur to every declared current node.

    :returns: ``(new_netlist, {node: saboteur_name})``.
    """
    current = netlist
    placed = {}
    for decl in netlist.nodes:
        if decl.kind != "current":
            continue
        current, sab_name = attach_current_saboteur(current, decl.name)
        placed[decl.name] = sab_name
    return current, placed
