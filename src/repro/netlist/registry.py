"""Component registry for netlist elaboration.

Maps netlist ``type`` strings to constructors plus port metadata.  The
port *directions* matter for instrumentation: a digital saboteur is
inserted by splitting a net between its driver (``out`` ports) and its
readers (``in`` ports), so the transform pass must know which is
which — the information a VHDL tool gets from entity declarations.
"""

from __future__ import annotations

from ..ams.adc import FlashADC, SARADC
from ..ams.loads import DigitalLoad
from ..ams.pll import PLL
from ..analog.comparator import AnalogComparator, Digitizer
from ..analog.sources import DCCurrent, DCVoltage, PulseVoltage, SineVoltage
from ..core.errors import NetlistError
from ..digital.alu import Adder, Comparator, ParityGen
from ..digital.bus import Bus
from ..digital.clock import ClockGen, PulseGen, ResetGen
from ..digital.counter import ClockDivider, Counter
from ..digital.fsm import MooreFSM
from ..digital.gates import (
    AndGate,
    BufGate,
    Mux2,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    XorGate,
)
from ..digital.lfsr import LFSR
from ..digital.seq import DFF, Register
from ..digital.shiftreg import ShiftRegister


class TypeEntry:
    """Registry record: constructor + port direction map.

    :param builder: ``builder(sim, name, parent, ports, params)`` where
        ``ports`` maps port names to resolved Signal/Node/Bus objects.
    :param inputs: port names read by the component.
    :param outputs: port names driven by the component.
    """

    def __init__(self, builder, inputs=(), outputs=()):
        self.builder = builder
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)


_REGISTRY = {}


def register(type_name, inputs=(), outputs=()):
    """Decorator registering a builder under ``type_name``."""

    def decorate(builder):
        if type_name in _REGISTRY:
            raise NetlistError(f"type {type_name!r} registered twice")
        _REGISTRY[type_name] = TypeEntry(builder, inputs, outputs)
        return builder

    return decorate


def lookup(type_name):
    """Registry entry for a type.

    :raises NetlistError: for unknown types.
    """
    try:
        return _REGISTRY[type_name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise NetlistError(
            f"unknown component type {type_name!r}; known types: {known}"
        ) from None


def known_types():
    """Sorted list of registered type names."""
    return sorted(_REGISTRY)


def _simple(cls, *port_order, bus_ports=()):
    """Builder for components taking ports positionally after name."""

    def build(sim, name, parent, ports, params):
        args = [ports[p] for p in port_order]
        return cls(sim, name, *args, parent=parent, **params)

    return build


# -- stimulus ---------------------------------------------------------------

register("ClockGen", outputs=("out",))(_simple(ClockGen, "out"))
register("ResetGen", outputs=("out",))(_simple(ResetGen, "out"))
register("PulseGen", outputs=("out",))(_simple(PulseGen, "out"))
register("DCVoltage", outputs=("node",))(_simple(DCVoltage, "node"))
register("SineVoltage", outputs=("node",))(_simple(SineVoltage, "node"))
register("PulseVoltage", outputs=("node",))(_simple(PulseVoltage, "node"))
register("DCCurrent", outputs=("node",))(_simple(DCCurrent, "node"))

# -- gates ---------------------------------------------------------------------


@register("NotGate", inputs=("a",), outputs=("y",))
def _build_not(sim, name, parent, ports, params):
    return NotGate(sim, name, ports["a"], ports["y"], parent=parent, **params)


@register("BufGate", inputs=("a",), outputs=("y",))
def _build_buf(sim, name, parent, ports, params):
    return BufGate(sim, name, ports["a"], ports["y"], parent=parent, **params)


def _nary_gate(cls):
    def build(sim, name, parent, ports, params):
        inputs = [ports[key] for key in sorted(ports) if key.startswith("in")]
        if not inputs:
            raise NetlistError(f"gate {name}: needs in0, in1, ... ports")
        return cls(sim, name, inputs, ports["y"], parent=parent, **params)

    return build


for _name, _cls in (
    ("AndGate", AndGate),
    ("OrGate", OrGate),
    ("XorGate", XorGate),
    ("NandGate", NandGate),
    ("NorGate", NorGate),
):
    register(_name, inputs=("in0", "in1", "in2", "in3"), outputs=("y",))(
        _nary_gate(_cls)
    )


@register("Mux2", inputs=("a", "b", "sel"), outputs=("y",))
def _build_mux2(sim, name, parent, ports, params):
    return Mux2(
        sim, name, ports["a"], ports["b"], ports["sel"], ports["y"],
        parent=parent, **params,
    )


# -- sequential -------------------------------------------------------------------


@register("DFF", inputs=("d", "clk", "rst"), outputs=("q",))
def _build_dff(sim, name, parent, ports, params):
    return DFF(
        sim, name, ports["d"], ports["clk"], ports["q"],
        rst=ports.get("rst"), parent=parent, **params,
    )


@register("Register", inputs=("d", "clk", "en", "rst"), outputs=("q",))
def _build_register(sim, name, parent, ports, params):
    return Register(
        sim, name, ports["d"], ports["clk"], ports["q"],
        en=ports.get("en"), rst=ports.get("rst"), parent=parent, **params,
    )


@register("Counter", inputs=("clk", "rst", "en"), outputs=("q",))
def _build_counter(sim, name, parent, ports, params):
    return Counter(
        sim, name, ports["clk"], ports["q"], rst=ports.get("rst"),
        en=ports.get("en"), parent=parent, **params,
    )


@register("ClockDivider", inputs=("clk_in",), outputs=("clk_out",))
def _build_divider(sim, name, parent, ports, params):
    return ClockDivider(
        sim, name, ports["clk_in"], ports["clk_out"], parent=parent, **params
    )


@register("LFSR", inputs=("clk", "rst"), outputs=("q",))
def _build_lfsr(sim, name, parent, ports, params):
    return LFSR(
        sim, name, ports["clk"], ports["q"], rst=ports.get("rst"),
        parent=parent, **params,
    )


@register("ShiftRegister", inputs=("clk", "serial_in", "d", "load", "rst"),
          outputs=("q", "serial_out"))
def _build_shiftreg(sim, name, parent, ports, params):
    return ShiftRegister(
        sim, name, ports["clk"], ports["serial_in"], ports["q"],
        d=ports.get("d"), load=ports.get("load"),
        serial_out=ports.get("serial_out"), rst=ports.get("rst"),
        parent=parent, **params,
    )


# -- word-level ----------------------------------------------------------------------


@register("Adder", inputs=("a", "b", "cin"), outputs=("s", "cout"))
def _build_adder(sim, name, parent, ports, params):
    return Adder(
        sim, name, ports["a"], ports["b"], ports["s"],
        cin=ports.get("cin"), cout=ports.get("cout"), parent=parent, **params,
    )


@register("Comparator", inputs=("a", "b"), outputs=("eq", "lt", "gt"))
def _build_comparator(sim, name, parent, ports, params):
    return Comparator(
        sim, name, ports["a"], ports["b"], eq=ports.get("eq"),
        lt=ports.get("lt"), gt=ports.get("gt"), parent=parent, **params,
    )


@register("ParityGen", inputs=("a",), outputs=("parity",))
def _build_parity(sim, name, parent, ports, params):
    return ParityGen(sim, name, ports["a"], ports["parity"], parent=parent,
                     **params)


# -- analog / AMS ----------------------------------------------------------------------


@register("Digitizer", inputs=("inp",), outputs=("out",))
def _build_digitizer(sim, name, parent, ports, params):
    return Digitizer(sim, name, ports["inp"], ports["out"], parent=parent,
                     **params)


@register("AnalogComparator", inputs=("plus", "minus"), outputs=("out",))
def _build_acomp(sim, name, parent, ports, params):
    return AnalogComparator(
        sim, name, ports["plus"], ports["minus"], ports["out"],
        parent=parent, **params,
    )


@register("PLL", inputs=("ref",), outputs=())
def _build_pll(sim, name, parent, ports, params):
    return PLL(sim, name, ref=ports.get("ref"), parent=parent, **params)


@register("FlashADC", inputs=("clk", "vin"), outputs=())
def _build_flash(sim, name, parent, ports, params):
    return FlashADC(sim, name, ports["clk"], ports["vin"], parent=parent,
                    **params)


@register("SARADC", inputs=("clk", "vin"), outputs=())
def _build_sar(sim, name, parent, ports, params):
    return SARADC(sim, name, ports["clk"], ports["vin"], parent=parent,
                  **params)


@register("DigitalLoad", inputs=("clk",), outputs=())
def _build_load(sim, name, parent, ports, params):
    return DigitalLoad(sim, name, ports["clk"], parent=parent, **params)


# -- instrumentation components (inserted by transform passes) ------------------


@register("DigitalSaboteur", inputs=("sig_in",), outputs=("sig_out",))
def _build_digital_saboteur(sim, name, parent, ports, params):
    from ..injection.saboteur import DigitalSaboteur

    return DigitalSaboteur(
        sim, name, ports["sig_in"], ports["sig_out"], parent=parent, **params
    )


@register("CurrentPulseSaboteur", inputs=(), outputs=("node",))
def _build_current_saboteur(sim, name, parent, ports, params):
    from ..injection.saboteur import CurrentPulseSaboteur

    return CurrentPulseSaboteur(sim, name, ports["node"], parent=parent,
                                **params)


@register("ControlledCurrentSaboteur", inputs=("inj",), outputs=("out_cur",))
def _build_gencur(sim, name, parent, ports, params):
    from ..injection.saboteur import ControlledCurrentSaboteur

    return ControlledCurrentSaboteur(
        sim, name, ports["inj"], ports["out_cur"], parent=parent, **params
    )


# -- hardened components ---------------------------------------------------------


@register("TMRDFF", inputs=("d", "clk", "rst"), outputs=("q", "mismatch"))
def _build_tmr_dff(sim, name, parent, ports, params):
    from ..harden.tmr import TMRDFF

    return TMRDFF(
        sim, name, ports["d"], ports["clk"], ports["q"],
        rst=ports.get("rst"), mismatch=ports.get("mismatch"),
        parent=parent, **params,
    )


@register("TMRRegister", inputs=("d", "clk", "en", "rst"), outputs=("q",))
def _build_tmr_register(sim, name, parent, ports, params):
    from ..harden.tmr import TMRRegister

    return TMRRegister(
        sim, name, ports["d"], ports["clk"], ports["q"],
        en=ports.get("en"), rst=ports.get("rst"), parent=parent, **params,
    )


@register("TMRCounter", inputs=("clk", "rst", "en"), outputs=("q",))
def _build_tmr_counter(sim, name, parent, ports, params):
    from ..harden.tmr import TMRCounter

    return TMRCounter(
        sim, name, ports["clk"], ports["q"], rst=ports.get("rst"),
        en=ports.get("en"), parent=parent, **params,
    )


@register("ParityProtectedRegister", inputs=("d", "clk", "en", "rst"),
          outputs=("q", "error"))
def _build_parity_register(sim, name, parent, ports, params):
    from ..harden.edac import ParityProtectedRegister

    return ParityProtectedRegister(
        sim, name, ports["d"], ports["clk"], ports["q"], ports["error"],
        en=ports.get("en"), rst=ports.get("rst"), parent=parent, **params,
    )


@register("HammingProtectedRegister", inputs=("d", "clk", "en", "rst"),
          outputs=("q", "corrected"))
def _build_hamming_register(sim, name, parent, ports, params):
    from ..harden.edac import HammingProtectedRegister

    return HammingProtectedRegister(
        sim, name, ports["d"], ports["clk"], ports["q"],
        corrected=ports.get("corrected"), en=ports.get("en"),
        rst=ports.get("rst"), parent=parent, **params,
    )
