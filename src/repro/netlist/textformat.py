"""A SPICE-flavoured text netlist format (``.rcir``).

The JSON schema is the canonical interchange form; this module adds a
terse, hand-editable text syntax in the spirit of SPICE decks::

    # the paper's counter demo
    design demo
    dt 1ns

    signal clk init=0
    signal parity
    current icp
    bus cnt width=4 init=0

    ck      ClockGen  out=clk period=10ns
    counter Counter   clk=clk q=cnt
    par     ParityGen a=cnt parity=parity

    probe cnt parity
    output parity

Line grammar (one statement per line, ``#`` comments, blank lines
ignored):

* ``design <name>`` — the design name (required, once);
* ``dt <quantity>`` — analog timestep;
* ``signal <name> [init=<level>]`` — digital signal;
* ``node <name> [init=<volts>]`` — analog voltage node;
* ``current <name> [init=<volts>]`` — current-summing node;
* ``bus <name> width=<n> [init=<int>]`` — digital bus;
* ``probe <net> [...]`` / ``output <net> [...]`` — observation points;
* anything else — an instance: ``<name> <Type> key=value ...`` where
  keys matching the type's registered ports bind nets and every other
  key is a constructor parameter (engineering quantities allowed).
"""

from __future__ import annotations

from ..core.errors import NetlistError
from ..core.units import parse_quantity
from .registry import lookup
from .schema import BusDecl, InstanceDecl, Netlist, NodeDecl, SignalDecl


def _parse_value(text):
    """Best-effort literal: bool, int, float, engineering quantity,
    string."""
    if text in ("True", "true"):
        return True
    if text in ("False", "false"):
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return parse_quantity(text)
    except Exception:
        return text


def _split_kv(tokens, line_no):
    pairs = {}
    for token in tokens:
        if "=" not in token:
            raise NetlistError(
                f"line {line_no}: expected key=value, got {token!r}"
            )
        key, _, value = token.partition("=")
        if not key or not value:
            raise NetlistError(
                f"line {line_no}: malformed key=value {token!r}"
            )
        pairs[key] = value
    return pairs


def loads_text(text):
    """Parse a ``.rcir`` document into a validated :class:`Netlist`.

    :raises NetlistError: with the offending line number on any
        syntax or semantic problem.
    """
    name = None
    dt = 1e-9
    signals = []
    nodes = []
    buses = []
    instances = []
    probes = []
    outputs = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]

        if keyword == "design":
            if len(tokens) != 2:
                raise NetlistError(f"line {line_no}: design takes one name")
            if name is not None:
                raise NetlistError(f"line {line_no}: duplicate design line")
            name = tokens[1]
        elif keyword == "dt":
            if len(tokens) != 2:
                raise NetlistError(f"line {line_no}: dt takes one quantity")
            dt = parse_quantity(tokens[1], expect_unit="s")
        elif keyword == "signal":
            if len(tokens) < 2:
                raise NetlistError(f"line {line_no}: signal needs a name")
            kv = _split_kv(tokens[2:], line_no)
            signals.append(
                SignalDecl(name=tokens[1], init=str(kv.get("init", "U")))
            )
        elif keyword in ("node", "current"):
            if len(tokens) < 2:
                raise NetlistError(f"line {line_no}: {keyword} needs a name")
            kv = _split_kv(tokens[2:], line_no)
            nodes.append(NodeDecl(
                name=tokens[1],
                kind="current" if keyword == "current" else "voltage",
                init=float(kv.get("init", 0.0)),
            ))
        elif keyword == "bus":
            if len(tokens) < 2:
                raise NetlistError(f"line {line_no}: bus needs a name")
            kv = _split_kv(tokens[2:], line_no)
            if "width" not in kv:
                raise NetlistError(f"line {line_no}: bus needs width=<n>")
            init = kv.get("init", "U")
            buses.append(BusDecl(
                name=tokens[1],
                width=int(kv["width"]),
                init=int(init) if init not in ("U", "X") else init,
            ))
        elif keyword == "probe":
            probes.extend(tokens[1:])
        elif keyword == "output":
            outputs.extend(tokens[1:])
        else:
            if len(tokens) < 2:
                raise NetlistError(
                    f"line {line_no}: instance needs '<name> <Type> ...'"
                )
            inst_name, type_name = tokens[0], tokens[1]
            entry = lookup(type_name)  # raises for unknown types
            port_names = set(entry.inputs) | set(entry.outputs)
            kv = _split_kv(tokens[2:], line_no)
            ports = {}
            params = {}
            for key, value in kv.items():
                if key in port_names:
                    ports[key] = value
                else:
                    params[key] = _parse_value(value)
            instances.append(InstanceDecl(
                type=type_name, name=inst_name, ports=ports, params=params,
            ))

    if name is None:
        raise NetlistError("missing 'design <name>' line")
    # Outputs must also be probed; add them implicitly for convenience.
    for out in outputs:
        if out not in probes:
            probes.append(out)
    return Netlist(
        name=name, dt=dt, signals=signals, nodes=nodes, buses=buses,
        instances=instances, probes=probes, outputs=outputs,
    )


def dumps_text(netlist):
    """Render a netlist back into ``.rcir`` text (parse round-trips)."""
    lines = [f"design {netlist.name}", f"dt {netlist.dt}"]
    if netlist.signals or netlist.nodes or netlist.buses:
        lines.append("")
    for decl in netlist.signals:
        suffix = "" if decl.init == "U" else f" init={decl.init}"
        lines.append(f"signal {decl.name}{suffix}")
    for decl in netlist.nodes:
        keyword = "current" if decl.kind == "current" else "node"
        suffix = "" if decl.init == 0.0 else f" init={decl.init}"
        lines.append(f"{keyword} {decl.name}{suffix}")
    for decl in netlist.buses:
        suffix = "" if decl.init == "U" else f" init={decl.init}"
        lines.append(f"bus {decl.name} width={decl.width}{suffix}")
    if netlist.instances:
        lines.append("")
    for inst in netlist.instances:
        parts = [inst.name, inst.type]
        parts.extend(f"{k}={v}" for k, v in inst.ports.items())
        parts.extend(f"{k}={v}" for k, v in inst.params.items())
        lines.append(" ".join(str(p) for p in parts))
    if netlist.probes or netlist.outputs:
        lines.append("")
    if netlist.probes:
        lines.append("probe " + " ".join(netlist.probes))
    if netlist.outputs:
        lines.append("output " + " ".join(netlist.outputs))
    return "\n".join(lines) + "\n"


def load_text_file(path):
    """Read a ``.rcir`` file."""
    with open(path) as handle:
        return loads_text(handle.read())


def save_text_file(netlist, path):
    """Write a ``.rcir`` file."""
    with open(path, "w") as handle:
        handle.write(dumps_text(netlist))
