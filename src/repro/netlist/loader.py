"""Netlist elaboration and JSON I/O.

``elaborate`` turns a :class:`~repro.netlist.schema.Netlist` into a
live :class:`~repro.campaign.runner.Design` (simulator + hierarchy +
probes), which plugs directly into the campaign runner: a netlist file
*is* a design factory.
"""

from __future__ import annotations

import json

from ..campaign.runner import Design
from ..core.component import Component
from ..core.errors import NetlistError
from ..core.kernel import Simulator
from ..core.logic import logic
from ..core.units import parse_quantity
from ..digital.bus import Bus
from .registry import lookup
from .schema import Netlist


def elaborate(netlist, dt=None):
    """Build a live design from a netlist description.

    :param netlist: a validated :class:`Netlist`.
    :param dt: override the netlist's analog timestep.
    :returns: a :class:`Design`; ``design.extras`` maps net and
        instance names to the live objects.
    :raises NetlistError: on unresolvable references or builder errors.
    """
    sim = Simulator(dt=parse_quantity(dt if dt is not None else netlist.dt,
                                      expect_unit="s"))
    root = Component(sim, netlist.name)
    objects = {}

    for decl in netlist.signals:
        objects[decl.name] = sim.signal(decl.name, init=logic(decl.init))
    for decl in netlist.nodes:
        if decl.kind == "current":
            objects[decl.name] = sim.current_node(decl.name, init=decl.init)
        else:
            objects[decl.name] = sim.node(decl.name, init=decl.init)
    for decl in netlist.buses:
        objects[decl.name] = Bus(sim, decl.name, decl.width, init=decl.init)

    for inst in netlist.instances:
        entry = lookup(inst.type)
        ports = {}
        for port, net in inst.ports.items():
            ports[port] = objects[net]
        try:
            objects[inst.name] = entry.builder(
                sim, inst.name, root, ports, dict(inst.params)
            )
        except TypeError as exc:
            raise NetlistError(
                f"instance {inst.name} ({inst.type}): bad parameters: {exc}"
            ) from exc

    probes = {}
    for net in netlist.probes:
        # Declared nets first; otherwise internal names created by
        # assembly instances (e.g. "pll.icp", "pll.fout").
        target = objects.get(net)
        if target is None:
            target = sim.signals.get(net) or sim.nodes.get(net)
        if target is None:
            known = ", ".join(sorted(
                list(sim.signals) + list(sim.nodes))[:10])
            raise NetlistError(
                f"netlist {netlist.name}: probe {net!r} matches no "
                f"declared or elaborated net; known nets start with: "
                f"{known} ..."
            )
        if isinstance(target, Bus):
            for bit in target.bits:
                probes[bit.name] = sim.probe(bit)
        else:
            probes[net] = sim.probe(target)

    return Design(sim=sim, root=root, probes=probes, extras=objects)


def design_factory(netlist, dt=None):
    """A zero-argument factory for the campaign runner."""

    def factory():
        return elaborate(netlist, dt=dt)

    return factory


# -- JSON I/O ----------------------------------------------------------------


def loads(text):
    """Parse a netlist from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetlistError(f"invalid netlist JSON: {exc}") from exc
    return Netlist.from_dict(data)


def dumps(netlist, indent=2):
    """Serialise a netlist to a JSON string."""
    return json.dumps(netlist.to_dict(), indent=indent)


def load_file(path):
    """Read a netlist from a JSON file."""
    with open(path) as handle:
        return loads(handle.read())


def save_file(netlist, path, indent=2):
    """Write a netlist to a JSON file."""
    with open(path, "w") as handle:
        handle.write(dumps(netlist, indent=indent))
        handle.write("\n")
