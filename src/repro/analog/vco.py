"""Voltage-controlled oscillator.

A behavioural VCO integrating its instantaneous frequency

.. math:: f(t) = f_0 + K_{vco} (v_{ctrl}(t) - v_{center})

into a phase accumulator every solver step (trapezoidal in the control
voltage), and producing a sinusoidal output swinging across the supply.
The sine shape matters for analysis fidelity: linear interpolation of
the probed output recovers threshold-crossing times with sub-timestep
resolution, which is how the clock-period perturbation measurements of
Figures 6–8 reach picosecond accuracy on a nanosecond solver step.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import SimulationError
from .blocks import TrackedInputBlock, clamp


class VCO(TrackedInputBlock):
    """Behavioural VCO.

    :param vctrl: control-voltage input node.
    :param out: output voltage node.
    :param f0: free-running frequency at ``vcenter`` (Hz).
    :param kvco: gain in Hz per volt.
    :param vcenter: control voltage giving ``f0``.
    :param f_min, f_max: frequency clamp (default 1 kHz .. 10*f0),
        modelling the finite tuning range of a real oscillator.
    :param v_high, v_low: output swing rails (default 5 V / 0 V).
    :param waveform: ``"sine"`` (default) or ``"square"``.
    """

    is_state = True

    def __init__(
        self,
        sim,
        name,
        vctrl,
        out,
        f0,
        kvco,
        vcenter=2.5,
        f_min=None,
        f_max=None,
        v_high=5.0,
        v_low=0.0,
        waveform="sine",
        phase0=0.0,
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        if f0 <= 0:
            raise SimulationError(f"vco {name}: f0 must be positive")
        if waveform not in ("sine", "square"):
            raise SimulationError(f"vco {name}: unknown waveform {waveform!r}")
        self.vctrl = self.reads_node(vctrl)
        self.out = self.writes_node(out)
        self.f0 = float(f0)
        self.kvco = float(kvco)
        self.vcenter = float(vcenter)
        self.f_min = float(f_min) if f_min is not None else 1e3
        self.f_max = float(f_max) if f_max is not None else 10.0 * f0
        self.v_high = float(v_high)
        self.v_low = float(v_low)
        self.waveform = waveform
        #: Phase in *cycles* (not radians) for numeric robustness over
        #: millions of cycles.
        self.phase = float(phase0)
        self.freq = self.frequency_of(vctrl.v)

    def frequency_of(self, vctrl_volts):
        """Instantaneous frequency for a control voltage, with clamp."""
        f = self.f0 + self.kvco * (vctrl_volts - self.vcenter)
        return clamp(f, self.f_min, self.f_max)

    def step(self, t, dt):
        v_avg = self.trapezoid_input(self.vctrl.v)
        self.freq = self.frequency_of(v_avg)
        self.phase += self.freq * dt
        # Keep the accumulator small; the fractional part carries all
        # the waveform information.
        if self.phase > 1e6:
            self.phase -= math.floor(self.phase)
        frac = self.phase - math.floor(self.phase)
        mid = 0.5 * (self.v_high + self.v_low)
        amp = 0.5 * (self.v_high - self.v_low)
        if self.waveform == "sine":
            self.out.set(mid + amp * math.sin(2.0 * math.pi * frac))
        else:
            self.out.set(self.v_high if frac < 0.5 else self.v_low)

    def step_ensemble(self, t, dt, ensemble):
        """Per-variant :meth:`step` over the whole batch at once.

        The phase accumulator and frequency promote to ``(k,)`` arrays
        on the first batched step.  ``np.sin`` and ``np.floor`` return
        the exact bits of ``math.sin``/``math.floor`` on float64, and
        the clamp/wrap branches become selection-only ``np.where``, so
        every column matches a scalar run of that variant bit for bit.
        """
        v_avg = self.trapezoid_input(self.vctrl.v)
        f = self.f0 + self.kvco * (v_avg - self.vcenter)
        self.freq = np.clip(f, self.f_min, self.f_max)
        phase = self.phase + self.freq * dt
        over = phase > 1e6
        if np.any(over):
            phase = np.where(over, phase - np.floor(phase), phase)
        self.phase = phase
        frac = phase - np.floor(phase)
        mid = 0.5 * (self.v_high + self.v_low)
        amp = 0.5 * (self.v_high - self.v_low)
        if self.waveform == "sine":
            self.out.v = mid + amp * np.sin((2.0 * math.pi) * frac)
        else:
            self.out.v = np.where(frac < 0.5, self.v_high, self.v_low)
