"""Analog stimulus sources.

Voltage sources drive a voltage node; current sources superpose onto a
:class:`~repro.core.node.CurrentNode` — the same mechanism the
fault-injection saboteur uses, so a source can double as a disturbance
generator in tests.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.component import AnalogBlock
from ..core.errors import SimulationError


class DCVoltage(AnalogBlock):
    """A constant voltage on a node."""

    def __init__(self, sim, name, node, volts, parent=None):
        super().__init__(sim, name, parent=parent)
        self.node = self.writes_node(node)
        self.volts = float(volts)

    def step(self, t, dt):
        self.node.set(self.volts)


class SineVoltage(AnalogBlock):
    """``offset + amplitude * sin(2*pi*freq*t + phase)`` on a node."""

    def __init__(self, sim, name, node, amplitude, freq, offset=0.0, phase=0.0,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.node = self.writes_node(node)
        self.amplitude = float(amplitude)
        self.freq = float(freq)
        self.offset = float(offset)
        self.phase = float(phase)

    def step(self, t, dt):
        self.node.set(
            self.offset
            + self.amplitude * math.sin(2.0 * math.pi * self.freq * t + self.phase)
        )


class PWLVoltage(AnalogBlock):
    """Piecewise-linear voltage defined by ``(time, volts)`` breakpoints.

    Values before the first and after the last breakpoint hold flat.
    """

    def __init__(self, sim, name, node, points, parent=None):
        super().__init__(sim, name, parent=parent)
        if not points:
            raise SimulationError(f"pwl source {name}: needs breakpoints")
        times = [p[0] for p in points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise SimulationError(
                f"pwl source {name}: breakpoint times must be non-decreasing"
            )
        self.node = self.writes_node(node)
        self._times = np.asarray(times, dtype=float)
        self._values = np.asarray([p[1] for p in points], dtype=float)

    def step(self, t, dt):
        self.node.set(float(np.interp(t, self._times, self._values)))


class PulseVoltage(AnalogBlock):
    """A periodic trapezoidal voltage pulse train (SPICE PULSE-like).

    :param v1: base level; :param v2: pulse level.
    :param delay: time of the first leading edge.
    :param rise, fall: edge times; :param width: flat-top duration.
    :param period: repetition period (None = single pulse).
    """

    def __init__(self, sim, name, node, v1, v2, delay, rise, fall, width,
                 period=None, parent=None):
        super().__init__(sim, name, parent=parent)
        self.node = self.writes_node(node)
        self.v1, self.v2 = float(v1), float(v2)
        self.delay = float(delay)
        self.rise, self.fall = float(rise), float(fall)
        self.width = float(width)
        self.period = float(period) if period is not None else None

    def _level(self, t):
        t = t - self.delay
        if self.period is not None and t >= 0:
            t = math.fmod(t, self.period)
        if t < 0:
            return self.v1
        if t < self.rise:
            return self.v1 + (self.v2 - self.v1) * (t / self.rise if self.rise else 1.0)
        t -= self.rise
        if t < self.width:
            return self.v2
        t -= self.width
        if t < self.fall:
            return self.v2 + (self.v1 - self.v2) * (t / self.fall if self.fall else 1.0)
        return self.v1

    def step(self, t, dt):
        self.node.set(self._level(t))


class DCCurrent(AnalogBlock):
    """A constant current into a current node."""

    def __init__(self, sim, name, node, amps, parent=None):
        super().__init__(sim, name, parent=parent)
        from ..core.node import as_current_node

        self.node = self.writes_node(as_current_node(node))
        self.amps = float(amps)

    def step(self, t, dt):
        self.node.add_current(self.amps, source=self.path)


class WaveformCurrent(AnalogBlock):
    """A current defined by an arbitrary function ``i(t)``.

    The general form behind both pulse fault models: the trapezoid and
    the double exponential are just particular ``i(t)`` shapes.
    """

    def __init__(self, sim, name, node, fn, parent=None):
        super().__init__(sim, name, parent=parent)
        from ..core.node import as_current_node

        self.node = self.writes_node(as_current_node(node))
        self.fn = fn

    def step(self, t, dt):
        self.node.add_current(float(self.fn(t)), source=self.path)
