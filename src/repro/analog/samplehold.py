"""Sample-and-hold.

Front end of the SAR ADC assembly: tracks the analog input while the
sample clock is high and holds the value while low.  The held node is
a :class:`CurrentNode` so a particle strike on the hold capacitor can
be injected as a current pulse — droop on the cap is then ``Q/C_hold``,
one of the classic ADC soft-error mechanisms analysed in reference [9]
of the paper.
"""

from __future__ import annotations

from ..core.component import AnalogBlock
from ..core.errors import SimulationError
from ..core.logic import logic
from ..core.node import CurrentNode


class SampleHold(AnalogBlock):
    """Track-and-hold with a finite hold capacitor.

    :param inp: analog input node.
    :param clk: digital sample clock (track while high).
    :param out: output node.  When it is a :class:`CurrentNode`, any
        injected current integrates onto the hold capacitor during the
        hold phase (``dv = i*dt/c_hold``).
    :param c_hold: hold capacitance in farads.
    :param droop: hold-mode droop rate in V/s (leakage), signed.
    """

    is_state = True

    def __init__(self, sim, name, inp, clk, out, c_hold=1e-12, droop=0.0,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if c_hold <= 0:
            raise SimulationError(f"samplehold {name}: c_hold must be positive")
        self.inp = self.reads_node(inp)
        self.clk = clk
        self.out = self.writes_node(out)
        self.c_hold = float(c_hold)
        self.droop = float(droop)
        self._held = None

    def step(self, t, dt):
        tracking = logic(self.clk.value).is_high()
        if self._held is None:
            self._held = self.inp.v
        if tracking:
            self._held = self.inp.v
        else:
            self._held += self.droop * dt
            if isinstance(self.out, CurrentNode) and dt > 0:
                # Injected charge disturbs the held value.
                self._held += self.out.i * dt / self.c_hold
        self.out.set(self._held)
