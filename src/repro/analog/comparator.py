"""Comparators and the analog-to-digital "digitizer" bridge.

The Figure 5 PLL converts the VCO's analog output into the digital
clock with a comparator against a 2.5 V threshold; :class:`Digitizer`
is that block.  It watches an analog node every solver step and drives
a digital signal — the fundamental A→D bridge of the mixed-mode flow.
Edge times are quantised to the analog step; sub-step-accurate edge
times for *measurements* come from interpolating the probed analog
waveform instead (see :mod:`repro.analysis.measurements`).
"""

from __future__ import annotations

from ..core.component import AnalogBlock
from ..core.errors import SimulationError
from ..core.logic import Logic


class Digitizer(AnalogBlock):
    """Threshold comparator from an analog node to a digital signal.

    :param inp: analog input node.
    :param out: digital output signal.
    :param threshold: switching threshold in volts (paper: 2.5 V).
    :param hysteresis: total hysteresis width in volts; the rising
        threshold is ``threshold + hysteresis/2`` and the falling one
        ``threshold - hysteresis/2``, suppressing chatter on slow or
        noisy inputs.
    """

    def __init__(self, sim, name, inp, out, threshold=2.5, hysteresis=0.0,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if hysteresis < 0:
            raise SimulationError(f"digitizer {name}: negative hysteresis")
        self.inp = self.reads_node(inp)
        self.out = out
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)
        self._driver = out.driver(owner=self)
        self._state = None
        self.transitions = 0

    def step(self, t, dt):
        v = self.inp.v
        rise_at = self.threshold + 0.5 * self.hysteresis
        fall_at = self.threshold - 0.5 * self.hysteresis
        if self._state is None:
            self._state = v >= self.threshold
            self._driver.set(Logic.L1 if self._state else Logic.L0)
            return
        if not self._state and v >= rise_at:
            self._state = True
            self.transitions += 1
            self._driver.set(Logic.L1)
        elif self._state and v <= fall_at:
            self._state = False
            self.transitions += 1
            self._driver.set(Logic.L0)


class AnalogComparator(AnalogBlock):
    """Two-input analog comparator with an analog output level.

    Output swings between ``v_low`` and ``v_high`` depending on the
    sign of ``(plus - minus)``, with optional input-referred offset —
    the building block of the flash ADC, where the offset is also a
    parametric-fault target.
    """

    def __init__(self, sim, name, plus, minus, out, v_high=5.0, v_low=0.0,
                 offset=0.0, parent=None):
        super().__init__(sim, name, parent=parent)
        self.plus = self.reads_node(plus)
        self.minus = self.reads_node(minus)
        self.out = self.writes_node(out)
        self.v_high = float(v_high)
        self.v_low = float(v_low)
        self.offset = float(offset)

    def step(self, t, dt):
        diff = (self.plus.v + self.offset) - self.minus.v
        self.out.set(self.v_high if diff >= 0 else self.v_low)


class WindowComparator(AnalogBlock):
    """Asserts its digital output while the input is inside a window.

    Useful as an on-line assertion monitor: e.g. flag whenever the VCO
    control voltage leaves its locked band during a campaign.
    """

    def __init__(self, sim, name, inp, out, lo, hi, parent=None):
        super().__init__(sim, name, parent=parent)
        if hi <= lo:
            raise SimulationError(f"window comparator {name}: hi <= lo")
        self.inp = self.reads_node(inp)
        self.out = out
        self.lo = float(lo)
        self.hi = float(hi)
        self._driver = out.driver(owner=self)
        self._driver.set(Logic.L0)
        self._inside = None

    def step(self, t, dt):
        inside = self.lo <= self.inp.v <= self.hi
        if inside != self._inside:
            self._inside = inside
            self._driver.set(Logic.L1 if inside else Logic.L0)
