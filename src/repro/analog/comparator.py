"""Comparators and the analog-to-digital "digitizer" bridge.

The Figure 5 PLL converts the VCO's analog output into the digital
clock with a comparator against a 2.5 V threshold; :class:`Digitizer`
is that block.  It watches an analog node every solver step and drives
a digital signal — the fundamental A→D bridge of the mixed-mode flow.
Edge times are quantised to the analog step; sub-step-accurate edge
times for *measurements* come from interpolating the probed analog
waveform instead (see :mod:`repro.analysis.measurements`).
"""

from __future__ import annotations

import numpy as np

from ..core.component import AnalogBlock
from ..core.errors import SimulationError
from ..core.logic import Logic


class Digitizer(AnalogBlock):
    """Threshold comparator from an analog node to a digital signal.

    :param inp: analog input node.
    :param out: digital output signal.
    :param threshold: switching threshold in volts (paper: 2.5 V).
    :param hysteresis: total hysteresis width in volts; the rising
        threshold is ``threshold + hysteresis/2`` and the falling one
        ``threshold - hysteresis/2``, suppressing chatter on slow or
        noisy inputs.
    """

    def __init__(self, sim, name, inp, out, threshold=2.5, hysteresis=0.0,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if hysteresis < 0:
            raise SimulationError(f"digitizer {name}: negative hysteresis")
        self.inp = self.reads_node(inp)
        self.out = out
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)
        self._driver = out.driver(owner=self)
        self._state = None
        self.transitions = 0

    def step(self, t, dt):
        v = self.inp.v
        rise_at = self.threshold + 0.5 * self.hysteresis
        fall_at = self.threshold - 0.5 * self.hysteresis
        if self._state is None:
            self._state = v >= self.threshold
            self._driver.set(Logic.L1 if self._state else Logic.L0)
            return
        if not self._state and v >= rise_at:
            self._state = True
            self.transitions += 1
            self._driver.set(Logic.L1)
        elif self._state and v <= fall_at:
            self._state = False
            self.transitions += 1
            self._driver.set(Logic.L0)

    def step_ensemble(self, t, dt, ensemble):
        """Batched :meth:`step` with majority consensus and peel-off.

        The digitizer is where the per-variant analog columns meet the
        *shared* digital side of the batch, so it is the divergence
        detector: each variant votes (rise / fall / hold) from its own
        input column, the majority of active variants decides what the
        shared signal does, and active variants outvoted by the
        consensus are peeled off the ensemble — they finish on the
        scalar path from the checkpoint, so their results stay exact.

        ``transitions`` counts the shared signal's edges; peeled
        variants recompute their own count on the scalar rerun.
        """
        v = self.inp.v
        k = ensemble.size
        if self._state is None:
            init = np.empty(k, dtype=bool)
            init[:] = v >= self.threshold
            chosen, dissent = ensemble.consensus(init.astype(np.int8))
            self._driver.set(Logic.L1 if chosen else Logic.L0)
            self._state = init
            ensemble.peel_mask(dissent, "digital-divergence")
            return
        rise_at = self.threshold + 0.5 * self.hysteresis
        fall_at = self.threshold - 0.5 * self.hysteresis
        # The checkpoint restores ``_state`` as a plain bool; keep the
        # vote masks boolean arrays (a Python ``~False`` is the integer
        # -1, which would silently turn the masks into index arrays).
        state = np.broadcast_to(np.asarray(self._state, dtype=bool), (k,))
        rising = ~state & (v >= rise_at)
        falling = state & (v <= fall_at)
        if not (np.any(rising) or np.any(falling)):
            return
        codes = np.zeros(k, dtype=np.int8)
        codes[rising] = 1
        codes[falling] = 2
        chosen, dissent = ensemble.consensus(codes)
        ensemble.peel_mask(dissent, "digital-divergence")
        # Per-variant state update: surviving active variants agree
        # with the consensus by construction; peeled/inactive columns
        # keep free-running and are never read back.
        self._state = np.where(rising, True, np.where(falling, False, state))
        if chosen == 1:
            self.transitions += 1
            self._driver.set(Logic.L1)
        elif chosen == 2:
            self.transitions += 1
            self._driver.set(Logic.L0)


class AnalogComparator(AnalogBlock):
    """Two-input analog comparator with an analog output level.

    Output swings between ``v_low`` and ``v_high`` depending on the
    sign of ``(plus - minus)``, with optional input-referred offset —
    the building block of the flash ADC, where the offset is also a
    parametric-fault target.
    """

    def __init__(self, sim, name, plus, minus, out, v_high=5.0, v_low=0.0,
                 offset=0.0, parent=None):
        super().__init__(sim, name, parent=parent)
        self.plus = self.reads_node(plus)
        self.minus = self.reads_node(minus)
        self.out = self.writes_node(out)
        self.v_high = float(v_high)
        self.v_low = float(v_low)
        self.offset = float(offset)

    def step(self, t, dt):
        diff = (self.plus.v + self.offset) - self.minus.v
        self.out.set(self.v_high if diff >= 0 else self.v_low)

    def step_ensemble(self, t, dt, ensemble):
        """Batched :meth:`step` (selection-only, so bit-identical)."""
        diff = (self.plus.v + self.offset) - self.minus.v
        self.out.v = np.where(diff >= 0, self.v_high, self.v_low)


class WindowComparator(AnalogBlock):
    """Asserts its digital output while the input is inside a window.

    Useful as an on-line assertion monitor: e.g. flag whenever the VCO
    control voltage leaves its locked band during a campaign.
    """

    def __init__(self, sim, name, inp, out, lo, hi, parent=None):
        super().__init__(sim, name, parent=parent)
        if hi <= lo:
            raise SimulationError(f"window comparator {name}: hi <= lo")
        self.inp = self.reads_node(inp)
        self.out = out
        self.lo = float(lo)
        self.hi = float(hi)
        self._driver = out.driver(owner=self)
        self._driver.set(Logic.L0)
        self._inside = None

    def step(self, t, dt):
        inside = self.lo <= self.inp.v <= self.hi
        if inside != self._inside:
            self._inside = inside
            self._driver.set(Logic.L1 if inside else Logic.L0)
