"""Charge pump.

Converts the phase-frequency detector's UP/DOWN pulses into current
sourced into / sunk from the loop-filter input node.  Because the
filter input is a :class:`~repro.core.node.CurrentNode`, the pump's
contribution and the saboteur's injected SEU pulse superpose naturally
— exactly the paper's injection site "at the input of the low-pass
filter (i.e., at the output of the charge pump)".
"""

from __future__ import annotations

from ..core.component import AnalogBlock
from ..core.errors import SimulationError
from ..core.logic import logic
from ..core.node import as_current_node


class ChargePump(AnalogBlock):
    """UP/DOWN-controlled current source.

    :param up: digital UP signal (source ``i_pump`` into the node).
    :param down: digital DOWN signal (sink ``i_pump`` from the node).
    :param out: the loop-filter input :class:`CurrentNode`.
    :param i_pump: pump current magnitude in amperes.
    :param mismatch: fractional source/sink mismatch; the source side
        delivers ``i_pump * (1 + mismatch)`` — a standard analog
        non-ideality available for parametric fault experiments.
    """

    #: The pump reads only the shared digital side and contributes a
    #: scalar current that broadcasts over the per-variant current
    #: column, so the scalar :meth:`step` is already ensemble-correct.
    ensemble_safe = True

    def __init__(self, sim, name, up, down, out, i_pump, mismatch=0.0,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if i_pump <= 0:
            raise SimulationError(f"charge pump {name}: i_pump must be positive")
        self.up = up
        self.down = down
        self.out = self.writes_node(as_current_node(out))
        self.i_pump = float(i_pump)
        self.mismatch = float(mismatch)

    def step(self, t, dt):
        current = 0.0
        if logic(self.up.value).is_high():
            current += self.i_pump * (1.0 + self.mismatch)
        if logic(self.down.value).is_high():
            current -= self.i_pump
        if current:
            self.out.add_current(current, source=self.path)
