"""Digital-to-analog converters (D→A bridges).

:class:`IdealDAC` converts a digital bus into a node voltage — the
basic digital-to-analog bridge of the mixed-mode flow, and the feedback
element of the SAR ADC assembly.  An undefined input bus (e.g. after a
bit-flip poisoned a register) drives the *last valid* output, matching
the hold behaviour of a real switched-capacitor DAC whose switches
simply keep their previous command.
"""

from __future__ import annotations

from ..core.component import AnalogBlock
from ..core.errors import SimulationError


class IdealDAC(AnalogBlock):
    """Unsigned binary DAC: ``v = v_ref * code / 2**width``.

    :param bus: input :class:`~repro.digital.bus.Bus` (LSB first).
    :param out: output node.
    :param v_ref: full-scale reference voltage.
    :param settle_hz: optional single-pole settling bandwidth; None
        switches instantly (ideal).
    """

    is_state = True

    def __init__(self, sim, name, bus, out, v_ref=5.0, settle_hz=None,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if v_ref <= 0:
            raise SimulationError(f"dac {name}: v_ref must be positive")
        self.bus = bus
        self.out = self.writes_node(out)
        self.v_ref = float(v_ref)
        self.settle_hz = float(settle_hz) if settle_hz is not None else None
        self.levels = 1 << len(bus)
        self._v = 0.0
        self._last_code = 0

    def target_voltage(self):
        """Voltage commanded by the current bus code."""
        code = self.bus.to_int_or_none()
        if code is None:
            code = self._last_code
        else:
            self._last_code = code
        return self.v_ref * code / self.levels

    def step(self, t, dt):
        import math

        target = self.target_voltage()
        if self.settle_hz is None or dt <= 0:
            self._v = target
        else:
            alpha = 1.0 - math.exp(-2.0 * math.pi * self.settle_hz * dt)
            self._v += (target - self._v) * alpha
        self.out.set(self._v)


class ResistorLadder(AnalogBlock):
    """A tapped resistor ladder producing ``n_taps`` reference levels.

    The reference network of the flash ADC.  Per-tap deviations model
    resistor mismatch (parametric faults); the taps are plain voltage
    nodes created by the ladder itself.

    :param v_top, v_bottom: rail voltages.
    :param n_taps: number of intermediate taps.
    :param deviations: optional per-tap additive errors in volts.
    """

    def __init__(self, sim, name, n_taps, v_top=5.0, v_bottom=0.0,
                 deviations=None, parent=None):
        super().__init__(sim, name, parent=parent)
        if n_taps < 1:
            raise SimulationError(f"ladder {name}: need at least one tap")
        self.v_top = float(v_top)
        self.v_bottom = float(v_bottom)
        self.deviations = list(deviations) if deviations is not None else [0.0] * n_taps
        if len(self.deviations) != n_taps:
            raise SimulationError(
                f"ladder {name}: {len(self.deviations)} deviations for "
                f"{n_taps} taps"
            )
        self.taps = []
        for i in range(n_taps):
            node = sim.node(f"{self.path}.tap{i}")
            self.writes_node(node)
            self.taps.append(node)

    def nominal_tap_voltage(self, index):
        """Ideal voltage of tap ``index`` (0 = lowest)."""
        n = len(self.taps)
        return self.v_bottom + (self.v_top - self.v_bottom) * (index + 1) / (n + 1)

    def step(self, t, dt):
        for i, node in enumerate(self.taps):
            node.set(self.nominal_tap_voltage(i) + self.deviations[i])
