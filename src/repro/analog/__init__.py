"""Analog substrate: behavioural blocks, sources, filters, converters."""

from .blocks import TrackedInputBlock, clamp
from .chargepump import ChargePump
from .comparator import AnalogComparator, Digitizer, WindowComparator
from .dac import IdealDAC, ResistorLadder
from .filters import (
    TransimpedanceFilter,
    VoltageFilter,
    pi_loop_filter,
    rc_transimpedance,
)
from .lti import LTISystem, integrator, single_pole
from .opamp import OpAmp, UnityBuffer
from .pfd import PFD
from .samplehold import SampleHold
from .sources import (
    DCCurrent,
    DCVoltage,
    PulseVoltage,
    PWLVoltage,
    SineVoltage,
    WaveformCurrent,
)
from .vco import VCO

__all__ = [
    "AnalogComparator",
    "ChargePump",
    "DCCurrent",
    "DCVoltage",
    "Digitizer",
    "IdealDAC",
    "LTISystem",
    "OpAmp",
    "PFD",
    "PWLVoltage",
    "PulseVoltage",
    "ResistorLadder",
    "SampleHold",
    "SineVoltage",
    "TrackedInputBlock",
    "TransimpedanceFilter",
    "UnityBuffer",
    "VCO",
    "VoltageFilter",
    "WaveformCurrent",
    "WindowComparator",
    "clamp",
    "integrator",
    "pi_loop_filter",
    "rc_transimpedance",
    "single_pole",
]
