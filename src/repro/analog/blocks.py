"""Shared behavioural-block helpers for the analog substrate."""

from __future__ import annotations

from ..core.component import AnalogBlock


class TrackedInputBlock(AnalogBlock):
    """An analog block that remembers its previous-step input.

    Many behavioural models integrate their input over the elapsed
    step; the trapezoidal average of the previous and current input
    value gives second-order accuracy without a solver change.  This
    base class maintains that one-sample history.
    """

    def __init__(self, sim, name, parent=None):
        super().__init__(sim, name, parent=parent)
        self._u_prev = None

    def trapezoid_input(self, u_now):
        """Average of the previous and current input (init: current)."""
        if self._u_prev is None:
            self._u_prev = u_now
        avg = 0.5 * (self._u_prev + u_now)
        self._u_prev = u_now
        return avg


def clamp(value, lo, hi):
    """Clip ``value`` into ``[lo, hi]``."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value
