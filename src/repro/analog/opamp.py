"""Behavioural operational amplifier.

A single-pole op-amp model with finite gain, slew-rate limiting and
output saturation — the behavioural abstraction used by reference [10]
of the paper (VHDL-AMS op-amp fault modelling).  Its parameters (gain,
pole, slew, offset) are the targets of *parametric* fault injection,
the alternative analog fault model the paper contrasts with its
transient current pulses.
"""

from __future__ import annotations

from ..core.errors import SimulationError
from .blocks import TrackedInputBlock, clamp


class OpAmp(TrackedInputBlock):
    """Single-pole behavioural op-amp.

    The differential input ``(plus - minus + offset)`` is amplified by
    ``gain`` through a first-order pole at ``pole_hz``, then limited by
    slew rate and output saturation::

        dv/dt = clamp(2*pi*pole*(gain*vin - v), -slew, +slew)
        vout  = clamp(v, v_low, v_high)

    :param plus, minus: input nodes.
    :param out: output node.
    :param gain: DC open-loop gain (V/V).
    :param pole_hz: dominant pole frequency.
    :param slew: slew-rate limit in V/s (None = unlimited).
    :param v_low, v_high: output saturation rails.
    :param offset: input-referred offset voltage.
    """

    is_state = True

    def __init__(
        self,
        sim,
        name,
        plus,
        minus,
        out,
        gain=1e5,
        pole_hz=10.0,
        slew=None,
        v_low=0.0,
        v_high=5.0,
        offset=0.0,
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        if gain <= 0 or pole_hz <= 0:
            raise SimulationError(f"opamp {name}: gain and pole must be positive")
        self.plus = self.reads_node(plus)
        self.minus = self.reads_node(minus)
        self.out = self.writes_node(out)
        self.gain = float(gain)
        self.pole_hz = float(pole_hz)
        self.slew = float(slew) if slew is not None else None
        self.v_low = float(v_low)
        self.v_high = float(v_high)
        self.offset = float(offset)
        self._v = 0.5 * (v_low + v_high)

    def step(self, t, dt):
        import math

        vin = self.plus.v - self.minus.v + self.offset
        target = self.gain * vin
        if dt > 0:
            # Exact first-order relaxation toward the target, then
            # slew-limit the resulting excursion.
            alpha = 1.0 - math.exp(-2.0 * math.pi * self.pole_hz * dt)
            dv = (target - self._v) * alpha
            if self.slew is not None:
                dv = clamp(dv, -self.slew * dt, self.slew * dt)
            self._v += dv
            self._v = clamp(self._v, self.v_low, self.v_high)
        self.out.set(self._v)


class UnityBuffer(TrackedInputBlock):
    """A unity-gain buffer with bandwidth and slew limits.

    Behavioural shorthand for an op-amp in follower configuration,
    used to isolate the loop-filter node from capacitive loads.
    """

    is_state = True

    def __init__(self, sim, name, inp, out, bandwidth_hz=1e9, slew=None,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.inp = self.reads_node(inp)
        self.out = self.writes_node(out)
        self.bandwidth_hz = float(bandwidth_hz)
        self.slew = float(slew) if slew is not None else None
        self._v = None

    def step(self, t, dt):
        import math

        target = self.inp.v
        if self._v is None:
            self._v = target
        if dt > 0:
            alpha = 1.0 - math.exp(-2.0 * math.pi * self.bandwidth_hz * dt)
            dv = (target - self._v) * alpha
            if self.slew is not None:
                dv = clamp(dv, -self.slew * dt, self.slew * dt)
            self._v += dv
        self.out.set(self._v)
