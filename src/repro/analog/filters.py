"""Behavioural loop filters.

The paper injects its current pulse "at the input of the low-pass
filter (i.e., at the output of the charge pump)" — so the filter input
is a :class:`~repro.core.node.CurrentNode` and the filter is a
*transimpedance* LTI block: current in, control voltage out.  Two
classic charge-pump PLL filters are provided, both built on the exact
ZOH state-space integrator of :mod:`repro.analog.lti`.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..core.node import as_current_node
from .blocks import TrackedInputBlock, clamp
from .lti import LTISystem


class TransimpedanceFilter(TrackedInputBlock):
    """A linear filter from a node current to a node voltage.

    :param input_node: :class:`CurrentNode` whose summed current is the
        filter input.
    :param output_node: voltage node receiving the filter output.
    :param system: the :class:`~repro.analog.lti.LTISystem` (1 input,
        1 output).
    :param v_min, v_max: optional output clamp (supply rails).
    """

    is_state = True

    def __init__(
        self,
        sim,
        name,
        input_node,
        output_node,
        system,
        v_min=None,
        v_max=None,
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        if system.n_inputs != 1:
            raise SimulationError(f"filter {name}: system must have one input")
        self.input_node = self.reads_node(as_current_node(input_node))
        self.output_node = self.writes_node(output_node)
        self.system = system
        self.v_min = v_min
        self.v_max = v_max

    def step(self, t, dt):
        i_avg = self.trapezoid_input(self.input_node.i)
        if self.system.siso_fast:
            y = float(self.system.step_siso(i_avg, dt))
        else:
            y = float(self.system.step([i_avg], dt)[0])
        if self.v_min is not None or self.v_max is not None:
            lo = self.v_min if self.v_min is not None else -np.inf
            hi = self.v_max if self.v_max is not None else np.inf
            clamped = clamp(y, lo, hi)
            if clamped != y:
                # Anti-windup: pull the dominant state back to the rail
                # so the filter does not integrate beyond the supply.
                self._saturate_state(clamped)
                y = clamped
        self.output_node.set(y)

    def supports_ensemble(self):
        """Batched stepping needs the elementwise LTI fast path."""
        return self.system.siso_fast

    def enter_ensemble(self, k):
        """Promote the LTI state to one column per variant."""
        self.system.promote_state(k)

    def step_ensemble(self, t, dt, ensemble):
        """Per-variant :meth:`step` over the whole batch at once.

        Uses the same elementwise expressions as the scalar path
        (:meth:`LTISystem.step_siso`, selection-only clamp,
        multiply-by-exact-1.0 anti-windup masking), so each column is
        bitwise identical to a scalar run of that variant.
        """
        i_avg = self.trapezoid_input(self.input_node.i)
        y = self.system.step_siso(i_avg, dt)
        if self.v_min is not None or self.v_max is not None:
            lo = self.v_min if self.v_min is not None else -np.inf
            hi = self.v_max if self.v_max is not None else np.inf
            clamped = np.clip(y, lo, hi)
            mask = clamped != y
            if np.any(mask):
                self._saturate_state_ensemble(clamped, mask)
                y = np.where(mask, clamped, y)
        self.output_node.v = y

    def _saturate_state(self, level):
        # Scale states so the output equals the clamp level; exact for
        # single-state filters, a good behavioural approximation for
        # the two-state PI filter where both states ride together.
        if self.system.siso_fast:
            current = float(self.system.output_siso())
        else:
            current = float(self.system.output([0.0])[0])
        if current != 0:
            self.system.x = self.system.x * (level / current)

    def _saturate_state_ensemble(self, level, mask):
        # Vectorized _saturate_state: variants outside ``mask`` (and
        # those with zero unforced output) multiply their state by
        # exactly 1.0, which is a bitwise no-op in IEEE-754.
        current = self.system.output_siso()
        nonzero = current != 0.0
        safe = np.where(nonzero, current, 1.0)
        factor = np.where(mask & nonzero, level / safe, 1.0)
        x = self.system.x
        for row in range(x.shape[0]):
            x[row] = x[row] * factor

    def preset(self, volts):
        """Preset the filter output to ``volts`` (locked-start support).

        Sets every state so the unforced output equals ``volts`` —
        for the PI filter this puts the full charge on both capacitors,
        the steady-state configuration at lock.
        """
        self.system.x = np.full(self.system.n_states, float(volts))
        self.output_node.set(volts)
        self._u_prev = 0.0


def rc_transimpedance(r_ohms, c_farads, x0=None):
    """Parallel R // C driven by a current: ``V(s)/I(s) = R/(1+sRC)``."""
    if r_ohms <= 0 or c_farads <= 0:
        raise SimulationError("R and C must be positive")
    a = [[-1.0 / (r_ohms * c_farads)]]
    b = [[1.0 / c_farads]]
    return LTISystem(a=a, b=b, c=[[1.0]], x0=x0)


def pi_loop_filter(r_ohms, c1_farads, c2_farads, x0=None):
    """Classic charge-pump PLL filter: series R+C1, shunted by C2.

    The input current splits between C2 and the R-C1 branch::

        i = C2*dv2/dt + (v2 - v1)/R
        C1*dv1/dt = (v2 - v1)/R

    State vector ``[v2, v1]`` (v2 = output/control voltage, v1 = C1
    voltage).  ``Z(s) = (1 + sRC1) / (s(C1 + C2)(1 + sR*C1C2/(C1+C2)))``
    — a pure integrator plus a stabilising zero, which is what gives
    the charge-pump PLL its unlimited pull-in range.
    """
    if min(r_ohms, c1_farads, c2_farads) <= 0:
        raise SimulationError("R, C1 and C2 must be positive")
    a = [
        [-1.0 / (r_ohms * c2_farads), 1.0 / (r_ohms * c2_farads)],
        [1.0 / (r_ohms * c1_farads), -1.0 / (r_ohms * c1_farads)],
    ]
    b = [[1.0 / c2_farads], [0.0]]
    return LTISystem(a=a, b=b, c=[[1.0, 0.0]], x0=x0)


class VoltageFilter(TrackedInputBlock):
    """A linear filter from a node voltage to a node voltage."""

    is_state = True

    def __init__(self, sim, name, input_node, output_node, system, parent=None):
        super().__init__(sim, name, parent=parent)
        if system.n_inputs != 1:
            raise SimulationError(f"filter {name}: system must have one input")
        self.input_node = self.reads_node(input_node)
        self.output_node = self.writes_node(output_node)
        self.system = system

    def step(self, t, dt):
        v_avg = self.trapezoid_input(self.input_node.v)
        if self.system.siso_fast:
            self.output_node.set(float(self.system.step_siso(v_avg, dt)))
        else:
            self.output_node.set(float(self.system.step([v_avg], dt)[0]))

    def supports_ensemble(self):
        """Batched stepping needs the elementwise LTI fast path."""
        return self.system.siso_fast

    def enter_ensemble(self, k):
        """Promote the LTI state to one column per variant."""
        self.system.promote_state(k)

    def step_ensemble(self, t, dt, ensemble):
        """Per-variant :meth:`step` over the whole batch at once."""
        v_avg = self.trapezoid_input(self.input_node.v)
        self.output_node.v = self.system.step_siso(v_avg, dt)
