"""Sequential phase-frequency detector.

The textbook dual-flip-flop PFD used by the Figure 5 PLL: a rising
reference edge asserts UP, a rising feedback edge asserts DOWN, and as
soon as both are asserted an AND gate resets both.  It is a *digital*
component (the paper's PLL mixes behavioural digital and analog
sub-blocks), and both state flops are injectable SEU targets.
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.logic import Logic, logic


class PFD(DigitalComponent):
    """Dual-DFF sequential phase-frequency detector.

    :param ref: reference clock input (rising edges).
    :param fb: feedback clock input (rising edges).
    :param up: UP output (drives the charge-pump source switch).
    :param down: DOWN output (drives the charge-pump sink switch).
    :param reset_delay: delay of the reset path in seconds; a non-zero
        value reproduces the anti-dead-zone pulse of real PFDs.
    """

    def __init__(self, sim, name, ref, fb, up, down, reset_delay=0.0,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.ref = ref
        self.fb = fb
        self.up = up
        self.down = down
        self.reset_delay = reset_delay
        self._up_driver = up.driver(owner=self)
        self._down_driver = down.driver(owner=self)
        self._up_driver.set(Logic.L0)
        self._down_driver.set(Logic.L0)
        self._reset_pending = False
        self.process(self._on_ref, sensitivity=[ref])
        self.process(self._on_fb, sensitivity=[fb])
        self.process(self._check_reset, sensitivity=[up, down])

    def _on_ref(self):
        if self.ref.rose():
            self._up_driver.set(Logic.L1)

    def _on_fb(self):
        if self.fb.rose():
            self._down_driver.set(Logic.L1)

    def _check_reset(self):
        if (
            logic(self.up.value).is_high()
            and logic(self.down.value).is_high()
            and not self._reset_pending
        ):
            self._reset_pending = True
            self.sim.schedule(self.reset_delay, self._do_reset)

    def _do_reset(self):
        self._reset_pending = False
        self._up_driver.set(Logic.L0)
        self._down_driver.set(Logic.L0)

    def state_signals(self):
        return {"up": self.up, "down": self.down}
