"""Linear time-invariant state-space systems with exact ZOH stepping.

The loop filter of the PLL (and any other linear analog sub-block) is
described behaviourally as a state-space system

.. math:: \\dot x = A x + B u, \\qquad y = C x + D u

and advanced one solver step at a time with the *matrix exponential*
discretisation, which is exact for piecewise-constant inputs.  The
discretised pair ``(Ad, Bd)`` is cached per timestep so the refinement
windows around injection pulses stay cheap.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy.linalg import expm

from ..core import kernels as _kernels
from ..core.errors import SimulationError


class LTISystem:
    """A SISO/MIMO continuous-time LTI system stepped at discrete times.

    :param a: state matrix (n x n).
    :param b: input matrix (n x m).
    :param c: output matrix (p x n).
    :param d: feedthrough matrix (p x m), default zeros.
    :param x0: initial state, default zeros.
    :param cache_size: number of per-dt discretisations retained.
    """

    def __init__(self, a, b, c, d=None, x0=None, cache_size=64):
        self.a = np.atleast_2d(np.asarray(a, dtype=float))
        self.b = np.atleast_2d(np.asarray(b, dtype=float))
        if self.b.shape[0] != self.a.shape[0]:
            self.b = self.b.reshape(self.a.shape[0], -1)
        self.c = np.atleast_2d(np.asarray(c, dtype=float))
        n = self.a.shape[0]
        m = self.b.shape[1]
        p = self.c.shape[0]
        if self.a.shape != (n, n):
            raise SimulationError(f"A must be square, got {self.a.shape}")
        if self.c.shape[1] != n:
            raise SimulationError(
                f"C has {self.c.shape[1]} columns for {n} states"
            )
        self.d = (
            np.zeros((p, m))
            if d is None
            else np.atleast_2d(np.asarray(d, dtype=float))
        )
        self.x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
        if self.x.shape != (n,):
            raise SimulationError(f"x0 must have shape ({n},)")
        self._cache = OrderedDict()
        self._cache_size = cache_size
        #: True when the elementwise SISO fast path applies (see
        #: :meth:`step_siso`).
        self.siso_fast = n <= 2 and m == 1 and p == 1
        self._siso_cache = {}

    @property
    def n_states(self):
        """Number of state variables."""
        return self.a.shape[0]

    @property
    def n_inputs(self):
        """Number of inputs."""
        return self.b.shape[1]

    def discretize(self, dt):
        """Exact ZOH pair ``(Ad, Bd)`` for timestep ``dt`` (cached).

        Computed with one matrix exponential of the augmented matrix
        ``[[A, B], [0, 0]]``, which is valid even for singular ``A``
        (pure integrators, like a charge-pump capacitor).
        """
        key = float(dt)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        n = self.n_states
        m = self.n_inputs
        augmented = np.zeros((n + m, n + m))
        augmented[:n, :n] = self.a * dt
        augmented[:n, n:] = self.b * dt
        phi = expm(augmented)
        pair = (phi[:n, :n], phi[:n, n:])
        self._cache[key] = pair
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return pair

    def step(self, u, dt):
        """Advance the state by ``dt`` with input ``u`` held constant.

        Returns the output vector *after* the step.  ``dt = 0`` returns
        the current output without advancing.
        """
        u = np.atleast_1d(np.asarray(u, dtype=float))
        if dt > 0:
            ad, bd = self.discretize(dt)
            self.x = ad @ self.x + bd @ u
        return self.c @ self.x + self.d @ u

    # -- elementwise SISO fast path ---------------------------------------

    def _siso_coeffs(self, dt):
        """Unpacked ``(Ad, Bd)`` scalars for the fast path (cached)."""
        key = float(dt)
        cached = self._siso_cache.get(key)
        if cached is None:
            ad, bd = self.discretize(dt)
            if self.n_states == 1:
                cached = (ad[0, 0].item(), 0.0, 0.0, 0.0,
                          bd[0, 0].item(), 0.0)
            else:
                cached = (ad[0, 0].item(), ad[0, 1].item(),
                          ad[1, 0].item(), ad[1, 1].item(),
                          bd[0, 0].item(), bd[1, 0].item())
            self._siso_cache[key] = cached
        return cached

    def step_siso(self, u, dt):
        """Fast-path :meth:`step` for 1- and 2-state SISO systems.

        Semantically ``step([u], dt)[0]``, but computed with explicit
        scalar expressions instead of BLAS matvecs.  That skips numpy
        dispatch on the kernel's hottest block, and — more importantly
        — makes the update *elementwise reproducible*: evaluating the
        same expressions with ``u`` (and the promoted state rows) as
        ``(k,)`` arrays in ensemble mode produces bitwise-identical
        per-variant results, a guarantee BLAS gemv/gemm kernels do not
        give (they reassociate/fuse the dot products).

        ``u`` may be a float (scalar simulation) or a ``(k,)`` array
        (ensemble simulation with :attr:`x` promoted to ``(n, k)``);
        the return matches.  Only valid when :attr:`siso_fast`.

        The ensemble case dispatches to the optional compiled kernels
        (:mod:`repro.core.kernels`) when they are active; their
        import-time self-check guarantees the jitted loops reproduce
        these expressions bitwise, so the dispatch is invisible to the
        campaign's bit-identity contract.
        """
        x = self.x
        if (
            _kernels.USE_NUMBA
            and dt > 0
            and x.ndim == 2
            and isinstance(u, np.ndarray)
            and u.dtype == np.float64
            and x.dtype == np.float64
        ):
            y = np.empty_like(u)
            if self.n_states == 1:
                a00, _a01, _a10, _a11, b0, _b1 = self._siso_coeffs(dt)
                return _kernels.siso1_step_kernel(
                    x, u, a00, b0, self.c[0, 0].item(),
                    self.d[0, 0].item(), y,
                )
            a00, a01, a10, a11, b0, b1 = self._siso_coeffs(dt)
            return _kernels.siso2_step_kernel(
                x, u, a00, a01, a10, a11, b0, b1,
                self.c[0, 0].item(), self.c[0, 1].item(),
                self.d[0, 0].item(), y,
            )
        if self.n_states == 1:
            x0 = x[0]
            if dt > 0:
                a00, _a01, _a10, _a11, b0, _b1 = self._siso_coeffs(dt)
                x0 = a00 * x0 + b0 * u
                x[0] = x0
            y = self.c[0, 0] * x0
        else:
            x0 = x[0]
            x1 = x[1]
            if dt > 0:
                a00, a01, a10, a11, b0, b1 = self._siso_coeffs(dt)
                nx0 = a00 * x0 + a01 * x1 + b0 * u
                nx1 = a10 * x0 + a11 * x1 + b1 * u
                x[0] = nx0
                x[1] = nx1
                x0 = nx0
                x1 = nx1
            y = self.c[0, 0] * x0 + self.c[0, 1] * x1
        d00 = self.d[0, 0]
        if d00 != 0.0:
            y = y + d00 * u
        return y

    def output_siso(self, u=0.0):
        """Fast-path :meth:`output` for 1- and 2-state SISO systems."""
        x = self.x
        if self.n_states == 1:
            y = self.c[0, 0] * x[0]
        else:
            y = self.c[0, 0] * x[0] + self.c[0, 1] * x[1]
        d00 = self.d[0, 0]
        if d00 != 0.0:
            y = y + d00 * u
        return y

    def promote_state(self, k):
        """Widen the state to ``(n_states, k)`` for ensemble stepping.

        Every column starts as a copy of the current state, so all
        variants share the restored checkpoint exactly.
        """
        if self.x.ndim == 1:
            self.x = np.repeat(self.x.reshape(-1, 1), k, axis=1)

    def output(self, u=None):
        """Current output without advancing the state."""
        if u is None:
            u = np.zeros(self.n_inputs)
        u = np.atleast_1d(np.asarray(u, dtype=float))
        return self.c @ self.x + self.d @ u

    def state_dict(self):
        """State-vector capture for checkpoint/restore.

        The discretisation cache is deliberately excluded: it maps
        timestep to constant matrices, so it stays valid (and warm)
        across restores.
        """
        return {"x": self.x.copy()}

    def load_state_dict(self, state):
        """Restore a capture made by :meth:`state_dict`."""
        self.x = state["x"].copy()

    def reset(self, x0=None):
        """Reset the state (to zeros or a given vector)."""
        if x0 is None:
            self.x = np.zeros(self.n_states)
        else:
            x0 = np.asarray(x0, dtype=float)
            if x0.shape != (self.n_states,):
                raise SimulationError(
                    f"x0 must have shape ({self.n_states},), got {x0.shape}"
                )
            self.x = x0.copy()

    def dc_gain(self):
        """Steady-state output per unit DC input (requires stable A).

        :raises SimulationError: when A is singular (a pure
            integrator has no finite DC gain), including numerically
            singular matrices like the PI loop filter's.
        """
        if np.linalg.cond(self.a) > 1e12:
            raise SimulationError(
                "DC gain undefined: A is singular (system has a pure "
                "integrator)"
            )
        try:
            return self.c @ np.linalg.solve(-self.a, self.b) + self.d
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                "DC gain undefined: A is singular (system has a pure "
                "integrator)"
            ) from exc


def single_pole(gain, pole_hz, x0=None):
    """First-order low-pass: ``H(s) = gain / (1 + s / (2*pi*pole_hz))``."""
    w = 2.0 * np.pi * pole_hz
    return LTISystem(a=[[-w]], b=[[w * gain]], c=[[1.0]], x0=x0)


def integrator(gain=1.0, x0=None):
    """Pure integrator: ``H(s) = gain / s``."""
    return LTISystem(a=[[0.0]], b=[[gain]], c=[[1.0]], x0=x0)
