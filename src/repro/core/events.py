"""Discrete-event queue for the mixed-mode kernel.

The queue orders callbacks by (time, priority, insertion order).  Two
events at the same time execute in insertion order, which gives the
delta-cycle semantics the digital layer relies on: a zero-delay signal
update scheduled while processing time *t* runs later within the same
timestamp, never "in the past".
"""

from __future__ import annotations

import heapq
import itertools

from .errors import SchedulingError

#: Priority classes.  Analog solver steps run *before* ordinary digital
#: activity at the same timestamp so that digital processes sampling
#: analog nodes observe values consistent with the current time.
PRIORITY_ANALOG = 0
PRIORITY_NORMAL = 1
PRIORITY_MONITOR = 2


class Event:
    """A scheduled callback.  Cancellable via :meth:`cancel`."""

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time, priority, seq, callback):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6g} prio={self.priority} {state}>"


class EventQueue:
    """Min-heap of :class:`Event` objects keyed by (time, priority, seq)."""

    def __init__(self):
        self._heap = []
        self._seq = itertools.count()
        self.executed = 0

    def __len__(self):
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time, callback, priority=PRIORITY_NORMAL):
        """Schedule ``callback`` at absolute ``time``; returns the Event."""
        event = Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self):
        """Time of the next live event, or None when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self):
        """Remove and return the next live event.

        :raises SchedulingError: when the queue is empty.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SchedulingError("event queue is empty")
        self.executed += 1
        return heapq.heappop(self._heap)

    def _drop_cancelled(self):
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def clear(self):
        """Drop every pending event."""
        self._heap.clear()
