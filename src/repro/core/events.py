"""Discrete-event queue for the mixed-mode kernel.

The queue orders callbacks by (time, priority, insertion order).  Two
events at the same time execute in insertion order, which gives the
delta-cycle semantics the digital layer relies on: a zero-delay signal
update scheduled while processing time *t* runs later within the same
timestamp, never "in the past".

Insertion order is materialised as a monotonically increasing sequence
number.  Checkpoint/warm-start support (see
:mod:`repro.core.snapshot`) adds two refinements:

* the counter is a plain integer (`next_seq`) so a snapshot can record
  and restore it, keeping replayed runs sequence-identical with an
  uninterrupted run; and
* an *epoch band*: between :meth:`begin_epoch` and :meth:`end_epoch`,
  pushed events receive fractional sequence numbers just below a
  recorded mark.  A fault applied after restoring a mid-run snapshot
  then sorts exactly where it would have in a cold run — after all
  elaboration-time events but before every event scheduled while the
  simulation was running.
"""

from __future__ import annotations

import heapq

from .errors import SchedulingError

#: Priority classes.  Analog solver steps run *before* ordinary digital
#: activity at the same timestamp so that digital processes sampling
#: analog nodes observe values consistent with the current time.
PRIORITY_ANALOG = 0
PRIORITY_NORMAL = 1
PRIORITY_MONITOR = 2

#: Spacing of fractional sequence numbers inside an epoch band.  The
#: band spans half a unit below the mark, so up to ``0.5 / _EPOCH_STEP``
#: events fit before the band would leak into normal sequence space.
_EPOCH_STEP = 2.0 ** -20


class Event:
    """A scheduled callback.  Cancellable via :meth:`cancel`."""

    __slots__ = ("time", "priority", "seq", "callback", "cancelled")

    def __init__(self, time, priority, seq, callback):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6g} prio={self.priority} {state}>"


class EventQueue:
    """Min-heap of :class:`Event` objects keyed by (time, priority, seq)."""

    def __init__(self):
        self._heap = []
        self._next_seq = 0
        self._epoch = None
        self.executed = 0

    def __len__(self):
        return sum(1 for event in self._heap if not event.cancelled)

    # -- sequence numbering ------------------------------------------------

    def mark(self):
        """The sequence number the next normal push would receive."""
        return self._next_seq

    def begin_epoch(self, mark):
        """Hand out fractional seqs in ``(mark - 0.5, mark)`` until
        :meth:`end_epoch`.

        Events pushed inside the epoch order after everything pushed
        before ``mark`` and before everything pushed after it — the
        slot a fault-injection event occupies when it is applied
        between elaboration and the run.
        """
        self._epoch = [float(mark) - 0.5, 0]

    def end_epoch(self):
        """Return to normal integer sequence numbering."""
        self._epoch = None

    def _take_seq(self):
        if self._epoch is not None:
            base, n = self._epoch
            if (n + 1) * _EPOCH_STEP >= 0.5:
                raise SchedulingError("epoch sequence band exhausted")
            self._epoch[1] = n + 1
            return base + n * _EPOCH_STEP
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # -- scheduling --------------------------------------------------------

    def push(self, time, callback, priority=PRIORITY_NORMAL):
        """Schedule ``callback`` at absolute ``time``; returns the Event."""
        event = Event(time, priority, self._take_seq(), callback)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self):
        """Time of the next live event, or None when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self):
        """Remove and return the next live event.

        :raises SchedulingError: when the queue is empty.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SchedulingError("event queue is empty")
        self.executed += 1
        return heapq.heappop(self._heap)

    def _drop_cancelled(self):
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def clear(self):
        """Drop every pending event."""
        self._heap.clear()

    # -- checkpoint support ------------------------------------------------

    def capture(self):
        """Snapshot of the pending heap: (events, cancelled flags, seq).

        The event objects themselves are shared with the live heap;
        only the list and the mutable ``cancelled`` flags are copied.
        """
        events = list(self._heap)
        return events, [event.cancelled for event in events], self._next_seq

    def restore(self, state):
        """Reinstall a heap captured with :meth:`capture`.

        Events created after the capture are dropped; cancelled flags
        revert to their captured values.  The ``executed`` counter is
        *not* rewound — it counts real work done, across restores.
        """
        events, flags, next_seq = state
        for event, flag in zip(events, flags):
            event.cancelled = flag
        # The captured list was heap-ordered when taken, so it can be
        # reinstalled verbatim.
        self._heap = list(events)
        self._next_seq = next_seq
        self._epoch = None
