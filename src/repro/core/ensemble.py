"""Ensemble (batched) execution of fault variants.

A PA/PW sensitivity sweep runs the *same circuit* with the *same
injection site* many times, varying only the pulse parameters.  Those
runs share their entire digital trajectory until (and unless) the
analog disturbance propagates through a comparator — which is exactly
the structure this module exploits: variants of a fault sharing
topology and site are grouped into one **ensemble**, analog node state
becomes a ``(k,)`` float64 array (one column per variant), and every
solver step advances all ``k`` variants at once with vectorized block
evaluation, while the digital side of the kernel runs once, shared.

**Bit-identity is the contract.**  Every vectorized block evaluates
the same elementwise IEEE-754 expressions the scalar path uses (see
:meth:`~repro.analog.lti.LTISystem.step_siso` for why that matters),
so a variant's column is bit-for-bit the trace a scalar run would
have produced — as long as its digital behaviour agrees with the
ensemble.  The moment a variant *wants* a digital transition the
majority does not take (or vice versa), it is **peeled off**: marked
inactive, its column ignored from then on, and the campaign layer
re-runs it on the ordinary scalar warm-start path.  Peeling therefore
never changes results, only how much of the batch speedup a variant
enjoys.

The same applies to numerical divergence: a vectorized mirror of
:class:`~repro.core.budget.NumericalGuard` peels any variant whose
column goes non-finite or out of range, and the scalar re-run raises
the genuine :class:`NumericalDivergenceError` with full diagnostics.
"""

from __future__ import annotations

import math

import numpy as np

from .errors import SimulationError
from .trace import _SampleBuffer


class EnsembleUnsupportedError(SimulationError):
    """A solver block cannot participate in batched stepping."""


class EnsembleDrainedError(Exception):
    """Every variant has been peeled; stop stepping the batch.

    Control flow, not a failure: the campaign layer catches this and
    finishes the peeled variants on the scalar path.
    """


class _EnsembleProbeBuffer:
    """Batched replacement for one compiled probe sampler.

    Records sample times into a shared 1-D buffer and node values into
    a ``(samples, k)`` float64 matrix — one column per variant.  The
    host trace is left untouched during the batch; per-variant traces
    are assembled afterwards from the host prefix plus one column.
    """

    __slots__ = ("node", "attr", "min_interval", "last_time", "times",
                 "_values", "_n", "k")

    def __init__(self, probe, k):
        self.node = probe.node
        self.attr = probe.attr
        self.min_interval = probe.min_interval
        self.last_time = probe.last_time
        self.times = _SampleBuffer()
        self._values = np.empty((256, k), dtype=np.float64)
        self._n = 0
        self.k = k

    def sample(self, t):
        if (
            self.last_time is not None
            and self.min_interval > 0
            and t - self.last_time < self.min_interval
        ):
            return
        n = self._n
        values = self._values
        if n == values.shape[0]:
            grown = np.empty((2 * n, self.k), dtype=np.float64)
            grown[:n] = values
            self._values = values = grown
        values[n, :] = getattr(self.node, self.attr)
        self._n = n + 1
        self.times.append(t)
        self.last_time = t

    def column(self, pos):
        """This variant's samples (a copy, 1-D float64)."""
        return self._values[: self._n, pos].copy()


class _SaboteurPlan:
    """Per-saboteur injection table for one batch.

    Trapezoid pulses — the paper's standard SEU shape — are stored
    struct-of-arrays and evaluated for the whole batch with the exact
    elementwise expressions of
    :meth:`~repro.faults.current_pulse.TrapezoidPulse.current`; any
    other transient shape falls back to its scalar ``current`` per
    variant (``math.exp`` and ``np.exp`` do not round identically, so
    the double-exponential pulse must stay scalar to keep bit-identity
    — see :mod:`repro.faults.double_exp`).
    """

    __slots__ = ("k", "_entries", "_trap_pos", "_t0", "_pa", "_rt", "_ft",
                 "_pw", "_dur", "_others", "_t_lo", "_t_hi", "_eval")

    def __init__(self, k):
        self.k = k
        self._entries = {}
        self._trap_pos = None
        self._eval = None
        self._others = []
        self._t_lo = math.inf
        self._t_hi = -math.inf

    def add(self, pos, transient, time):
        if pos in self._entries:
            raise EnsembleUnsupportedError(
                "a batch variant may carry only one injection per saboteur"
            )
        self._entries[pos] = (float(time), transient)
        self._t_lo = min(self._t_lo, float(time))
        self._t_hi = max(self._t_hi, float(time) + transient.duration)

    def freeze(self):
        """Split entries into the vectorized and the per-variant sets."""
        from ..faults.current_pulse import (
            TrapezoidPulse,
            stack_trapezoids,
            trapezoid_currents,
        )

        self._eval = trapezoid_currents
        trap = []
        for pos, (t0, transient) in sorted(self._entries.items()):
            if type(transient) is TrapezoidPulse:
                trap.append((pos, t0, transient))
            else:
                self._others.append((pos, t0, transient))
        if trap:
            self._trap_pos = np.array([p for p, _, _ in trap], dtype=np.intp)
            self._t0 = np.array([t0 for _, t0, _ in trap])
            params = stack_trapezoids([tr for _, _, tr in trap])
            self._pa = params["pa"]
            self._rt = params["rt"]
            self._ft = params["ft"]
            self._pw = params["pw"]
            self._dur = params["duration"]

    def currents(self, t):
        """Per-variant injected current at time ``t`` (``(k,)`` array).

        Returns ``None`` when ``t`` is outside every pulse's support,
        which mirrors the scalar saboteur adding no contribution.
        """
        if not (self._t_lo <= t <= self._t_hi):
            return None
        out = np.zeros(self.k)
        if self._trap_pos is not None:
            tau = t - self._t0
            out[self._trap_pos] = self._eval(
                tau, self._pa, self._rt, self._ft, self._pw, self._dur
            )
        for pos, t0, transient in self._others:
            if t0 <= t < t0 + transient.duration:
                out[pos] = out[pos] + transient.current(t - t0)
        return out


class Ensemble:
    """One batch of fault variants advanced in lockstep.

    Usage (what the campaign runner does per batch)::

        sim.restore(checkpoint)
        ens = Ensemble(sim, k, guard=guard)
        for pos, fault in enumerate(batch):
            ens.add_injection(pos, saboteur_for(fault), fault.transient,
                              fault.time)
        ens.attach()
        try:
            sim.run(t_end)
        except EnsembleDrainedError:
            pass
        finally:
            ens.detach()
        for pos in ens.completed():
            traces = {name: ens.variant_trace(tr, pos) for ...}

    :param sim: the simulator (restored to the batch's checkpoint).
    :param size: number of variants ``k``.
    :param guard: optional :class:`NumericalGuard` whose configuration
        is mirrored vectorized (bad variants peel instead of raising).
    """

    def __init__(self, sim, size, guard=None):
        if size < 1:
            raise SimulationError("ensemble needs at least one variant")
        self.sim = sim
        self.size = int(size)
        self.active = np.ones(self.size, dtype=bool)
        self.peeled = {}
        self._n_active = self.size
        self._plans = {}
        self._plan = None
        self._probe_buffers = []
        self._trace_buffers = {}
        self._guard = guard
        self._guard_countdown = guard.check_every if guard is not None else 0
        self._guard_prev = {}
        self._attached = False

    # -- batch construction ----------------------------------------------

    def add_injection(self, pos, saboteur, transient, time):
        """Assign variant ``pos`` the pulse ``transient`` at ``time``."""
        if not 0 <= pos < self.size:
            raise SimulationError(f"variant position {pos} out of range")
        if time < self.sim.now:
            raise SimulationError(
                f"injection at t={time} precedes the batch checkpoint "
                f"t={self.sim.now}"
            )
        plan = self._plans.get(saboteur)
        if plan is None:
            plan = self._plans[saboteur] = _SaboteurPlan(self.size)
        plan.add(pos, transient, time)

    def plan_for(self, saboteur):
        """The injection plan for ``saboteur`` (None: no injections)."""
        return self._plans.get(saboteur)

    def attach(self):
        """Validate the design, promote state and take over stepping.

        :raises EnsembleUnsupportedError: when any solver block can
            neither step batched nor run its scalar step shared; the
            caller falls back to scalar execution.
        """
        solver = self.sim.analog
        if getattr(solver, "_ensemble", None) is not None:
            raise SimulationError("solver already has an attached ensemble")
        plan = []
        for block in solver.evaluation_order():
            fn = getattr(block, "step_ensemble", None)
            supports = getattr(block, "supports_ensemble", None)
            if fn is not None and (supports is None or supports()):
                plan.append((fn, True))
                enter = getattr(block, "enter_ensemble", None)
                if enter is not None:
                    enter(self.size)
            elif getattr(block, "ensemble_safe", False):
                plan.append((block.step, False))
            else:
                raise EnsembleUnsupportedError(
                    f"block {getattr(block, 'path', block)!r} does not "
                    "support batched stepping"
                )
        for plan_obj in self._plans.values():
            plan_obj.freeze()
        self._plan = plan
        self._probe_buffers = [
            _EnsembleProbeBuffer(probe, self.size) for probe in solver._probes
        ]
        self._trace_buffers = {
            id(probe.trace): buf
            for probe, buf in zip(solver._probes, self._probe_buffers)
        }
        solver._ensemble = self
        self._attached = True

    def detach(self):
        """Return stepping to the scalar path (buffers stay readable)."""
        if self._attached:
            self.sim.analog._ensemble = None
            self._attached = False

    # -- peel bookkeeping --------------------------------------------------

    def peel(self, pos, reason):
        """Remove variant ``pos`` from the ensemble."""
        pos = int(pos)
        if self.active[pos]:
            self.active[pos] = False
            self.peeled[pos] = reason
            self._n_active -= 1

    def peel_mask(self, mask, reason):
        """Peel every active variant selected by the boolean ``mask``."""
        for pos in np.nonzero(mask & self.active)[0]:
            self.peel(pos, reason)

    def consensus(self, codes):
        """Majority vote among active variants.

        :param codes: per-variant small non-negative int array (e.g.
            0=hold, 1=rise, 2=fall).
        :returns: ``(chosen, dissent)`` — the winning code and a bool
            mask of active variants that voted differently.  Ties break
            to the smallest code, deterministically.
        """
        act = self.active
        counts = np.bincount(codes[act], minlength=3)
        chosen = int(np.argmax(counts))
        return chosen, act & (codes != chosen)

    def completed(self):
        """Positions of variants that finished inside the batch."""
        return [int(p) for p in np.nonzero(self.active)[0]]

    # -- stepping ----------------------------------------------------------

    def solver_step(self, t, dt):
        """One analog step for all active variants (solver hook).

        :raises EnsembleDrainedError: when no active variant remains.
        """
        # Peeled columns keep free-running with whatever garbage they
        # hold; their values are never read back, but they can produce
        # IEEE warnings (inf - inf, ...) that mean nothing here.
        with np.errstate(all="ignore"):
            for node in self.sim.analog.current_nodes:
                node.i = np.zeros(self.size)
                node._contributions.clear()
            for fn, batched in self._plan:
                if batched:
                    fn(t, dt, self)
                else:
                    fn(t, dt)
            for buf in self._probe_buffers:
                buf.sample(t)
            self._guard_step(t)
        if self._n_active == 0:
            raise EnsembleDrainedError(
                f"all {self.size} variants peeled by t={t:.6g}"
            )

    def _guard_step(self, t):
        """Vectorized mirror of ``NumericalGuard.maybe_check``.

        Same stride and same predicates as the scalar guard, applied
        per column; offending variants peel (their scalar re-run then
        raises the genuine diagnostic).  Shared scalar values going bad
        peel the whole batch.
        """
        guard = self._guard
        if guard is None:
            return
        self._guard_countdown -= 1
        if self._guard_countdown > 0:
            return
        self._guard_countdown = guard.check_every
        max_abs = guard.max_abs
        max_delta = guard.max_step_delta
        for name, node in self.sim.nodes.items():
            value = node.v
            if isinstance(value, np.ndarray):
                bad = ~np.isfinite(value)
                if max_abs is not None:
                    bad |= (value > max_abs) | (value < -max_abs)
                if max_delta is not None:
                    last = self._guard_prev.get(name)
                    if last is not None:
                        bad |= np.abs(value - last) > max_delta
                    self._guard_prev[name] = np.array(value, copy=True)
                if bad.any():
                    self.peel_mask(bad, "numerical-divergence")
            else:
                ok = math.isfinite(value) and (
                    max_abs is None or -max_abs <= value <= max_abs
                )
                if not ok:
                    self.peel_mask(self.active.copy(), "numerical-divergence")

    # -- result extraction -------------------------------------------------

    def variant_trace(self, trace, pos):
        """Variant ``pos``'s private copy of a recorded trace.

        Analog probe traces get the host prefix (everything recorded
        up to the batch checkpoint) plus this variant's batched sample
        column; digital traces — shared by construction for surviving
        variants — are cloned as-is.
        """
        dup = trace.clone()
        buf = self._trace_buffers.get(id(trace))
        if buf is not None:
            dup._times.extend(buf.times.view())
            dup._values.extend(buf.column(pos))
            dup._cache = None
        return dup

    def __repr__(self):
        return (
            f"<Ensemble k={self.size} active={self._n_active} "
            f"peeled={len(self.peeled)}>"
        )
