"""Digital signals.

A :class:`Signal` carries a value through the event-driven part of the
mixed-mode simulation.  Logic signals carry :class:`~repro.core.logic.Logic`
levels and support multi-driver resolution; signals may also carry
arbitrary Python payloads (integers, enum states) on a single driver,
which the higher-level behavioural models use.

Updates are scheduled through the simulator's event queue with
*transport* delay semantics: every scheduled transaction is applied at
its own time.  A zero-delay drive lands in the same timestamp but in a
later delta, exactly like a VHDL ``after 0 ns`` assignment.

Fault-injection hooks:

``deposit(value)``
    overwrite the current value once and let the circuit evolve —
    the semantics of an SEU bit-flip in a memory element.
``force(value)`` / ``release()``
    persistently pin the value — the semantics of a stuck-at fault or
    an externally held saboteur output.
"""

from __future__ import annotations

from .errors import SimulationError
from .logic import Logic, logic, resolve_many


class Driver:
    """One contribution to a resolved signal."""

    __slots__ = ("signal", "owner", "value")

    def __init__(self, signal, owner=None, value=Logic.Z):
        self.signal = signal
        self.owner = owner
        self.value = value

    def set(self, value, delay=0.0):
        """Schedule this driver's contribution to become ``value``.

        Returns the scheduled :class:`~repro.core.events.Event`, which
        a caller may cancel — the hook inertial-delay models use to
        swallow glitches shorter than their propagation delay.
        """
        return self.signal._schedule_driver_update(self, value, delay)

    def __repr__(self):
        return f"<Driver of {self.signal.name} = {self.value!r}>"


class Signal:
    """A named, traceable digital signal.

    :param sim: owning :class:`~repro.core.kernel.Simulator`.
    :param name: hierarchical name used in traces and reports.
    :param init: initial value (default ``Logic.U``).
    :param resolved: when True, values from multiple drivers are merged
        with the IEEE-1164 resolution table; when False a second driver
        is an error.
    """

    def __init__(self, sim, name, init=Logic.U, resolved=True):
        self.sim = sim
        self.name = name
        self.resolved = resolved
        self._value = init
        self._prev = init
        self._last_change_time = None
        self._drivers = []
        self._default_driver = None
        self._listeners = []
        self._forced = False
        self._forced_value = None
        self.change_count = 0
        sim._register_signal(self)

    # -- value access -------------------------------------------------

    @property
    def value(self):
        """The current (possibly forced) value."""
        if self._forced:
            return self._forced_value
        return self._value

    @property
    def prev(self):
        """The value held immediately before the last change."""
        return self._prev

    @property
    def last_change_time(self):
        """Simulation time of the last value change (None before any)."""
        return self._last_change_time

    def rose(self):
        """True during the delta in which this signal changed to 1."""
        try:
            new_high = logic(self.value).is_high()
            old_low = not logic(self._prev).is_high()
        except Exception:
            return False
        return new_high and old_low

    def fell(self):
        """True during the delta in which this signal changed to 0."""
        try:
            new_low = logic(self.value).is_low()
            old_high = not logic(self._prev).is_low()
        except Exception:
            return False
        return new_low and old_high

    # -- driving ------------------------------------------------------

    def driver(self, owner=None):
        """Create a new driver for this signal.

        :raises SimulationError: for a second driver on an unresolved
            signal.
        """
        if self._drivers and not self.resolved:
            raise SimulationError(
                f"signal {self.name} is unresolved and already driven"
            )
        drv = Driver(self, owner=owner)
        self._drivers.append(drv)
        return drv

    def drive(self, value, delay=0.0):
        """Drive through the signal's implicit default driver."""
        if self._default_driver is None:
            self._default_driver = self.driver(owner="<default>")
        self._default_driver.set(value, delay)

    def _schedule_driver_update(self, drv, value, delay):
        if delay < 0:
            raise SimulationError(
                f"negative delay {delay} driving signal {self.name}"
            )

        def apply():
            drv.value = value
            self._refresh()

        return self.sim.schedule(delay, apply)

    def _refresh(self):
        if len(self._drivers) == 1:
            new = self._drivers[0].value
        else:
            new = resolve_many(drv.value for drv in self._drivers)
        self._apply(new)

    def _apply(self, new):
        if self._forced:
            # Driver activity is remembered (in driver.value) but the
            # observable value stays pinned until release().
            self._value = new
            return
        if new == self._value:
            return
        self._prev = self._value
        self._value = new
        self._on_changed()

    def _on_changed(self):
        self._last_change_time = self.sim.now
        self.change_count += 1
        for listener in tuple(self._listeners):
            listener(self)

    # -- fault-injection hooks -----------------------------------------

    def deposit(self, value):
        """Immediately overwrite the value (SEU bit-flip semantics)."""
        if self._forced:
            raise SimulationError(
                f"cannot deposit on forced signal {self.name}; release first"
            )
        if value == self._value:
            return
        self._prev = self._value
        self._value = value
        self._on_changed()

    def force(self, value):
        """Pin the observable value until :meth:`release` (stuck-at)."""
        changed = value != self.value
        if not self._forced:
            self._forced = True
        if changed:
            self._prev = self._forced_value if self._forced_value is not None else self._value
        self._forced_value = value
        if changed:
            self._on_changed()

    def release(self):
        """Remove a :meth:`force`; the resolved driver value reappears."""
        if not self._forced:
            return
        forced_value = self._forced_value
        self._forced = False
        self._forced_value = None
        if self._value != forced_value:
            self._prev = forced_value
            self._on_changed()

    @property
    def is_forced(self):
        """True while a :meth:`force` is active."""
        return self._forced

    # -- checkpoint support ----------------------------------------------

    def _state(self):
        """Capture everything a snapshot needs to replay this signal."""
        return (
            self._value,
            self._prev,
            self._last_change_time,
            self.change_count,
            self._forced,
            self._forced_value,
            list(self._drivers),
            [drv.value for drv in self._drivers],
            self._default_driver,
            list(self._listeners),
        )

    def _load_state(self, state):
        """Restore a capture made by :meth:`_state`."""
        (
            self._value,
            self._prev,
            self._last_change_time,
            self.change_count,
            self._forced,
            self._forced_value,
            drivers,
            driver_values,
            self._default_driver,
            listeners,
        ) = state
        self._drivers = list(drivers)
        for drv, value in zip(self._drivers, driver_values):
            drv.value = value
        self._listeners = list(listeners)

    # -- observation ----------------------------------------------------

    def on_change(self, callback):
        """Call ``callback(signal)`` after every value change."""
        self._listeners.append(callback)
        return callback

    def remove_listener(self, callback):
        """Unregister a callback added with :meth:`on_change`."""
        self._listeners.remove(callback)

    def __repr__(self):
        val = self.value
        shown = val.char if isinstance(val, Logic) else repr(val)
        return f"<Signal {self.name}={shown}>"
