"""Waveform traces.

Both the digital and the analog sides of the kernel record activity
into :class:`Trace` objects: time-ordered ``(t, value)`` samples.  A
digital trace is *event sampled* (one sample per value change, step
interpolation); an analog trace is *step sampled* (one sample per
solver step, linear interpolation).

Traces are what the paper's "results (traces) analysis" stage consumes:
the campaign engine compares a faulty trace against the golden trace,
with an amplitude tolerance for analog nodes (Section 4.1).
"""

from __future__ import annotations

import bisect

import numpy as np

from .errors import MeasurementError
from .logic import Logic

#: Interpolation styles.
STEP = "step"
LINEAR = "linear"


def _to_float(value):
    """Map a trace payload to a float for numeric analysis.

    Logic levels map to 0.0/1.0 with NaN for non-boolean levels;
    numbers pass through; anything else raises.
    """
    if isinstance(value, Logic):
        if value.is_high():
            return 1.0
        if value.is_low():
            return 0.0
        return float("nan")
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    raise MeasurementError(f"trace value {value!r} is not numeric")


class Trace:
    """A time-ordered sequence of waveform samples.

    :param name: label used in reports.
    :param interp: :data:`STEP` for event-sampled digital traces,
        :data:`LINEAR` for analog traces.
    """

    def __init__(self, name, interp=LINEAR):
        if interp not in (STEP, LINEAR):
            raise MeasurementError(f"unknown interpolation {interp!r}")
        self.name = name
        self.interp = interp
        self._times = []
        self._values = []
        self._cache = None

    # -- construction ---------------------------------------------------

    def append(self, time, value):
        """Append one sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise MeasurementError(
                f"trace {self.name}: time {time} precedes last sample "
                f"{self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)
        self._cache = None

    @classmethod
    def from_arrays(cls, name, times, values, interp=LINEAR):
        """Build a trace from parallel arrays (copied)."""
        times = list(times)
        values = list(values)
        if len(times) != len(values):
            raise MeasurementError("times and values must have equal length")
        if any(b < a for a, b in zip(times, times[1:])):
            raise MeasurementError("times must be non-decreasing")
        trace = cls(name, interp=interp)
        trace._times = times
        trace._values = values
        return trace

    # -- basic access -----------------------------------------------------

    def __len__(self):
        return len(self._times)

    def __iter__(self):
        return iter(zip(self._times, self._values))

    @property
    def times(self):
        """Sample times as a numpy array (cached)."""
        self._ensure_cache()
        return self._cache[0]

    @property
    def values(self):
        """Sample values as a float numpy array (cached).

        Logic values map to 0/1/NaN; see :func:`_to_float`.
        """
        self._ensure_cache()
        return self._cache[1]

    @property
    def raw_values(self):
        """The unconverted sample payloads (list)."""
        return list(self._values)

    def _ensure_cache(self):
        if self._cache is None:
            times = np.asarray(self._times, dtype=float)
            values = np.asarray([_to_float(v) for v in self._values], dtype=float)
            self._cache = (times, values)

    @property
    def t_start(self):
        """Time of the first sample."""
        self._require_samples()
        return self._times[0]

    @property
    def t_end(self):
        """Time of the last sample."""
        self._require_samples()
        return self._times[-1]

    @property
    def final(self):
        """Payload of the last sample."""
        self._require_samples()
        return self._values[-1]

    def _require_samples(self, n=1):
        if len(self._times) < n:
            raise MeasurementError(
                f"trace {self.name} needs at least {n} sample(s), has "
                f"{len(self._times)}"
            )

    # -- interpolation ------------------------------------------------------

    def at(self, time):
        """Value at ``time`` using the trace's interpolation style.

        Before the first sample the first value is returned; after the
        last, the last value.
        """
        self._require_samples()
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return _to_float(self._values[0])
        if self.interp == STEP or idx >= len(self._times) - 1:
            return _to_float(self._values[idx])
        t0, t1 = self._times[idx], self._times[idx + 1]
        v0 = _to_float(self._values[idx])
        v1 = _to_float(self._values[idx + 1])
        if t1 == t0:
            return v1
        frac = (time - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def value_at(self, time):
        """Raw payload in effect at ``time`` (step semantics)."""
        self._require_samples()
        idx = bisect.bisect_right(self._times, time) - 1
        return self._values[max(idx, 0)]

    def resample(self, grid):
        """Values on an arbitrary time grid (numpy array result)."""
        grid = np.asarray(grid, dtype=float)
        if self.interp == LINEAR:
            return np.interp(grid, self.times, self.values)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(self) - 1)
        return self.values[idx]

    # -- slicing ---------------------------------------------------------

    def segment(self, t0=None, t1=None):
        """Sub-trace with samples in ``[t0, t1]`` (same interpolation)."""
        self._require_samples()
        lo = 0 if t0 is None else bisect.bisect_left(self._times, t0)
        hi = len(self._times) if t1 is None else bisect.bisect_right(self._times, t1)
        sub = Trace(self.name, interp=self.interp)
        sub._times = self._times[lo:hi]
        sub._values = self._values[lo:hi]
        return sub

    # -- events ------------------------------------------------------------

    def crossings(self, level, direction="rise"):
        """Times at which the waveform crosses ``level``.

        For linear traces the crossing time is linearly interpolated;
        for step traces it is the change time.  NaN samples never
        participate in a crossing.

        :param direction: ``"rise"``, ``"fall"`` or ``"both"``.
        """
        if direction not in ("rise", "fall", "both"):
            raise MeasurementError(f"unknown direction {direction!r}")
        times = self.times
        values = self.values
        result = []
        for i in range(1, len(times)):
            v0, v1 = values[i - 1], values[i]
            if np.isnan(v0) or np.isnan(v1):
                continue
            rising = v0 < level <= v1
            falling = v0 > level >= v1
            if not (rising or falling):
                continue
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and not falling:
                continue
            if self.interp == LINEAR and v1 != v0:
                frac = (level - v0) / (v1 - v0)
                result.append(times[i - 1] + frac * (times[i] - times[i - 1]))
            else:
                result.append(times[i])
        return np.asarray(result)

    def edges(self, direction="rise"):
        """Change times of a digital trace (0->1 rises, 1->0 falls)."""
        return self.crossings(0.5, direction=direction)

    def periods(self, level=0.5, direction="rise"):
        """Successive intervals between same-direction crossings."""
        crossing_times = self.crossings(level, direction=direction)
        return np.diff(crossing_times)

    # -- statistics ---------------------------------------------------------

    def minimum(self, t0=None, t1=None):
        """Minimum value over ``[t0, t1]`` (NaN-aware)."""
        return float(np.nanmin(self._window_values(t0, t1)))

    def maximum(self, t0=None, t1=None):
        """Maximum value over ``[t0, t1]`` (NaN-aware)."""
        return float(np.nanmax(self._window_values(t0, t1)))

    def mean(self, t0=None, t1=None):
        """Time-weighted mean over ``[t0, t1]`` via trapezoidal rule."""
        seg = self.segment(t0, t1)
        seg._require_samples(2)
        times, values = seg.times, seg.values
        span = times[-1] - times[0]
        if span == 0:
            return float(values[-1])
        return float(np.trapezoid(values, times) / span)

    def _window_values(self, t0, t1):
        seg = self.segment(t0, t1)
        seg._require_samples()
        return seg.values

    def __repr__(self):
        return f"<Trace {self.name} n={len(self)} interp={self.interp}>"


def difference(trace_a, trace_b, grid=None):
    """Pointwise ``a - b`` on a shared grid; returns (grid, delta).

    When ``grid`` is omitted the union of both traces' sample times
    restricted to the overlapping interval is used.
    """
    if grid is None:
        t0 = max(trace_a.t_start, trace_b.t_start)
        t1 = min(trace_a.t_end, trace_b.t_end)
        if t1 < t0:
            raise MeasurementError(
                f"traces {trace_a.name} and {trace_b.name} do not overlap"
            )
        merged = np.union1d(trace_a.times, trace_b.times)
        grid = merged[(merged >= t0) & (merged <= t1)]
    grid = np.asarray(grid, dtype=float)
    return grid, trace_a.resample(grid) - trace_b.resample(grid)
