"""Waveform traces.

Both the digital and the analog sides of the kernel record activity
into :class:`Trace` objects: time-ordered ``(t, value)`` samples.  A
digital trace is *event sampled* (one sample per value change, step
interpolation); an analog trace is *step sampled* (one sample per
solver step, linear interpolation).

Traces are what the paper's "results (traces) analysis" stage consumes:
the campaign engine compares a faulty trace against the golden trace,
with an amplitude tolerance for analog nodes (Section 4.1).

Storage: each sample column lives in a :class:`_SampleBuffer` — an
amortized-growth float64 numpy array for the dominant case (analog
solver samples are plain floats), demoting itself to a Python object
list the first time a non-float payload (a Logic level, an int, ...)
is appended.  In float mode the ``times``/``values`` properties return
zero-copy views, so reading a trace no longer reconverts the whole
sample list after every append the way the old list-backed cache did.
"""

from __future__ import annotations

import bisect

import numpy as np

from .errors import MeasurementError
from .logic import Logic

#: Interpolation styles.
STEP = "step"
LINEAR = "linear"

#: Starting capacity of a sample buffer (doubles on overflow).
_INITIAL_CAPACITY = 16


def _to_float(value):
    """Map a trace payload to a float for numeric analysis.

    Logic levels map to 0.0/1.0 with NaN for non-boolean levels;
    numbers pass through; anything else raises.
    """
    if isinstance(value, Logic):
        if value.is_high():
            return 1.0
        if value.is_low():
            return 0.0
        return float("nan")
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    raise MeasurementError(f"trace value {value!r} is not numeric")


class _SampleBuffer:
    """One sample column with amortized-growth storage.

    Float payloads land in a pre-allocated float64 numpy array that
    doubles when full; the first non-float payload demotes the buffer
    to a plain Python list so raw payloads (Logic levels, ints) are
    preserved exactly.  The surface is deliberately list-like —
    ``append``/``len``/iteration/indexing/``==`` — because the
    kernel's compiled probe samplers bind ``buffer.append`` directly
    and checkpoint restore truncates buffers in place, so the buffer
    *object* must stay alive for the lifetime of its trace.
    """

    __slots__ = ("_data", "_n", "_objects")

    def __init__(self):
        self._data = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0
        self._objects = None

    # -- hot path ---------------------------------------------------------

    def append(self, value):
        objects = self._objects
        if objects is not None:
            objects.append(value)
            return
        if isinstance(value, float):
            n = self._n
            data = self._data
            if n == data.shape[0]:
                data = self._grow(n + 1)
            data[n] = value
            self._n = n + 1
            return
        self._demote().append(value)

    def _grow(self, need):
        capacity = max(2 * self._data.shape[0], need, _INITIAL_CAPACITY)
        data = np.empty(capacity, dtype=np.float64)
        data[: self._n] = self._data[: self._n]
        self._data = data
        return data

    def _demote(self):
        """Switch to object-list storage, keeping existing samples."""
        self._objects = self._data[: self._n].tolist()
        return self._objects

    def extend(self, values):
        """Append many payloads (bulk copy for float64 arrays)."""
        if self._objects is not None:
            self._objects.extend(values)
            return
        if not isinstance(values, (list, tuple, np.ndarray, _SampleBuffer)):
            values = list(values)
        if isinstance(values, _SampleBuffer):
            if values._objects is not None:
                self._demote().extend(values._objects)
                return
            values = values.view()
        arr = np.asarray(values) if not isinstance(values, np.ndarray) else values
        if arr.ndim == 1 and arr.dtype == np.float64:
            need = self._n + arr.shape[0]
            if need > self._data.shape[0]:
                self._grow(need)
            self._data[self._n : need] = arr
            self._n = need
            return
        for value in values:
            self.append(value)

    # -- views and copies -------------------------------------------------

    @property
    def is_float(self):
        """True while every payload has been a float (numpy mode)."""
        return self._objects is None

    def view(self):
        """Zero-copy float64 view of the live samples (float mode only)."""
        return self._data[: self._n]

    def raw_list(self):
        """The payloads as a new Python list."""
        if self._objects is not None:
            return list(self._objects)
        return self._data[: self._n].tolist()

    def copy_data(self):
        """An independent capture for later :meth:`load_prefix`."""
        if self._objects is not None:
            return list(self._objects)
        return self._data[: self._n].copy()

    # -- in-place mutation (checkpoint / warm-start machinery) ------------

    def truncate(self, n):
        """Drop samples beyond the first ``n``, in place."""
        if self._objects is not None:
            del self._objects[n:]
        elif n < self._n:
            self._n = max(n, 0)

    def load_prefix(self, data, n):
        """Become the first ``n`` entries of ``data``, in place.

        ``data`` is a capture from :meth:`copy_data` (float64 array or
        list); the buffer object identity is preserved so bound-method
        fast paths and snapshot references stay valid.
        """
        if isinstance(data, np.ndarray):
            self._objects = None
            if self._data.shape[0] < n:
                self._data = np.empty(
                    max(n, _INITIAL_CAPACITY), dtype=np.float64
                )
            self._data[:n] = data[:n]
            self._n = n
        else:
            if self._objects is None:
                self._objects = []
            self._objects[:] = data[:n]

    def load_from(self, other):
        """Become a copy of ``other`` (a :class:`_SampleBuffer`)."""
        self.load_prefix(other.copy_data(), len(other))

    # -- list-like surface ------------------------------------------------

    def __len__(self):
        if self._objects is not None:
            return len(self._objects)
        return self._n

    def __iter__(self):
        if self._objects is not None:
            return iter(self._objects)
        return iter(self._data[: self._n].tolist())

    def __getitem__(self, index):
        if self._objects is not None:
            return self._objects[index]
        if isinstance(index, slice):
            return self._data[: self._n][index].tolist()
        n = self._n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("sample index out of range")
        return float(self._data[index])

    def __eq__(self, other):
        if isinstance(other, _SampleBuffer):
            if self._objects is None and other._objects is None:
                a, b = self.view(), other.view()
                return a.shape == b.shape and bool(np.array_equal(a, b))
            return self.raw_list() == other.raw_list()
        if isinstance(other, (list, tuple)):
            return self.raw_list() == list(other)
        return NotImplemented

    __hash__ = None

    def __array__(self, dtype=None, copy=None):
        if self._objects is None:
            arr = self._data[: self._n]
        else:
            arr = np.asarray(self._objects)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        return np.array(arr) if copy else arr

    def __repr__(self):
        mode = "object" if self._objects is not None else "float64"
        return f"<_SampleBuffer n={len(self)} mode={mode}>"


class Trace:
    """A time-ordered sequence of waveform samples.

    :param name: label used in reports.
    :param interp: :data:`STEP` for event-sampled digital traces,
        :data:`LINEAR` for analog traces.
    """

    def __init__(self, name, interp=LINEAR):
        if interp not in (STEP, LINEAR):
            raise MeasurementError(f"unknown interpolation {interp!r}")
        self.name = name
        self.interp = interp
        self._times = _SampleBuffer()
        self._values = _SampleBuffer()
        self._cache = None

    # -- construction ---------------------------------------------------

    def append(self, time, value):
        """Append one sample; times must be non-decreasing."""
        times = self._times
        if len(times) and time < times[-1]:
            raise MeasurementError(
                f"trace {self.name}: time {time} precedes last sample "
                f"{times[-1]}"
            )
        times.append(time)
        self._values.append(value)
        self._cache = None

    @classmethod
    def from_arrays(cls, name, times, values, interp=LINEAR):
        """Build a trace from parallel arrays (copied)."""
        trace = cls(name, interp=interp)
        trace._times.extend(times)
        trace._values.extend(values)
        if len(trace._times) != len(trace._values):
            raise MeasurementError("times and values must have equal length")
        tb = trace._times
        if tb.is_float:
            view = tb.view()
            if view.shape[0] > 1 and bool(np.any(np.diff(view) < 0)):
                raise MeasurementError("times must be non-decreasing")
        else:
            seq = tb.raw_list()
            if any(b < a for a, b in zip(seq, seq[1:])):
                raise MeasurementError("times must be non-decreasing")
        return trace

    # -- basic access -----------------------------------------------------

    def __len__(self):
        return len(self._times)

    def __iter__(self):
        return iter(zip(self._times, self._values))

    @property
    def times(self):
        """Sample times as a numpy array (zero-copy in float mode)."""
        times = self._times
        if times.is_float:
            return times.view()
        self._ensure_cache()
        return self._cache[0]

    @property
    def values(self):
        """Sample values as a float numpy array.

        Logic values map to 0/1/NaN; see :func:`_to_float`.  Float-mode
        traces return a zero-copy view of the backing buffer.
        """
        values = self._values
        if values.is_float:
            return values.view()
        self._ensure_cache()
        return self._cache[1]

    @property
    def raw_values(self):
        """The unconverted sample payloads (list)."""
        return self._values.raw_list()

    def _ensure_cache(self):
        if self._cache is None:
            tb, vb = self._times, self._values
            times = (
                tb.view()
                if tb.is_float
                else np.asarray(tb.raw_list(), dtype=float)
            )
            if vb.is_float:
                values = vb.view()
            else:
                values = np.asarray(
                    [_to_float(v) for v in vb.raw_list()], dtype=float
                )
            self._cache = (times, values)

    @property
    def t_start(self):
        """Time of the first sample."""
        self._require_samples()
        return self._times[0]

    @property
    def t_end(self):
        """Time of the last sample."""
        self._require_samples()
        return self._times[-1]

    @property
    def final(self):
        """Payload of the last sample."""
        self._require_samples()
        return self._values[-1]

    def _require_samples(self, n=1):
        if len(self._times) < n:
            raise MeasurementError(
                f"trace {self.name} needs at least {n} sample(s), has "
                f"{len(self._times)}"
            )

    # -- in-place mutation (checkpoint / warm-start machinery) ------------

    def truncate(self, n):
        """Drop samples beyond the first ``n``, in place.

        Checkpoint restore uses this; the backing buffers survive so
        the kernel's compiled samplers and signal listeners keep
        pointing at live storage.
        """
        self._times.truncate(n)
        self._values.truncate(n)
        self._cache = None

    def clone(self):
        """An independent copy (same name/interp, copied samples)."""
        dup = Trace(self.name, interp=self.interp)
        dup._times.load_from(self._times)
        dup._values.load_from(self._values)
        return dup

    # -- interpolation ------------------------------------------------------

    def at(self, time):
        """Value at ``time`` using the trace's interpolation style.

        Before the first sample the first value is returned; after the
        last, the last value.
        """
        self._require_samples()
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return _to_float(self._values[0])
        if self.interp == STEP or idx >= len(self._times) - 1:
            return _to_float(self._values[idx])
        t0, t1 = self._times[idx], self._times[idx + 1]
        v0 = _to_float(self._values[idx])
        v1 = _to_float(self._values[idx + 1])
        if t1 == t0:
            return v1
        frac = (time - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def value_at(self, time):
        """Raw payload in effect at ``time`` (step semantics)."""
        self._require_samples()
        idx = bisect.bisect_right(self._times, time) - 1
        return self._values[max(idx, 0)]

    def resample(self, grid):
        """Values on an arbitrary time grid (numpy array result)."""
        grid = np.asarray(grid, dtype=float)
        if self.interp == LINEAR:
            return np.interp(grid, self.times, self.values)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(self) - 1)
        return self.values[idx]

    # -- slicing ---------------------------------------------------------

    def segment(self, t0=None, t1=None):
        """Sub-trace with samples in ``[t0, t1]`` (same interpolation)."""
        self._require_samples()
        lo = 0 if t0 is None else bisect.bisect_left(self._times, t0)
        hi = (
            len(self._times)
            if t1 is None
            else bisect.bisect_right(self._times, t1)
        )
        sub = Trace(self.name, interp=self.interp)
        tb, vb = self._times, self._values
        sub._times.extend(tb.view()[lo:hi] if tb.is_float else tb[lo:hi])
        sub._values.extend(vb.view()[lo:hi] if vb.is_float else vb[lo:hi])
        return sub

    # -- events ------------------------------------------------------------

    def crossings(self, level, direction="rise"):
        """Times at which the waveform crosses ``level``.

        For linear traces the crossing time is linearly interpolated;
        for step traces it is the change time.  NaN samples never
        participate in a crossing.

        :param direction: ``"rise"``, ``"fall"`` or ``"both"``.
        """
        if direction not in ("rise", "fall", "both"):
            raise MeasurementError(f"unknown direction {direction!r}")
        times = self.times
        values = self.values
        result = []
        for i in range(1, len(times)):
            v0, v1 = values[i - 1], values[i]
            if np.isnan(v0) or np.isnan(v1):
                continue
            rising = v0 < level <= v1
            falling = v0 > level >= v1
            if not (rising or falling):
                continue
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and not falling:
                continue
            if self.interp == LINEAR and v1 != v0:
                frac = (level - v0) / (v1 - v0)
                result.append(times[i - 1] + frac * (times[i] - times[i - 1]))
            else:
                result.append(times[i])
        return np.asarray(result)

    def edges(self, direction="rise"):
        """Change times of a digital trace (0->1 rises, 1->0 falls)."""
        return self.crossings(0.5, direction=direction)

    def periods(self, level=0.5, direction="rise"):
        """Successive intervals between same-direction crossings."""
        crossing_times = self.crossings(level, direction=direction)
        return np.diff(crossing_times)

    # -- statistics ---------------------------------------------------------

    def minimum(self, t0=None, t1=None):
        """Minimum value over ``[t0, t1]`` (NaN-aware)."""
        return float(np.nanmin(self._window_values(t0, t1)))

    def maximum(self, t0=None, t1=None):
        """Maximum value over ``[t0, t1]`` (NaN-aware)."""
        return float(np.nanmax(self._window_values(t0, t1)))

    def mean(self, t0=None, t1=None):
        """Time-weighted mean over ``[t0, t1]`` via trapezoidal rule."""
        seg = self.segment(t0, t1)
        seg._require_samples(2)
        times, values = seg.times, seg.values
        span = times[-1] - times[0]
        if span == 0:
            return float(values[-1])
        return float(np.trapezoid(values, times) / span)

    def _window_values(self, t0, t1):
        seg = self.segment(t0, t1)
        seg._require_samples()
        return seg.values

    def __repr__(self):
        return f"<Trace {self.name} n={len(self)} interp={self.interp}>"


def difference(trace_a, trace_b, grid=None):
    """Pointwise ``a - b`` on a shared grid; returns (grid, delta).

    When ``grid`` is omitted the union of both traces' sample times
    restricted to the overlapping interval is used.
    """
    if grid is None:
        t0 = max(trace_a.t_start, trace_b.t_start)
        t1 = min(trace_a.t_end, trace_b.t_end)
        if t1 < t0:
            raise MeasurementError(
                f"traces {trace_a.name} and {trace_b.name} do not overlap"
            )
        merged = np.union1d(trace_a.times, trace_b.times)
        grid = merged[(merged >= t0) & (merged <= t1)]
    grid = np.asarray(grid, dtype=float)
    return grid, trace_a.resample(grid) - trace_b.resample(grid)
