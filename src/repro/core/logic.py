"""Nine-value logic system modelled on IEEE Std 1164 ``std_logic``.

The paper's digital flow operates on VHDL models; this module provides
the value system those models compute over, so that bit-flips, SET
pulses and bus contention behave like they would in a VHDL simulator:

==========  =================================
``Logic.U``  uninitialised
``Logic.X``  forcing unknown
``Logic.L0`` forcing 0
``Logic.L1`` forcing 1
``Logic.Z``  high impedance
``Logic.W``  weak unknown
``Logic.WL`` weak 0
``Logic.WH`` weak 1
``Logic.DC`` don't care
==========  =================================

The module provides the *resolution* function used when several drivers
contend for one signal, the usual boolean operators extended to nine
values, and conversions to and from characters, bools and integers.
"""

from __future__ import annotations

import enum

from .errors import LogicValueError


class Logic(enum.IntEnum):
    """One IEEE-1164-style logic level."""

    U = 0   # uninitialised
    X = 1   # forcing unknown
    L0 = 2  # forcing 0
    L1 = 3  # forcing 1
    Z = 4   # high impedance
    W = 5   # weak unknown
    WL = 6  # weak 0
    WH = 7  # weak 1
    DC = 8  # don't care '-'

    def __str__(self):
        return _TO_CHAR[self]

    @property
    def char(self):
        """The single-character IEEE-1164 representation."""
        return _TO_CHAR[self]

    def is_high(self):
        """True when this level reads as logic 1 (``1`` or ``H``)."""
        return self in (Logic.L1, Logic.WH)

    def is_low(self):
        """True when this level reads as logic 0 (``0`` or ``L``)."""
        return self in (Logic.L0, Logic.WL)

    def is_defined(self):
        """True when the value reads as a definite 0 or 1."""
        return self.is_high() or self.is_low()

    def to_bool(self):
        """Convert to bool; raises for undefined levels.

        :raises LogicValueError: for U/X/Z/W/``-``.
        """
        if self.is_high():
            return True
        if self.is_low():
            return False
        raise LogicValueError(f"logic value {self.char!r} has no boolean meaning")

    def to_x01(self):
        """Strength-strip to the three-value subset {0, 1, X}."""
        if self.is_high():
            return Logic.L1
        if self.is_low():
            return Logic.L0
        return Logic.X

    def invert(self):
        """Nine-value logical NOT."""
        return logic_not(self)


_TO_CHAR = {
    Logic.U: "U",
    Logic.X: "X",
    Logic.L0: "0",
    Logic.L1: "1",
    Logic.Z: "Z",
    Logic.W: "W",
    Logic.WL: "L",
    Logic.WH: "H",
    Logic.DC: "-",
}

_FROM_CHAR = {char: level for level, char in _TO_CHAR.items()}
_FROM_CHAR.update({char.lower(): level for level, char in _TO_CHAR.items()})


#: Convenient aliases used throughout the digital library.
L0 = Logic.L0
L1 = Logic.L1
X = Logic.X
U = Logic.U
Z = Logic.Z


def logic(value):
    """Coerce a value into a :class:`Logic` level.

    Accepts :class:`Logic`, bools, the ints 0/1, and the nine IEEE-1164
    characters in either case.

    :raises LogicValueError: for anything else.
    """
    if isinstance(value, Logic):
        return value
    if isinstance(value, bool):
        return Logic.L1 if value else Logic.L0
    if isinstance(value, int):
        if value == 0:
            return Logic.L0
        if value == 1:
            return Logic.L1
        raise LogicValueError(f"integer {value} is not a logic level (use 0 or 1)")
    if isinstance(value, str) and value in _FROM_CHAR:
        return _FROM_CHAR[value]
    raise LogicValueError(f"cannot interpret {value!r} as a logic level")


# ---------------------------------------------------------------------------
# Resolution (IEEE 1164 resolution table).
# ---------------------------------------------------------------------------

# Indexed [a][b] in the U,X,0,1,Z,W,L,H,- order used by the standard.
_RESOLUTION_CHARS = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "U", "U", "U", "U", "U", "U"],  # U
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # X
    ["U", "X", "0", "X", "0", "0", "0", "0", "X"],  # 0
    ["U", "X", "X", "1", "1", "1", "1", "1", "X"],  # 1
    ["U", "X", "0", "1", "Z", "W", "L", "H", "X"],  # Z
    ["U", "X", "0", "1", "W", "W", "W", "W", "X"],  # W
    ["U", "X", "0", "1", "L", "W", "L", "W", "X"],  # L
    ["U", "X", "0", "1", "H", "W", "W", "H", "X"],  # H
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # -
]

_ORDER = [Logic.U, Logic.X, Logic.L0, Logic.L1, Logic.Z,
          Logic.W, Logic.WL, Logic.WH, Logic.DC]
_INDEX = {level: i for i, level in enumerate(_ORDER)}

_RESOLUTION = {
    (a, b): _FROM_CHAR[_RESOLUTION_CHARS[_INDEX[a]][_INDEX[b]]]
    for a in _ORDER
    for b in _ORDER
}


def resolve(a, b):
    """Resolve two driver contributions per the IEEE 1164 table."""
    return _RESOLUTION[(logic(a), logic(b))]


def resolve_many(values):
    """Resolve an iterable of driver contributions.

    An empty iterable resolves to ``Z`` (nobody driving).
    """
    result = Logic.Z
    for value in values:
        result = _RESOLUTION[(result, logic(value))]
    return result


# ---------------------------------------------------------------------------
# Boolean operators extended to nine values.
#
# The operators follow IEEE 1164: strengths are stripped first (to_x01)
# and unknowns dominate unless the other operand forces the result
# (0 AND anything = 0, 1 OR anything = 1).
# ---------------------------------------------------------------------------


def logic_not(a):
    """Nine-value NOT."""
    a = logic(a).to_x01()
    if a is Logic.L0:
        return Logic.L1
    if a is Logic.L1:
        return Logic.L0
    return Logic.X


def logic_and(a, b):
    """Nine-value AND."""
    a = logic(a).to_x01()
    b = logic(b).to_x01()
    if a is Logic.L0 or b is Logic.L0:
        return Logic.L0
    if a is Logic.L1 and b is Logic.L1:
        return Logic.L1
    return Logic.X


def logic_or(a, b):
    """Nine-value OR."""
    a = logic(a).to_x01()
    b = logic(b).to_x01()
    if a is Logic.L1 or b is Logic.L1:
        return Logic.L1
    if a is Logic.L0 and b is Logic.L0:
        return Logic.L0
    return Logic.X


def logic_xor(a, b):
    """Nine-value XOR."""
    a = logic(a).to_x01()
    b = logic(b).to_x01()
    if a is Logic.X or b is Logic.X:
        return Logic.X
    return Logic.L1 if a is not b else Logic.L0


def logic_nand(a, b):
    """Nine-value NAND."""
    return logic_not(logic_and(a, b))


def logic_nor(a, b):
    """Nine-value NOR."""
    return logic_not(logic_or(a, b))


def logic_xnor(a, b):
    """Nine-value XNOR."""
    return logic_not(logic_xor(a, b))


def logic_buf(a):
    """Nine-value buffer (strength strip)."""
    return logic(a).to_x01()


def flip(a):
    """Bit-flip used by the SEU fault model.

    A defined level inverts; everything else (already corrupted or
    undriven) becomes ``X``, mirroring how an upset leaves the element
    in an unknown-but-changed state.
    """
    a = logic(a)
    if a.is_defined():
        return Logic.L0 if a.is_high() else Logic.L1
    return Logic.X


# ---------------------------------------------------------------------------
# Vector helpers.
# ---------------------------------------------------------------------------


def bits_from_int(value, width):
    """LSB-first list of logic levels encoding ``value`` on ``width`` bits.

    :raises LogicValueError: if the value does not fit.
    """
    if width <= 0:
        raise LogicValueError(f"vector width must be positive, got {width}")
    if value < 0 or value >= (1 << width):
        raise LogicValueError(f"value {value} does not fit in {width} bits")
    return [Logic.L1 if (value >> i) & 1 else Logic.L0 for i in range(width)]


def int_from_bits(bits):
    """Integer from an LSB-first iterable of logic levels.

    :raises LogicValueError: if any bit is undefined.
    """
    result = 0
    for i, bit in enumerate(bits):
        bit = logic(bit)
        if not bit.is_defined():
            raise LogicValueError(
                f"bit {i} is {bit.char!r}; vector has no integer value"
            )
        if bit.is_high():
            result |= 1 << i
    return result


def vector_string(bits):
    """MSB-first character string for an LSB-first logic vector."""
    return "".join(logic(bit).char for bit in reversed(list(bits)))
