"""Analog nodes.

An :class:`AnalogNode` carries a continuous quantity (a voltage, by
convention) updated by behavioural blocks on every analog solver step.
A :class:`CurrentNode` additionally accumulates *current* contributions
within each step, which is the superposition mechanism the paper's
saboteur relies on: the injected SEU current pulse is simply one more
``add_current`` contribution summed with the normal current at the
target node (Section 4.2, Figure 4).
"""

from __future__ import annotations

from .errors import SimulationError


class AnalogNode:
    """A continuous-valued circuit node.

    :param sim: owning :class:`~repro.core.kernel.Simulator`.
    :param name: hierarchical name used in traces and reports.
    :param init: initial value.
    """

    kind = "voltage"

    def __init__(self, sim, name, init=0.0):
        self.sim = sim
        self.name = name
        self.v = float(init)
        self.writers = []
        self.readers = []
        sim._register_node(self)

    def set(self, value):
        """Set the node value (called by the owning block each step)."""
        self.v = float(value)

    def add_writer(self, block):
        """Record that ``block`` writes this node (for solver ordering)."""
        if block not in self.writers:
            self.writers.append(block)

    def add_reader(self, block):
        """Record that ``block`` reads this node (for solver ordering)."""
        if block not in self.readers:
            self.readers.append(block)

    # -- checkpoint support ------------------------------------------------

    def _state(self):
        """Capture the node value and dataflow registrations."""
        return (self.v, list(self.writers), list(self.readers))

    def _load_state(self, state):
        """Restore a capture made by :meth:`_state`."""
        self.v, writers, readers = state
        self.writers = list(writers)
        self.readers = list(readers)

    def __repr__(self):
        return f"<AnalogNode {self.name}={self.v:.6g}>"


class CurrentNode(AnalogNode):
    """An analog node that also sums current contributions each step.

    The solver zeroes :attr:`i` at the start of every step; current
    sources (the charge pump, the saboteur, ...) then call
    :meth:`add_current`, and the consuming block (the loop filter)
    reads the superposed total.
    """

    kind = "current"

    def __init__(self, sim, name, init=0.0):
        super().__init__(sim, name, init=init)
        self.i = 0.0
        self._contributions = {}

    def clear_current(self):
        """Reset the per-step current accumulator (solver use)."""
        self.i = 0.0
        self._contributions.clear()

    def add_current(self, amps, source=None):
        """Superpose ``amps`` onto the node current for this step.

        :param amps: contribution in amperes (positive into the node).
        :param source: optional label recorded for debugging/reports.
        """
        if isinstance(amps, (int, float)):
            amps = float(amps)
        self.i = self.i + amps
        if source is not None:
            self._contributions[source] = self._contributions.get(source, 0.0) + amps

    def contributions(self):
        """Mapping of labelled per-step contributions (diagnostics)."""
        return dict(self._contributions)

    def _state(self):
        return (super()._state(), self.i, dict(self._contributions))

    def _load_state(self, state):
        base, self.i, contributions = state
        super()._load_state(base)
        self._contributions = dict(contributions)

    def __repr__(self):
        return f"<CurrentNode {self.name} v={self.v:.6g} i={self.i:.6g}>"


def as_current_node(node):
    """Check that ``node`` accepts current injection.

    :raises SimulationError: when given a plain voltage node.
    """
    if not isinstance(node, CurrentNode):
        raise SimulationError(
            f"node {node.name!r} is not a current-summing node; "
            "current pulses can only be injected on CurrentNode targets"
        )
    return node
