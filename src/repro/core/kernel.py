"""The mixed-mode simulation kernel.

This module is the substitute for the commercial mixed-mode simulator
used in the paper (Mentor ADVance-MS): a single :class:`Simulator`
couples

* an **event-driven digital engine** — processes with sensitivity
  lists over :class:`~repro.core.signal.Signal` objects, with
  delta-cycle ordering; and
* a **timestep analog solver** (:class:`AnalogSolver`) — behavioural
  blocks evaluated in dataflow order on a fixed nominal timestep, with
  *local timestep refinement windows* so that sub-nanosecond injection
  pulses (RT = 100 ps in the paper's experiments) are resolved without
  paying that resolution over the whole multi-millisecond run.

Both engines share one event queue, so digital events and analog steps
interleave in strict time order.  Analog steps run at a higher priority
within a timestamp, so a digital process waking at time *t* observes
analog node values already advanced to *t*.

The kernel also supports **checkpointing**: ``sim.snapshot()`` captures
the complete state (see :mod:`repro.core.snapshot`) and
``sim.restore(snap)`` rewinds to it, bit-identically.  The campaign
layer uses this to warm-start faulty runs from a golden checkpoint
taken just before each fault's injection time instead of re-simulating
the identical warm-up from t=0.
"""

from __future__ import annotations

from bisect import bisect_right
from contextlib import contextmanager
from time import perf_counter
import heapq

import networkx as nx

from ..obs import metrics as _metrics
from ..obs import tracer as _tracer
from .errors import (
    BudgetExceededError,
    ElaborationError,
    SchedulingError,
    SimulationError,
)
from .events import EventQueue, PRIORITY_ANALOG, PRIORITY_NORMAL
from .node import AnalogNode, CurrentNode
from .signal import Signal
from .snapshot import Snapshot
from .trace import LINEAR, STEP, Trace


class RefinementWindow:
    """A time interval during which the analog solver uses a finer step."""

    __slots__ = ("t0", "t1", "dt")

    def __init__(self, t0, t1, dt):
        if t1 <= t0:
            raise SimulationError(f"empty refinement window [{t0}, {t1}]")
        if dt <= 0:
            raise SimulationError(f"refinement dt must be positive, got {dt}")
        self.t0 = t0
        self.t1 = t1
        self.dt = dt

    def __repr__(self):
        return f"<RefinementWindow [{self.t0:.4g}, {self.t1:.4g}] dt={self.dt:.4g}>"


class _Process:
    """Internal wrapper giving a callback delta-cycle activation."""

    __slots__ = ("fn", "pending", "sim")

    def __init__(self, sim, fn):
        self.sim = sim
        self.fn = fn
        self.pending = False

    def trigger(self, _signal=None):
        if self.pending:
            return
        self.pending = True
        self.sim._queue.push(self.sim.now, self._run, PRIORITY_NORMAL)

    def _run(self):
        self.pending = False
        self.fn()


class _NodeProbe:
    __slots__ = ("node", "trace", "min_interval", "last_time", "attr")

    def __init__(self, node, trace, min_interval, attr):
        self.node = node
        self.trace = trace
        self.min_interval = min_interval
        self.last_time = None
        self.attr = attr

    def sample(self, t):
        if (
            self.last_time is not None
            and self.min_interval > 0
            and t - self.last_time < self.min_interval
        ):
            return
        self.trace.append(t, getattr(self.node, self.attr))
        self.last_time = t

    def compile(self):
        """A per-step sampling callable with pre-bound hot references.

        Undecimated probes (``min_interval == 0``) dominate real
        campaigns; for those the compiled sampler appends straight to
        the trace's backing lists, skipping the interval check, the
        attribute string lookup and the monotonicity check (solver
        time is strictly increasing by construction).  The closures
        bind the list *objects*, which checkpoint restore preserves by
        truncating traces in place.
        """
        if self.min_interval > 0:
            return self.sample
        trace = self.trace
        append_time = trace._times.append
        append_value = trace._values.append
        node = self.node
        if self.attr == "v":
            def sample(t):
                append_time(t)
                append_value(node.v)
                trace._cache = None
        else:
            def sample(t):
                append_time(t)
                append_value(node.i)
                trace._cache = None
        return sample


class AnalogSolver:
    """Fixed-step behavioural analog solver with refinement windows.

    :param sim: owning simulator.
    :param dt_nominal: default timestep in seconds.
    """

    def __init__(self, sim, dt_nominal=1e-9):
        self.sim = sim
        self.dt_nominal = float(dt_nominal)
        self.blocks = []
        self.windows = []
        self.current_nodes = []
        self._probes = []
        self._order = None
        self._last_step_time = None
        self.steps = 0
        self._started = False
        #: Merged window boundaries and the timestep in force between
        #: consecutive boundaries — rebuilt lazily so adding N windows
        #: up front costs one merge, and looked up via bisect instead
        #: of a per-step linear scan over the windows.
        self._boundaries = []
        self._interval_dts = []
        self._schedule_dirty = False
        self._samplers = None
        #: Optional :class:`~repro.core.budget.NumericalGuard` checked
        #: after every solver step; None (the default) costs one
        #: attribute load per step.
        self.guard = None
        #: Optional :class:`~repro.obs.flightrec.FlightRecorder` fed
        #: after every solver step; None (the default) costs one
        #: attribute load per step, same as the guard.
        self.recorder = None
        #: Attached :class:`~repro.core.ensemble.Ensemble` while a
        #: batch of fault variants is stepping vectorized; None (the
        #: default) keeps the scalar per-step path.
        self._ensemble = None

    # -- configuration -----------------------------------------------------

    def add_block(self, block):
        """Register a behavioural block (done by AnalogBlock.__init__)."""
        self.blocks.append(block)
        self._order = None

    def add_refinement_window(self, t0, t1, dt):
        """Use timestep ``dt`` while simulation time is in ``[t0, t1]``."""
        window = RefinementWindow(t0, t1, dt)
        self.windows.append(window)
        self.windows.sort(key=lambda w: w.t0)
        self._schedule_dirty = True
        return window

    def add_probe(self, probe):
        """Register a per-step node sampler (see Simulator.probe)."""
        self._probes.append(probe)
        self._samplers = None

    def _invalidate_schedule(self):
        """Force boundary and sampler recompilation (checkpoint restore)."""
        self._schedule_dirty = True
        self._samplers = None
        if self.guard is not None:
            # A restore rewinds node values; stale step-to-step guard
            # history would read as a huge (spurious) slew.
            self.guard.reset()

    # -- evaluation ordering --------------------------------------------------

    def evaluation_order(self):
        """Blocks in dataflow order.

        Builds a graph with an edge A -> B whenever A writes a node B
        reads, drops the outgoing edges of state blocks (integrators
        hold their output from past inputs, so they legitimately break
        feedback loops), and topologically sorts.  Remaining cycles —
        genuine combinational analog loops — fall back to registration
        order with no error, matching relaxation-style evaluation.
        """
        if self._order is not None:
            return self._order

        graph = nx.DiGraph()
        index = {block: i for i, block in enumerate(self.blocks)}
        graph.add_nodes_from(self.blocks)
        for block in self.blocks:
            if block.is_state:
                continue
            for node in block.write_nodes:
                for reader in node.readers:
                    if reader in index and reader is not block:
                        graph.add_edge(block, reader)
        try:
            ordered = list(nx.topological_sort(graph))
            # Stabilise: among incomparable blocks keep registration
            # order, sorting by longest-path depth then index.
            depth = {}
            for block in ordered:
                preds = list(graph.predecessors(block))
                depth[block] = 0 if not preds else 1 + max(depth[p] for p in preds)
            ordered.sort(key=lambda blk: (depth[blk], index[blk]))
        except nx.NetworkXUnfeasible:
            ordered = list(self.blocks)
        self._order = ordered
        return ordered

    # -- timestep selection ---------------------------------------------------

    def _rebuild_schedule(self):
        """Merge window boundaries into a sorted array with per-interval
        timesteps.

        Uses a sweep with a lazy min-heap of active windows, so the
        rebuild is O(W log W) in the number of windows and every
        subsequent :meth:`dt_at` / :meth:`next_step_time` is a single
        bisect — the per-step O(W) scans this replaces dominated the
        kernel profile for campaigns whose shared refinement windows
        number in the hundreds.
        """
        bounds = sorted(
            {w.t0 for w in self.windows} | {w.t1 for w in self.windows}
        )
        dts = []
        by_start = self.windows  # already sorted by t0
        pointer = 0
        active = []  # (dt, t1) lazy heap of windows covering the sweep point
        for left in bounds[:-1] if bounds else ():
            while pointer < len(by_start) and by_start[pointer].t0 <= left:
                window = by_start[pointer]
                heapq.heappush(active, (window.dt, window.t1))
                pointer += 1
            while active and active[0][1] <= left:
                heapq.heappop(active)
            if active:
                dts.append(min(self.dt_nominal, active[0][0]))
            else:
                dts.append(self.dt_nominal)
        self._boundaries = bounds
        self._interval_dts = dts
        self._schedule_dirty = False

    def dt_at(self, t):
        """The timestep in force at time ``t``."""
        if self._schedule_dirty:
            self._rebuild_schedule()
        bounds = self._boundaries
        if not bounds:
            return self.dt_nominal
        idx = bisect_right(bounds, t) - 1
        if idx < 0 or idx >= len(self._interval_dts):
            return self.dt_nominal
        return self._interval_dts[idx]

    def next_step_time(self, t):
        """The time of the step after one taken at ``t``.

        Lands exactly on upcoming window boundaries so no part of a
        refinement window is skipped over at the coarse step.
        """
        candidate = t + self.dt_at(t)
        bounds = self._boundaries
        idx = bisect_right(bounds, t)
        if idx < len(bounds) and bounds[idx] < candidate:
            return bounds[idx]
        return candidate

    # -- stepping --------------------------------------------------------------

    def start(self):
        """Schedule the first analog step (at the current sim time)."""
        if self._started or not self.blocks:
            return
        self._started = True
        self.sim._queue.push(self.sim.now, self._step_event, PRIORITY_ANALOG)

    def _compile_samplers(self):
        self._samplers = [probe.compile() for probe in self._probes]
        return self._samplers

    def _step_event(self):
        t = self.sim.now
        last = self._last_step_time
        dt = 0.0 if last is None else t - last
        self._last_step_time = t
        self.steps += 1

        ensemble = self._ensemble
        if ensemble is not None:
            # Batched variant stepping: the ensemble evaluates every
            # block over all variant columns at once, records into its
            # own buffers and runs its vectorized guard mirror.  The
            # next step is scheduled first so an EnsembleDrainedError
            # leaves a resumable queue.
            self.sim._queue.push(
                self.next_step_time(t), self._step_event, PRIORITY_ANALOG
            )
            ensemble.solver_step(t, dt)
            return

        for node in self.current_nodes:
            node.clear_current()
        order = self._order
        if order is None:
            order = self.evaluation_order()
        for block in order:
            block.step(t, dt)
        samplers = self._samplers
        if samplers is None:
            samplers = self._compile_samplers()
        for sample in samplers:
            sample(t)
        guard = self.guard
        if guard is not None:
            guard.maybe_check(self.sim, t)
        recorder = self.recorder
        if recorder is not None:
            recorder.record_step(self.sim, t)

        self.sim._queue.push(self.next_step_time(t), self._step_event, PRIORITY_ANALOG)


class Simulator:
    """Top-level mixed-mode simulator.

    Typical use::

        sim = Simulator(dt=1e-9)
        pll = PLL(sim, "pll", ...)          # builds components
        vctrl = sim.probe(pll.vctrl)        # record a node
        sim.run(0.2e-3)                     # simulate 0.2 ms

    :param dt: nominal analog timestep in seconds.
    :param t_start: initial simulation time.
    """

    def __init__(self, dt=1e-9, t_start=0.0):
        self.now = float(t_start)
        #: Optional :class:`~repro.core.budget.RunBudget` enforced per
        #: :meth:`run` call; None (the default) keeps the fast loop.
        self.budget = None
        self._queue = EventQueue()
        self.analog = AnalogSolver(self, dt_nominal=dt)
        self.signals = {}
        self.nodes = {}
        self.components = []
        self._components_by_path = {}
        self._processes = []
        self._traces = []
        self._finished = False
        self._elaboration_mark = None

    # -- registries (called from Signal/Node/Component constructors) -------

    def _register_signal(self, signal):
        if signal.name in self.signals:
            raise ElaborationError(f"duplicate signal name {signal.name!r}")
        self.signals[signal.name] = signal

    def _register_node(self, node):
        if node.name in self.nodes:
            raise ElaborationError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        if isinstance(node, CurrentNode):
            self.analog.current_nodes.append(node)

    def _register_component(self, component):
        self.components.append(component)
        # First registration wins, matching the old linear scan's
        # behaviour when sibling-unchecked paths collide.
        self._components_by_path.setdefault(component.path, component)

    # -- factories --------------------------------------------------------

    def signal(self, name, init=None, **kwargs):
        """Create a named digital signal."""
        from .logic import Logic

        if init is None:
            init = Logic.U
        return Signal(self, name, init=init, **kwargs)

    def node(self, name, init=0.0):
        """Create a named analog voltage node."""
        return AnalogNode(self, name, init=init)

    def current_node(self, name, init=0.0):
        """Create a named current-summing node (injection target)."""
        return CurrentNode(self, name, init=init)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay, fn):
        """Run ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self._queue.push(self.now + delay, fn, PRIORITY_NORMAL)

    def at(self, time, fn):
        """Run ``fn`` at absolute simulated ``time``.

        :raises SchedulingError: when ``time`` is in the past.
        """
        if time < self.now:
            raise SchedulingError(f"time {time} is before now ({self.now})")
        return self._queue.push(time, fn, PRIORITY_NORMAL)

    def every(self, period, fn, start=None):
        """Run ``fn`` periodically; ``fn`` may return False to stop."""
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        first = self.now + period if start is None else start

        def tick():
            if fn() is False:
                return
            self._queue.push(self.now + period, tick, PRIORITY_NORMAL)

        return self._queue.push(first, tick, PRIORITY_NORMAL)

    def add_process(self, fn, sensitivity=()):
        """Register an event-driven process.

        ``fn`` runs once at the current time (initialisation, like a
        VHDL process) and then whenever any signal in ``sensitivity``
        changes, at most once per delta cycle.
        """
        proc = _Process(self, fn)
        self._processes.append(proc)
        for sig in sensitivity:
            sig.on_change(proc.trigger)
        proc.trigger()
        return proc

    # -- probing -----------------------------------------------------------

    def probe(self, target, name=None, min_interval=0.0):
        """Record a signal or analog node into a :class:`Trace`.

        Digital signals are event-sampled; analog nodes are sampled on
        every solver step (optionally decimated via ``min_interval``).
        """
        if isinstance(target, Signal):
            trace = Trace(name or target.name, interp=STEP)
            trace.append(self.now, target.value)
            target.on_change(lambda sig: trace.append(self.now, sig.value))
            self._traces.append(trace)
            return trace
        if isinstance(target, AnalogNode):
            trace = Trace(name or target.name, interp=LINEAR)
            self.analog.add_probe(_NodeProbe(target, trace, min_interval, "v"))
            self._traces.append(trace)
            return trace
        raise SimulationError(f"cannot probe {target!r}")

    def probe_current(self, node, name=None, min_interval=0.0):
        """Record the summed current of a :class:`CurrentNode`."""
        if not isinstance(node, CurrentNode):
            raise SimulationError(f"{node!r} is not a CurrentNode")
        trace = Trace(name or f"{node.name}.i", interp=LINEAR)
        self.analog.add_probe(_NodeProbe(node, trace, min_interval, "i"))
        self._traces.append(trace)
        return trace

    # -- running ------------------------------------------------------------

    def run(self, until, inclusive=True):
        """Advance the simulation to absolute time ``until``.

        May be called repeatedly with increasing times.  Digital events
        and analog steps execute in time order; at ``until`` the run
        stops with all events at or before ``until`` processed.

        :param inclusive: when False, events scheduled exactly at
            ``until`` are left pending and ``now`` still advances to
            ``until``.  Checkpointing uses this to capture state
            *before* the delta cycles of the checkpoint timestamp, so
            a fault injected exactly at that time replays in the same
            order as in an uninterrupted run.
        """
        if _metrics.REGISTRY.enabled or _tracer.TRACER.enabled:
            return self._run_observed(until, inclusive)
        return self._run_loop(until, inclusive)

    def _run_loop(self, until, inclusive):
        """The uninstrumented event loop (see :meth:`run`)."""
        if until < self.now:
            raise SchedulingError(
                f"cannot run to {until}; simulation already at {self.now}"
            )
        if self.budget is not None and not self.budget.empty:
            return self._run_budgeted(until, inclusive)
        self.analog.start()
        queue = self._queue
        while True:
            t_next = queue.peek_time()
            if t_next is None or t_next > until:
                break
            if not inclusive and t_next >= until:
                break
            event = queue.pop()
            if event.time < self.now - 1e-18:
                raise SimulationError(
                    f"event at {event.time} behind current time {self.now}"
                )
            self.now = max(self.now, event.time)
            event.callback()
        self.now = until

    #: Events between wall-clock budget checks in the budgeted loop; a
    #: power of two so the modulo is a mask.
    _WALL_CHECK_STRIDE = 256

    def _run_budgeted(self, until, inclusive):
        """The budget-enforcing event loop (see :class:`RunBudget`).

        Identical semantics to :meth:`_run_loop` plus per-iteration
        resource checks.  Event and step ceilings are compared every
        iteration (one integer compare each); the wall clock is read
        every :data:`_WALL_CHECK_STRIDE` events so a tight event storm
        cannot make ``perf_counter`` itself the hot path.

        :raises BudgetExceededError: the run became a ``timeout``.
        """
        budget = self.budget
        queue = self._queue
        max_events = budget.max_events
        max_steps = budget.max_steps
        max_wall = budget.max_wall_s
        start_events = queue.executed
        start_steps = self.analog.steps
        wall_start = perf_counter() if max_wall is not None else 0.0
        wall_mask = self._WALL_CHECK_STRIDE - 1

        self.analog.start()
        executed = 0
        while True:
            t_next = queue.peek_time()
            if t_next is None or t_next > until:
                break
            if not inclusive and t_next >= until:
                break
            if max_events is not None and queue.executed - start_events >= max_events:
                raise BudgetExceededError(
                    f"run exceeded its event budget "
                    f"({max_events} events) at t={self.now:.6g}",
                    resource="events", limit=max_events,
                    used=queue.executed - start_events, at_time=self.now,
                )
            if max_steps is not None and self.analog.steps - start_steps >= max_steps:
                raise BudgetExceededError(
                    f"run exceeded its analog step budget "
                    f"({max_steps} steps) at t={self.now:.6g}",
                    resource="steps", limit=max_steps,
                    used=self.analog.steps - start_steps, at_time=self.now,
                )
            if max_wall is not None and executed & wall_mask == 0:
                elapsed = perf_counter() - wall_start
                if elapsed > max_wall:
                    raise BudgetExceededError(
                        f"run exceeded its wall-clock budget "
                        f"({max_wall:g} s) at t={self.now:.6g}",
                        resource="wall", limit=max_wall,
                        used=elapsed, at_time=self.now,
                    )
            event = queue.pop()
            if event.time < self.now - 1e-18:
                raise SimulationError(
                    f"event at {event.time} behind current time {self.now}"
                )
            self.now = max(self.now, event.time)
            event.callback()
            executed += 1
        self.now = until

    def _run_observed(self, until, inclusive):
        """Instrumented :meth:`run`: delta-count events and steps.

        The event loop itself stays untouched — dispatch and step
        counts already exist (``events_executed``, ``analog_steps``),
        so observability records their *deltas* around the loop
        instead of paying per-event bookkeeping.
        """
        events_before = self._queue.executed
        steps_before = self.analog.steps
        wall_start = perf_counter()
        with _tracer.TRACER.span("kernel.run", t_from=self.now, t_to=until):
            self._run_loop(until, inclusive)
        registry = _metrics.REGISTRY
        registry.inc("kernel.events", self._queue.executed - events_before)
        registry.inc("kernel.analog_steps", self.analog.steps - steps_before)
        registry.observe("kernel.run_wall_s", perf_counter() - wall_start)

    def run_for(self, duration):
        """Advance the simulation by ``duration`` seconds."""
        self.run(self.now + duration)

    # -- checkpointing -------------------------------------------------------

    def snapshot(self):
        """Capture the complete kernel state (see :class:`Snapshot`)."""
        if not (_metrics.REGISTRY.enabled or _tracer.TRACER.enabled):
            return Snapshot.capture(self)
        wall_start = perf_counter()
        with _tracer.TRACER.span("kernel.snapshot", at=self.now):
            snap = Snapshot.capture(self)
        _metrics.REGISTRY.inc("kernel.snapshots")
        _metrics.REGISTRY.observe(
            "kernel.snapshot_wall_s", perf_counter() - wall_start
        )
        return snap

    def restore(self, snap):
        """Rewind to a state captured with :meth:`snapshot`.

        Restoring is bit-exact: resuming the run reproduces the same
        events, analog steps and trace samples an uninterrupted run
        would have produced.  The ``events_executed`` and
        ``analog_steps`` counters are *not* rewound — they keep
        counting real work across restores, which is what campaign
        throughput accounting needs.
        """
        if not (_metrics.REGISTRY.enabled or _tracer.TRACER.enabled):
            snap.apply(self)
            return self
        wall_start = perf_counter()
        with _tracer.TRACER.span("kernel.restore", to=snap.time):
            snap.apply(self)
        _metrics.REGISTRY.inc("kernel.restores")
        _metrics.REGISTRY.observe(
            "kernel.restore_wall_s", perf_counter() - wall_start
        )
        return self

    def mark_elaboration(self):
        """Declare the design fully elaborated (for injection ordering).

        Records the event-sequence watermark separating construction-
        time events from run-time events.  :meth:`injection_band` uses
        it to give late-applied faults the delta-cycle slot they would
        have had if applied before the run started.
        """
        self._elaboration_mark = self._queue.mark()
        return self._elaboration_mark

    @contextmanager
    def injection_band(self):
        """Events scheduled inside sort as if applied pre-run.

        After restoring a mid-run checkpoint, a fault's events would
        normally receive sequence numbers *after* every pending event —
        but in a cold run the fault is armed before the run, so its
        events at a shared timestamp execute before run-scheduled
        ones.  Within this context, pushes draw fractional sequence
        numbers just below the :meth:`mark_elaboration` watermark,
        reproducing the cold-run order exactly.
        """
        if self._elaboration_mark is None:
            raise SimulationError(
                "mark_elaboration() must be called before injection_band()"
            )
        self._queue.begin_epoch(self._elaboration_mark)
        try:
            yield self
        finally:
            self._queue.end_epoch()

    # -- introspection ---------------------------------------------------------

    @property
    def events_executed(self):
        """Total number of events executed so far."""
        return self._queue.executed

    @property
    def analog_steps(self):
        """Total number of analog solver steps taken so far."""
        return self.analog.steps

    def find_component(self, path):
        """Look up a component by full hierarchical path (O(1))."""
        component = self._components_by_path.get(path)
        if component is None:
            raise ElaborationError(f"no component at path {path!r}")
        return component
