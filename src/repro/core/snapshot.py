"""Kernel state checkpointing.

A :class:`Snapshot` captures everything the mixed-mode kernel needs to
resume a simulation from an intermediate time as if it had never
stopped: signal values and driver contributions, analog node state,
per-component behavioural state (through
:meth:`~repro.core.component.Component.state_dict`), the pending event
queue, solver bookkeeping and recorded trace lengths.

The design constraint is *bit-identity*: a run restored from a
snapshot must produce traces exactly equal — no tolerance — to an
uninterrupted run, because the campaign layer compares golden and
faulty waveforms sample by sample.  Three details make that work:

* event objects are shared between the snapshot and the live heap, so
  callbacks keep their closed-over references; the snapshot only
  restores the heap membership and the mutable ``cancelled`` flags;
* the event sequence counter is restored, so replayed events receive
  the same insertion order they had in the original run; and
* traces are truncated *in place* (the sample buffers survive), so
  bound-method fast paths and probe listeners stay valid.

Snapshots are tied to the simulator instance they were captured from:
they hold direct references to its signals, nodes, components and
events.  They cannot be applied to a different simulator, but they
*do* travel across ``fork()`` — a forked campaign worker inherits the
design and its snapshots and can restore and run independently, which
is how warm-started campaigns parallelise.
"""

from __future__ import annotations

from .errors import SimulationError


class Snapshot:
    """An immutable capture of a :class:`~repro.core.kernel.Simulator`.

    Build one with :meth:`capture` (or ``sim.snapshot()``); apply it
    with ``sim.restore(snap)``.  A snapshot may be restored any number
    of times — the campaign runner restores the same golden checkpoint
    once per fault.
    """

    __slots__ = (
        "sim",
        "time",
        "queue_state",
        "signal_states",
        "signal_registry",
        "node_states",
        "node_registry",
        "component_states",
        "components",
        "component_index",
        "process_states",
        "processes",
        "trace_lengths",
        "solver_state",
    )

    def __init__(self, sim):
        self.sim = sim
        self.time = sim.now
        self.queue_state = sim._queue.capture()

        self.signal_registry = dict(sim.signals)
        self.signal_states = [
            (signal, signal._state()) for signal in self.signal_registry.values()
        ]
        self.node_registry = dict(sim.nodes)
        self.node_states = [
            (node, node._state()) for node in self.node_registry.values()
        ]

        self.components = list(sim.components)
        self.component_index = dict(sim._components_by_path)
        self.component_states = [
            (component, component.state_dict()) for component in self.components
        ]

        self.processes = list(sim._processes)
        self.process_states = [proc.pending for proc in self.processes]

        self.trace_lengths = [(trace, len(trace)) for trace in sim._traces]

        solver = sim.analog
        self.solver_state = (
            list(solver.blocks),
            list(solver.windows),
            list(solver.current_nodes),
            list(solver._probes),
            [probe.last_time for probe in solver._probes],
            solver._last_step_time,
            solver._started,
        )

    @classmethod
    def capture(cls, sim):
        """Capture the full kernel state of ``sim``."""
        return cls(sim)

    def apply(self, sim):
        """Rewind ``sim`` to this snapshot's state.

        :raises SimulationError: when applied to a different simulator
            than the one captured.
        """
        if sim is not self.sim:
            raise SimulationError(
                "snapshot belongs to a different simulator instance"
            )

        sim.now = self.time
        sim._queue.restore(self.queue_state)

        sim.signals = dict(self.signal_registry)
        for signal, state in self.signal_states:
            signal._load_state(state)
        sim.nodes = dict(self.node_registry)
        for node, state in self.node_states:
            node._load_state(state)

        sim.components = list(self.components)
        sim._components_by_path = dict(self.component_index)
        for component, state in self.component_states:
            component.load_state_dict(state)

        sim._processes = list(self.processes)
        for proc, pending in zip(self.processes, self.process_states):
            proc.pending = pending

        # Traces are truncated in place so listener closures and the
        # solver's compiled samplers keep pointing at live buffers.
        sim._traces = [trace for trace, _ in self.trace_lengths]
        for trace, length in self.trace_lengths:
            trace.truncate(length)

        solver = sim.analog
        (
            blocks,
            windows,
            current_nodes,
            probes,
            probe_last_times,
            last_step_time,
            started,
        ) = self.solver_state
        solver.blocks = list(blocks)
        solver.windows = list(windows)
        solver.current_nodes = list(current_nodes)
        solver._probes = list(probes)
        for probe, last_time in zip(solver._probes, probe_last_times):
            probe.last_time = last_time
        solver._last_step_time = last_step_time
        solver._started = started
        solver._order = None
        solver._invalidate_schedule()
        return sim

    def __repr__(self):
        events = len(self.queue_state[0])
        return (
            f"<Snapshot t={self.time:.6g} events={events} "
            f"signals={len(self.signal_states)} nodes={len(self.node_states)} "
            f"components={len(self.component_states)}>"
        )
