"""Kernel state checkpointing.

A :class:`Snapshot` captures everything the mixed-mode kernel needs to
resume a simulation from an intermediate time as if it had never
stopped: signal values and driver contributions, analog node state,
per-component behavioural state (through
:meth:`~repro.core.component.Component.state_dict`), the pending event
queue, solver bookkeeping and recorded trace lengths.

The design constraint is *bit-identity*: a run restored from a
snapshot must produce traces exactly equal — no tolerance — to an
uninterrupted run, because the campaign layer compares golden and
faulty waveforms sample by sample.  Three details make that work:

* event objects are shared between the snapshot and the live heap, so
  callbacks keep their closed-over references; the snapshot only
  restores the heap membership and the mutable ``cancelled`` flags;
* the event sequence counter is restored, so replayed events receive
  the same insertion order they had in the original run; and
* traces are truncated *in place* (the sample buffers survive), so
  bound-method fast paths and probe listeners stay valid.

Snapshots are tied to the simulator instance they were captured from:
they hold direct references to its signals, nodes, components and
events.  They cannot be applied to a different simulator, but they
*do* travel across ``fork()`` — a forked campaign worker inherits the
design and its snapshots and can restore and run independently, which
is how warm-started campaigns parallelise.
"""

from __future__ import annotations

import numpy as np

from .errors import SimulationError


def _values_equal(a, b):
    """Strict structural equality over snapshot state payloads.

    Floats and numpy arrays compare bitwise (``-0.0 != 0.0``, equal-NaN
    by bit pattern) because convergence detection must never declare
    two states equal when downstream arithmetic could diverge.
    """
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return (
            a.dtype == b.dtype
            and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, dict):
        if not isinstance(b, dict) or a.keys() != b.keys():
            return False
        return all(_values_equal(a[key], b[key]) for key in a)
    if isinstance(a, (list, tuple)):
        if type(a) is not type(b) or len(a) != len(b):
            return False
        return all(_values_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return a.hex() == b.hex()
    try:
        return bool(a == b)
    except Exception:
        return False


def _callbacks_equal(a, b):
    """Semantic identity of two scheduled callbacks.

    Event callbacks are bound methods (``ClockGen._rise``), reused
    closure objects (``sim.every``'s tick) or one-shot lambdas; two
    distinct creations of the same logical callback share the bound
    target / code object, while different callbacks never do.  Closure
    cells compare by identity (components, signals — whose behavioural
    state the caller compares separately) or by value for plain
    scalars.  Unknown shapes compare unequal, which only costs the
    early-out, never correctness.
    """
    if a is b:
        return True
    func_a = getattr(a, "__func__", None)
    func_b = getattr(b, "__func__", None)
    if func_a is not None or func_b is not None:
        return func_a is func_b and getattr(a, "__self__", None) is getattr(
            b, "__self__", None
        )
    code_a = getattr(a, "__code__", None)
    if code_a is None or code_a is not getattr(b, "__code__", None):
        return False
    cells_a = getattr(a, "__closure__", None) or ()
    cells_b = getattr(b, "__closure__", None) or ()
    if len(cells_a) != len(cells_b):
        return False
    for cell_a, cell_b in zip(cells_a, cells_b):
        va, vb = cell_a.cell_contents, cell_b.cell_contents
        if va is vb:
            continue
        if (
            isinstance(va, (int, float, str, bool, type(None)))
            and type(va) is type(vb)
            and va == vb
        ):
            continue
        return False
    return True


class Snapshot:
    """An immutable capture of a :class:`~repro.core.kernel.Simulator`.

    Build one with :meth:`capture` (or ``sim.snapshot()``); apply it
    with ``sim.restore(snap)``.  A snapshot may be restored any number
    of times — the campaign runner restores the same golden checkpoint
    once per fault.
    """

    __slots__ = (
        "sim",
        "time",
        "queue_state",
        "signal_states",
        "signal_registry",
        "node_states",
        "node_registry",
        "component_states",
        "components",
        "component_index",
        "process_states",
        "processes",
        "trace_lengths",
        "solver_state",
    )

    def __init__(self, sim):
        self.sim = sim
        self.time = sim.now
        self.queue_state = sim._queue.capture()

        self.signal_registry = dict(sim.signals)
        self.signal_states = [
            (signal, signal._state()) for signal in self.signal_registry.values()
        ]
        self.node_registry = dict(sim.nodes)
        self.node_states = [
            (node, node._state()) for node in self.node_registry.values()
        ]

        self.components = list(sim.components)
        self.component_index = dict(sim._components_by_path)
        self.component_states = [
            (component, component.state_dict()) for component in self.components
        ]

        self.processes = list(sim._processes)
        self.process_states = [proc.pending for proc in self.processes]

        self.trace_lengths = [(trace, len(trace)) for trace in sim._traces]

        solver = sim.analog
        self.solver_state = (
            list(solver.blocks),
            list(solver.windows),
            list(solver.current_nodes),
            list(solver._probes),
            [probe.last_time for probe in solver._probes],
            solver._last_step_time,
            solver._started,
        )

    @classmethod
    def capture(cls, sim):
        """Capture the full kernel state of ``sim``."""
        return cls(sim)

    def apply(self, sim):
        """Rewind ``sim`` to this snapshot's state.

        :raises SimulationError: when applied to a different simulator
            than the one captured.
        """
        if sim is not self.sim:
            raise SimulationError(
                "snapshot belongs to a different simulator instance"
            )

        sim.now = self.time
        sim._queue.restore(self.queue_state)

        sim.signals = dict(self.signal_registry)
        for signal, state in self.signal_states:
            signal._load_state(state)
        sim.nodes = dict(self.node_registry)
        for node, state in self.node_states:
            node._load_state(state)

        sim.components = list(self.components)
        sim._components_by_path = dict(self.component_index)
        for component, state in self.component_states:
            component.load_state_dict(state)

        sim._processes = list(self.processes)
        for proc, pending in zip(self.processes, self.process_states):
            proc.pending = pending

        # Traces are truncated in place so listener closures and the
        # solver's compiled samplers keep pointing at live buffers.
        sim._traces = [trace for trace, _ in self.trace_lengths]
        for trace, length in self.trace_lengths:
            trace.truncate(length)

        solver = sim.analog
        (
            blocks,
            windows,
            current_nodes,
            probes,
            probe_last_times,
            last_step_time,
            started,
        ) = self.solver_state
        solver.blocks = list(blocks)
        solver.windows = list(windows)
        solver.current_nodes = list(current_nodes)
        solver._probes = list(probes)
        for probe, last_time in zip(solver._probes, probe_last_times):
            probe.last_time = last_time
        solver._last_step_time = last_step_time
        solver._started = started
        solver._order = None
        solver._invalidate_schedule()
        return sim

    def matches_live(self, sim):
        """True when ``sim``'s live state equals this capture.

        The *re-convergence* test batched digital campaigns rely on: a
        mutant whose flipped bit has been overwritten (shifted out,
        reloaded, resynchronised) is back on the golden trajectory the
        moment its full kernel state equals the golden snapshot at the
        same time — determinism then guarantees the rest of its run is
        sample-identical to golden, so simulation can stop and the
        golden tail be spliced in.

        The comparison covers everything that feeds future behaviour:
        signal values/previous values/forces/driver contributions,
        node values and currents, component ``state_dict`` captures,
        process pending flags, and the pending event queue (by time,
        priority and callback identity — relative order included).
        Purely observational bookkeeping — signal change counters and
        last-change times, executed-event tallies, trace lengths — is
        deliberately excluded: a healed mutant legitimately toggled
        more often than golden, and none of those counters feed the
        simulation.  The result errs on the side of ``False``: a
        missed match costs speed, never correctness.
        """
        if sim is not self.sim or sim.now != self.time:
            return False
        for signal, state in self.signal_states:
            live = signal._state()
            # _state() layout: value, prev, last_change_time,
            # change_count, forced, forced_value, drivers,
            # driver values, default driver, listeners.  Indices 2/3
            # are observational; 6/8/9 are structural registrations
            # shared with the snapshot by construction.
            if live[0] != state[0] or live[1] != state[1]:
                return False
            if live[4] != state[4] or live[5] != state[5]:
                return False
            if not _values_equal(live[7], state[7]):
                return False
        for node, state in self.node_states:
            live = node._state()
            if not _values_equal(live[0], state[0]):
                return False
            if len(live) > 1 and not _values_equal(live[1:], state[1:]):
                return False
        for component, state in self.component_states:
            if not _values_equal(component.state_dict(), state):
                return False
        for proc, pending in zip(self.processes, self.process_states):
            if proc.pending != pending:
                return False
        events, flags, _next_seq = self.queue_state
        order = lambda event: (event.time, event.priority, event.seq)
        captured = sorted(
            (e for e, cancelled in zip(events, flags) if not cancelled),
            key=order,
        )
        live_events = sorted(
            (e for e in sim._queue._heap if not e.cancelled), key=order
        )
        if len(captured) != len(live_events):
            return False
        for want, have in zip(captured, live_events):
            if want.time != have.time or want.priority != have.priority:
                return False
            if not _callbacks_equal(want.callback, have.callback):
                return False
        return True

    def __repr__(self):
        events = len(self.queue_state[0])
        return (
            f"<Snapshot t={self.time:.6g} events={events} "
            f"signals={len(self.signal_states)} nodes={len(self.node_states)} "
            f"components={len(self.component_states)}>"
        )
