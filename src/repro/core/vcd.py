"""VCD (Value Change Dump) export.

Dumps recorded traces into the IEEE-1364 VCD format so campaign runs
can be inspected in standard waveform viewers (GTKWave etc.).  Digital
traces become scalar ``wire`` variables with full nine-value fidelity
(0, 1, x, z); analog traces become ``real`` variables.
"""

from __future__ import annotations

import io

from .errors import ReproError
from .logic import Logic
from .trace import STEP, Trace

#: VCD identifier alphabet (printable ASCII ! through ~).
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


class VCDError(ReproError):
    """Raised for invalid VCD export requests."""


def _identifier(index):
    """Short unique VCD identifier code for variable ``index``."""
    base = len(_ID_ALPHABET)
    code = _ID_ALPHABET[index % base]
    index //= base
    while index:
        code = _ID_ALPHABET[index % base] + code
        index //= base
    return code


def _vcd_logic_char(value):
    """Map a trace payload to a VCD scalar character."""
    if isinstance(value, Logic):
        if value.is_high():
            return "1"
        if value.is_low():
            return "0"
        if value is Logic.Z:
            return "z"
        return "x"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if value == 0:
            return "0"
        if value == 1:
            return "1"
    return "x"


def _sanitize(name):
    """VCD-legal variable name (no spaces)."""
    return name.replace(" ", "_")


def write_vcd(traces, stream, timescale_fs=1000, date="", comment="",
              vectors=None):
    """Write traces as a VCD document.

    :param traces: mapping of display name -> :class:`Trace`, or an
        iterable of traces (their own names are used).
    :param stream: a text file-like object.
    :param timescale_fs: VCD timescale in femtoseconds per tick
        (default 1000 fs = 1 ps); times are rounded to this grid.
    :param vectors: optional mapping ``name -> [bit traces, LSB
        first]``; each becomes one multi-bit ``wire`` variable with
        ``b...`` value changes (viewers then render the word).
    :raises VCDError: for empty input or unsupported timescales.
    """
    if isinstance(traces, dict):
        items = list(traces.items())
    else:
        items = [(trace.name, trace) for trace in traces]
    vectors = dict(vectors or {})
    if not items and not vectors:
        raise VCDError("no traces to export")
    scale_map = {1: "1 fs", 10: "10 fs", 100: "100 fs", 1000: "1 ps",
                 10000: "10 ps", 100000: "100 ps", 1000000: "1 ns"}
    if timescale_fs not in scale_map:
        raise VCDError(
            f"unsupported timescale {timescale_fs} fs; choose one of "
            f"{sorted(scale_map)}"
        )
    tick = timescale_fs * 1e-15

    stream.write("$date\n  " + (date or "repro export") + "\n$end\n")
    if comment:
        stream.write(f"$comment\n  {comment}\n$end\n")
    stream.write(f"$timescale {scale_map[timescale_fs]} $end\n")
    stream.write("$scope module repro $end\n")

    variables = []
    for index, (name, trace) in enumerate(items):
        code = _identifier(index)
        kind = "wire" if trace.interp == STEP else "real"
        width = 1 if kind == "wire" else 64
        stream.write(f"$var {kind} {width} {code} {_sanitize(name)} $end\n")
        variables.append((code, trace, kind))
    vector_vars = []
    for offset, (name, bit_traces) in enumerate(vectors.items()):
        if not bit_traces:
            raise VCDError(f"vector {name!r} has no bit traces")
        code = _identifier(len(items) + offset)
        width = len(bit_traces)
        stream.write(
            f"$var wire {width} {code} "
            f"{_sanitize(name)}[{width - 1}:0] $end\n"
        )
        vector_vars.append((code, list(bit_traces)))
    stream.write("$upscope $end\n$enddefinitions $end\n")

    # Merge all samples into one time-ordered change list.
    changes = []
    for code, trace, kind in variables:
        last = None
        for t, value in trace:
            rendered = (
                _vcd_logic_char(value)
                if kind == "wire"
                else f"{float(value):.9g}"
            )
            if rendered == last:
                continue
            last = rendered
            changes.append((int(round(t / tick)), code, kind, rendered))
    for code, bit_traces in vector_vars:
        merged_times = sorted({t for trace in bit_traces for t, _v in trace})
        last = None
        for t in merged_times:
            word = "".join(
                _vcd_logic_char(trace.value_at(t))
                for trace in reversed(bit_traces)  # MSB first
            )
            if word == last:
                continue
            last = word
            changes.append((int(round(t / tick)), code, "vector", word))
    changes.sort(key=lambda c: c[0])

    current_time = None
    for tick_time, code, kind, rendered in changes:
        if tick_time != current_time:
            stream.write(f"#{tick_time}\n")
            current_time = tick_time
        if kind == "wire":
            stream.write(f"{rendered}{code}\n")
        elif kind == "vector":
            stream.write(f"b{rendered} {code}\n")
        else:
            stream.write(f"r{rendered} {code}\n")


def dumps_vcd(traces, **kwargs):
    """VCD document as a string (see :func:`write_vcd`)."""
    buffer = io.StringIO()
    write_vcd(traces, buffer, **kwargs)
    return buffer.getvalue()


def save_vcd(traces, path, **kwargs):
    """Write a VCD file at ``path`` (see :func:`write_vcd`)."""
    with open(path, "w") as handle:
        write_vcd(traces, handle, **kwargs)
