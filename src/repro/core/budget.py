"""Run budgets and numerical guards for supervised execution.

A fault-injection campaign only terminates if every individual run
terminates — yet the very pulses the campaign injects can drive the
analog solver into divergence (NaN-poisoned traces) or the event
kernel into livelock (a runaway oscillator scheduling events forever).
This module provides the two defensive mechanisms the campaign layer
arms on every faulty run:

* :class:`RunBudget` — hard ceilings on wall-clock time, kernel events
  and analog solver steps for one :meth:`Simulator.run` call.  The
  kernel enforces it inside the event loop and raises
  :class:`~repro.core.errors.BudgetExceededError`, so a hung run
  becomes a classifiable ``timeout`` outcome instead of a stalled
  campaign.
* :class:`NumericalGuard` — periodic NaN/Inf, magnitude and
  step-to-step delta checks over every analog node, raising
  :class:`~repro.core.errors.NumericalDivergenceError` the moment a
  value goes bad — before it contaminates every downstream sample.

Both are *opt-in* at the kernel level (``sim.budget`` /
``sim.analog.guard`` are ``None`` by default), so ordinary simulations
pay nothing.  The campaign runner arms them for faulty runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import BudgetExceededError, NumericalDivergenceError, ReproError
from .units import format_quantity, nonfinite_diagnostic, parse_quantity


@dataclass(frozen=True)
class RunBudget:
    """Resource ceilings for one :meth:`Simulator.run` call.

    Any combination of limits may be set; ``None`` disables that
    check.  Limits are *per run call*: a warm-started faulty run that
    restores a checkpoint and simulates only the suffix is budgeted
    over that suffix, which is exactly the work it does.

    :ivar max_wall_s: wall-clock ceiling in seconds (accepts ``"30s"``
        engineering notation).  Checked every few hundred events so a
        busy loop cannot starve the check.
    :ivar max_events: ceiling on kernel events executed by the run.
    :ivar max_steps: ceiling on analog solver steps taken by the run.
    """

    max_wall_s: float | None = None
    max_events: int | None = None
    max_steps: int | None = None

    def __post_init__(self):
        if self.max_wall_s is not None:
            object.__setattr__(
                self, "max_wall_s",
                parse_quantity(self.max_wall_s, expect_unit="s"),
            )
        for name in ("max_wall_s", "max_events", "max_steps"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ReproError(
                    f"RunBudget.{name} must be positive, got {value!r}"
                )

    @property
    def empty(self):
        """True when no limit is configured (budget is a no-op)."""
        return (
            self.max_wall_s is None
            and self.max_events is None
            and self.max_steps is None
        )

    def describe(self):
        """Human-readable one-liner of the configured limits."""
        parts = []
        if self.max_wall_s is not None:
            parts.append(f"wall<={format_quantity(self.max_wall_s, 's')}")
        if self.max_events is not None:
            parts.append(f"events<={self.max_events}")
        if self.max_steps is not None:
            parts.append(f"steps<={self.max_steps}")
        return " ".join(parts) or "unlimited"


class NumericalGuard:
    """Periodic health checks over every analog node value.

    Installed on an :class:`~repro.core.kernel.AnalogSolver` via its
    ``guard`` attribute; the solver calls :meth:`maybe_check` after
    each step.  Checks run every ``check_every`` steps — divergence
    detection does not need single-step latency, and the stride keeps
    the per-step cost negligible.

    Three independent checks, each raising
    :class:`NumericalDivergenceError`:

    * **non-finite** — a node value is NaN or Inf (always on);
    * **magnitude** — ``|v| > max_abs`` (physical circuits live within
      supply rails; the default 1e12 only catches true runaways);
    * **slew** — ``|v - v_prev| > max_step_delta`` between consecutive
      checks (off by default; enable for solvers prone to oscillatory
      blow-up that alternates sign while staying bounded).

    :param max_abs: magnitude ceiling in node units, or ``None``.
    :param max_step_delta: check-to-check delta ceiling, or ``None``.
    :param check_every: solver-step stride between checks (>= 1).
    """

    __slots__ = ("max_abs", "max_step_delta", "check_every", "_countdown",
                 "_previous")

    def __init__(self, max_abs=1e12, max_step_delta=None, check_every=8):
        if check_every < 1:
            raise ReproError(
                f"check_every must be >= 1, got {check_every!r}"
            )
        if max_abs is not None and max_abs <= 0:
            raise ReproError(f"max_abs must be positive, got {max_abs!r}")
        if max_step_delta is not None and max_step_delta <= 0:
            raise ReproError(
                f"max_step_delta must be positive, got {max_step_delta!r}"
            )
        self.max_abs = max_abs
        self.max_step_delta = max_step_delta
        self.check_every = int(check_every)
        self._countdown = self.check_every
        self._previous = {}

    def fresh(self):
        """A new guard with the same configuration and no history.

        The campaign runner arms one guard instance *per design* so
        the step-to-step history of one run never bleeds into the
        next.
        """
        return NumericalGuard(
            max_abs=self.max_abs,
            max_step_delta=self.max_step_delta,
            check_every=self.check_every,
        )

    def reset(self):
        """Drop the step-to-step history (called on checkpoint restore).

        A restore rewinds node values; comparing a post-restore value
        against a pre-restore one would report a spurious slew.
        """
        self._countdown = self.check_every
        self._previous.clear()

    def maybe_check(self, sim, t):
        """Run :meth:`check` every ``check_every``-th call (solver hook)."""
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.check_every
        self.check(sim, t)

    def check(self, sim, t):
        """Validate every registered analog node at time ``t``.

        :raises NumericalDivergenceError: on the first bad value.
        """
        max_abs = self.max_abs
        max_delta = self.max_step_delta
        previous = self._previous if max_delta is not None else None
        for name, node in sim.nodes.items():
            value = node.v
            if not math.isfinite(value):
                raise NumericalDivergenceError(
                    nonfinite_diagnostic(name, value, t),
                    node=name, value=value, at_time=t,
                )
            if max_abs is not None and (value > max_abs or value < -max_abs):
                raise NumericalDivergenceError(
                    nonfinite_diagnostic(name, value, t)
                    + f" (|v| > {format_quantity(max_abs, 'V')})",
                    node=name, value=value, at_time=t,
                )
            if previous is not None:
                last = previous.get(name)
                if last is not None and abs(value - last) > max_delta:
                    raise NumericalDivergenceError(
                        nonfinite_diagnostic(name, value, t)
                        + f" (step delta {format_quantity(abs(value - last), 'V')}"
                        f" > {format_quantity(max_delta, 'V')})",
                        node=name, value=value, at_time=t,
                    )
                previous[name] = value

    def __repr__(self):
        return (
            f"<NumericalGuard max_abs={self.max_abs!r} "
            f"max_step_delta={self.max_step_delta!r} "
            f"every={self.check_every}>"
        )
