"""Optional compiled kernels for the ensemble hot loop.

The batched ensemble path spends its time in two elementwise float64
loops: evaluating every variant's trapezoid pulse current and stepping
the SISO state-space blocks with ``(k,)`` input columns.  Both are
already struct-of-arrays, so an optional ``numba`` JIT gives a cheap
speedup — but the campaign contract is *bit-identity to scalar
execution*, which compiled code can silently break (FMA contraction,
reassociated sums).  Three defences keep the contract:

* kernels are compiled with ``fastmath=False`` and written as the
  exact per-element expressions of their NumPy fallbacks — same
  operations, same order;
* the JIT path is validated at import: every kernel runs once against
  its fallback on deterministic varied data, and any bitwise mismatch
  disables the compiled path for the process (the fallback is always
  correct);
* everything degrades gracefully — without ``numba`` installed the
  module exposes the same functions backed by NumPy, and the
  environment variable ``REPRO_NUMBA=0`` (or ``off``/``false``)
  forces the fallback even when ``numba`` is available.

``USE_NUMBA`` reports which path is live; benchmarks surface it so a
perf trajectory can attribute wins to the right layer.
"""

from __future__ import annotations

import logging
import os

import numpy as np

LOGGER = logging.getLogger("repro.kernels")

#: True when the numba-compiled kernels are active in this process.
USE_NUMBA = False

#: Why the compiled path is on or off (for diagnostics/benchmarks).
NUMBA_STATUS = "uninitialised"


def _numba_requested():
    value = os.environ.get("REPRO_NUMBA", "auto").strip().lower()
    return value not in ("0", "off", "false", "no")


# -- NumPy fallbacks ---------------------------------------------------------
#
# These are the reference implementations; the jitted kernels must
# reproduce them bitwise.  The trapezoid fallback mirrors
# ``TrapezoidPulse.current``'s piecewise expressions exactly (see
# faults/current_pulse.py), the SISO fallbacks mirror
# ``LTISystem.step_siso``'s update expressions (see analog/lti.py).


def _trapezoid_currents_numpy(tau, pa, rt, ft, pw, duration, out):
    with np.errstate(divide="ignore", invalid="ignore"):
        rise = pa * tau / rt
        fall = pa * (1.0 - (tau - pw) / ft)
    np.copyto(
        out,
        np.where(
            tau < rt,
            rise,
            np.where(tau < pw, pa, np.where(ft != 0.0, fall, 0.0)),
        ),
    )
    np.copyto(out, np.where((tau < 0) | (tau >= duration), 0.0, out))
    return out


def _siso1_step_numpy(x, u, a00, b0, c00, d00, y):
    x0 = a00 * x[0] + b0 * u
    x[0] = x0
    np.copyto(y, c00 * x0)
    if d00 != 0.0:
        np.copyto(y, y + d00 * u)
    return y


def _siso2_step_numpy(x, u, a00, a01, a10, a11, b0, b1, c00, c01, d00, y):
    x0 = x[0]
    x1 = x[1]
    nx0 = a00 * x0 + a01 * x1 + b0 * u
    nx1 = a10 * x0 + a11 * x1 + b1 * u
    x[0] = nx0
    x[1] = nx1
    np.copyto(y, c00 * nx0 + c01 * nx1)
    if d00 != 0.0:
        np.copyto(y, y + d00 * u)
    return y


trapezoid_currents_kernel = _trapezoid_currents_numpy
siso1_step_kernel = _siso1_step_numpy
siso2_step_kernel = _siso2_step_numpy


# -- numba kernels -----------------------------------------------------------


def _build_numba_kernels():
    """Compile the jitted kernels; raises when numba is unavailable."""
    from numba import njit

    @njit(cache=True, fastmath=False)
    def trapezoid_jit(tau, pa, rt, ft, pw, duration, out):
        for i in range(tau.shape[0]):
            t = tau[i]
            if t < 0.0 or t >= duration[i]:
                out[i] = 0.0
            elif t < rt[i]:
                out[i] = pa[i] * t / rt[i]
            elif t < pw[i]:
                out[i] = pa[i]
            elif ft[i] != 0.0:
                out[i] = pa[i] * (1.0 - (t - pw[i]) / ft[i])
            else:
                out[i] = 0.0
        return out

    @njit(cache=True, fastmath=False)
    def siso1_jit(x, u, a00, b0, c00, d00, y):
        for i in range(u.shape[0]):
            x0 = a00 * x[0, i] + b0 * u[i]
            x[0, i] = x0
            yi = c00 * x0
            if d00 != 0.0:
                yi = yi + d00 * u[i]
            y[i] = yi
        return y

    @njit(cache=True, fastmath=False)
    def siso2_jit(x, u, a00, a01, a10, a11, b0, b1, c00, c01, d00, y):
        for i in range(u.shape[0]):
            x0 = x[0, i]
            x1 = x[1, i]
            nx0 = a00 * x0 + a01 * x1 + b0 * u[i]
            nx1 = a10 * x0 + a11 * x1 + b1 * u[i]
            x[0, i] = nx0
            x[1, i] = nx1
            yi = c00 * nx0 + c01 * nx1
            if d00 != 0.0:
                yi = yi + d00 * u[i]
            y[i] = yi
        return y

    return trapezoid_jit, siso1_jit, siso2_jit


def _self_check(trapezoid_jit, siso1_jit, siso2_jit):
    """Bitwise-compare every jitted kernel against its NumPy fallback.

    Deterministic varied data (negative taus, zero fall times, exact
    branch boundaries, denormal-ish magnitudes) so a compiler that
    contracts ``a*b + c`` into an FMA — or reorders anything — is
    caught here rather than in a campaign equivalence test.
    """
    rng = np.random.default_rng(20260808)
    k = 97
    tau = np.concatenate(
        [rng.uniform(-1e-9, 2e-9, k - 4), [0.0, 1e-10, 5e-10, 1e-9]]
    )
    pa = rng.uniform(-1e-2, 1e-2, k)
    rt = rng.uniform(1e-11, 2e-10, k)
    ft = rng.uniform(0.0, 3e-10, k)
    ft[::7] = 0.0
    pw = rt + rng.uniform(1e-11, 5e-10, k)
    duration = pw + ft

    out_np = np.empty(k)
    out_jit = np.empty(k)
    _trapezoid_currents_numpy(tau, pa, rt, ft, pw, duration, out_np)
    trapezoid_jit(tau, pa, rt, ft, pw, duration, out_jit)
    if out_np.tobytes() != out_jit.tobytes():
        return "trapezoid kernel mismatch"

    u = rng.uniform(-1.0, 1.0, k)
    coeffs = rng.uniform(-1.5, 1.5, 10)
    for d00 in (0.0, coeffs[9]):
        x_np = rng.uniform(-1.0, 1.0, (1, k))
        x_jit = x_np.copy()
        y_np, y_jit = np.empty(k), np.empty(k)
        _siso1_step_numpy(x_np, u, coeffs[0], coeffs[4], coeffs[6], d00, y_np)
        siso1_jit(x_jit, u, coeffs[0], coeffs[4], coeffs[6], d00, y_jit)
        if (
            y_np.tobytes() != y_jit.tobytes()
            or x_np.tobytes() != x_jit.tobytes()
        ):
            return "siso1 kernel mismatch"

        x_np = rng.uniform(-1.0, 1.0, (2, k))
        x_jit = x_np.copy()
        _siso2_step_numpy(
            x_np, u, coeffs[0], coeffs[1], coeffs[2], coeffs[3],
            coeffs[4], coeffs[5], coeffs[6], coeffs[7], d00, y_np,
        )
        siso2_jit(
            x_jit, u, coeffs[0], coeffs[1], coeffs[2], coeffs[3],
            coeffs[4], coeffs[5], coeffs[6], coeffs[7], d00, y_jit,
        )
        if (
            y_np.tobytes() != y_jit.tobytes()
            or x_np.tobytes() != x_jit.tobytes()
        ):
            return "siso2 kernel mismatch"
    return None


def _initialise():
    global USE_NUMBA, NUMBA_STATUS
    global trapezoid_currents_kernel, siso1_step_kernel, siso2_step_kernel
    if not _numba_requested():
        NUMBA_STATUS = "disabled by REPRO_NUMBA"
        return
    try:
        kernels = _build_numba_kernels()
    except ImportError:
        NUMBA_STATUS = "numba not installed"
        return
    except Exception as exc:  # pragma: no cover - compiler-side failures
        NUMBA_STATUS = f"numba compilation failed: {exc}"
        LOGGER.warning("numba kernels unavailable: %s", exc)
        return
    failure = _self_check(*kernels)
    if failure is not None:  # pragma: no cover - toolchain dependent
        NUMBA_STATUS = f"self-check failed: {failure}"
        LOGGER.warning(
            "numba kernels disabled (bit-identity self-check): %s", failure
        )
        return
    trapezoid_currents_kernel, siso1_step_kernel, siso2_step_kernel = kernels
    USE_NUMBA = True
    NUMBA_STATUS = "active"


_initialise()
