"""Design hierarchy: components and behavioural blocks.

The paper's flow instruments a *hierarchical* circuit description
(VHDL / VHDL-AMS).  Here the description is a tree of
:class:`Component` objects:

* :class:`DigitalComponent` — event-driven behaviour expressed as
  processes with sensitivity lists, computing over
  :class:`~repro.core.signal.Signal` objects.
* :class:`AnalogBlock` — a continuous behavioural model with a
  ``step(t, dt)`` method evaluated by the analog solver every timestep,
  reading and writing :class:`~repro.core.node.AnalogNode` objects.

Every component can expose its memory elements through
:meth:`Component.state_signals`; that is the hook the *mutant*
instrumentation (Section 3.2) uses to flip stored bits.
"""

from __future__ import annotations

import enum

import numpy as np

from .errors import ElaborationError

#: Infrastructure attributes a generic state capture must never touch:
#: identity, hierarchy links and dataflow registrations are structural,
#: not simulation state.
_STATE_SKIP = frozenset(
    {"sim", "name", "parent", "children", "read_nodes", "write_nodes"}
)

#: Scalar types captured (and restored) by value.
_SCALARS = (int, float, bool, complex, str, bytes, type(None), enum.Enum)

#: Marker for attributes the generic capture leaves alone.
_SKIP = object()


def _capture(value):
    """Classify one attribute value for a generic state capture.

    Returns ``(kind, payload)`` or :data:`_SKIP`:

    * scalars (numbers, strings, enums, None) — by value;
    * numpy arrays — copied;
    * lists / tuples / dicts / sets — shallow-copied (their *elements*
      are assumed immutable or externally managed; blocks mutating
      container elements in place must override ``state_dict``);
    * objects exposing ``state_dict``/``load_state_dict`` (e.g.
      :class:`~repro.analog.lti.LTISystem`) — captured recursively,
      except components themselves, which the simulator snapshots
      individually;
    * anything else (signals, nodes, drivers, callables) — skipped,
      because the kernel snapshot covers it through other channels.
    """
    if isinstance(value, Component):
        return _SKIP
    if isinstance(value, _SCALARS):
        return ("scalar", value)
    if isinstance(value, np.ndarray):
        return ("array", value.copy())
    if isinstance(value, (list, tuple, dict, set)):
        return ("container", type(value)(value))
    if hasattr(value, "state_dict") and hasattr(value, "load_state_dict"):
        return ("nested", value.state_dict())
    return _SKIP


class Component:
    """A node in the design hierarchy.

    :param sim: owning :class:`~repro.core.kernel.Simulator`.
    :param name: instance name, unique among its siblings.
    :param parent: enclosing component, or None for a top-level
        instance.
    """

    def __init__(self, sim, name, parent=None):
        if "/" in name:
            raise ElaborationError(f"component name {name!r} may not contain '/'")
        self.sim = sim
        self.name = name
        self.parent = parent
        self.children = []
        if parent is not None:
            parent._add_child(self)
        sim._register_component(self)

    def _add_child(self, child):
        if any(existing.name == child.name for existing in self.children):
            raise ElaborationError(
                f"component {self.path} already has a child named {child.name!r}"
            )
        self.children.append(child)

    @property
    def path(self):
        """Hierarchical instance path, e.g. ``"pll/filter"``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def walk(self):
        """Yield this component and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, relative_path):
        """Look up a descendant by ``"/"``-separated relative path.

        :raises ElaborationError: when no such descendant exists.
        """
        current = self
        for part in relative_path.split("/"):
            for child in current.children:
                if child.name == part:
                    current = child
                    break
            else:
                raise ElaborationError(
                    f"{self.path} has no descendant {relative_path!r} "
                    f"(failed at {part!r})"
                )
        return current

    def state_signals(self):
        """Memory elements exposed for mutant bit-flip injection.

        Returns a mapping of local state name to
        :class:`~repro.core.signal.Signal`.  Sequential components
        override this; purely combinational components return ``{}``.
        """
        return {}

    # -- checkpoint support ------------------------------------------------

    def state_dict(self):
        """Internal simulation state for checkpoint/restore.

        The default captures every *plain-data* instance attribute —
        scalars, numpy arrays, shallow containers and nested objects
        exposing their own ``state_dict`` — which covers the phase
        accumulators, one-sample input histories, mode flags and
        activity counters behavioural models keep outside signals and
        nodes.  Components with state the generic rules cannot see
        (open file handles, iterators, containers mutated element-wise
        in place) must override both this and :meth:`load_state_dict`.
        """
        state = {}
        for key, value in vars(self).items():
            if key in _STATE_SKIP:
                continue
            captured = _capture(value)
            if captured is not _SKIP:
                state[key] = captured
        return state

    def load_state_dict(self, state):
        """Restore a capture made by :meth:`state_dict`."""
        for key, (kind, payload) in state.items():
            if kind == "scalar":
                setattr(self, key, payload)
            elif kind == "array":
                setattr(self, key, payload.copy())
            elif kind == "container":
                setattr(self, key, type(payload)(payload))
            elif kind == "nested":
                getattr(self, key).load_state_dict(payload)

    def __repr__(self):
        return f"<{type(self).__name__} {self.path}>"


class DigitalComponent(Component):
    """A component whose behaviour runs as event-driven processes."""

    def process(self, fn, sensitivity=()):
        """Register ``fn`` to run whenever a sensitivity signal changes.

        The process also runs once at simulation start (time zero),
        mirroring VHDL process initialisation.
        """
        return self.sim.add_process(fn, sensitivity)


class AnalogBlock(Component):
    """A continuous behavioural model evaluated every solver step.

    Subclasses implement :meth:`step` and declare their dataflow via
    :meth:`reads_node` / :meth:`writes_node` so the solver can order
    block evaluation topologically.  Blocks whose outputs depend only
    on internal state integrated from *past* inputs (VCOs, filters)
    should set ``is_state = True``; the solver then treats them as
    sources when breaking feedback loops.
    """

    is_state = False

    def __init__(self, sim, name, parent=None):
        super().__init__(sim, name, parent=parent)
        self.read_nodes = []
        self.write_nodes = []
        sim.analog.add_block(self)

    def reads_node(self, node):
        """Declare that :meth:`step` reads ``node``; returns it."""
        if node not in self.read_nodes:
            self.read_nodes.append(node)
        node.add_reader(self)
        return node

    def writes_node(self, node):
        """Declare that :meth:`step` writes ``node``; returns it."""
        if node not in self.write_nodes:
            self.write_nodes.append(node)
        node.add_writer(self)
        return node

    def step(self, t, dt):
        """Advance the block from ``t`` to ``t + dt``.

        ``dt`` is the elapsed time since the previous evaluation; on
        the very first step ``dt`` is 0 and blocks should initialise
        their outputs.
        """
        raise NotImplementedError
