"""Design hierarchy: components and behavioural blocks.

The paper's flow instruments a *hierarchical* circuit description
(VHDL / VHDL-AMS).  Here the description is a tree of
:class:`Component` objects:

* :class:`DigitalComponent` — event-driven behaviour expressed as
  processes with sensitivity lists, computing over
  :class:`~repro.core.signal.Signal` objects.
* :class:`AnalogBlock` — a continuous behavioural model with a
  ``step(t, dt)`` method evaluated by the analog solver every timestep,
  reading and writing :class:`~repro.core.node.AnalogNode` objects.

Every component can expose its memory elements through
:meth:`Component.state_signals`; that is the hook the *mutant*
instrumentation (Section 3.2) uses to flip stored bits.
"""

from __future__ import annotations

from .errors import ElaborationError


class Component:
    """A node in the design hierarchy.

    :param sim: owning :class:`~repro.core.kernel.Simulator`.
    :param name: instance name, unique among its siblings.
    :param parent: enclosing component, or None for a top-level
        instance.
    """

    def __init__(self, sim, name, parent=None):
        if "/" in name:
            raise ElaborationError(f"component name {name!r} may not contain '/'")
        self.sim = sim
        self.name = name
        self.parent = parent
        self.children = []
        if parent is not None:
            parent._add_child(self)
        sim._register_component(self)

    def _add_child(self, child):
        if any(existing.name == child.name for existing in self.children):
            raise ElaborationError(
                f"component {self.path} already has a child named {child.name!r}"
            )
        self.children.append(child)

    @property
    def path(self):
        """Hierarchical instance path, e.g. ``"pll/filter"``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def walk(self):
        """Yield this component and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, relative_path):
        """Look up a descendant by ``"/"``-separated relative path.

        :raises ElaborationError: when no such descendant exists.
        """
        current = self
        for part in relative_path.split("/"):
            for child in current.children:
                if child.name == part:
                    current = child
                    break
            else:
                raise ElaborationError(
                    f"{self.path} has no descendant {relative_path!r} "
                    f"(failed at {part!r})"
                )
        return current

    def state_signals(self):
        """Memory elements exposed for mutant bit-flip injection.

        Returns a mapping of local state name to
        :class:`~repro.core.signal.Signal`.  Sequential components
        override this; purely combinational components return ``{}``.
        """
        return {}

    def __repr__(self):
        return f"<{type(self).__name__} {self.path}>"


class DigitalComponent(Component):
    """A component whose behaviour runs as event-driven processes."""

    def process(self, fn, sensitivity=()):
        """Register ``fn`` to run whenever a sensitivity signal changes.

        The process also runs once at simulation start (time zero),
        mirroring VHDL process initialisation.
        """
        return self.sim.add_process(fn, sensitivity)


class AnalogBlock(Component):
    """A continuous behavioural model evaluated every solver step.

    Subclasses implement :meth:`step` and declare their dataflow via
    :meth:`reads_node` / :meth:`writes_node` so the solver can order
    block evaluation topologically.  Blocks whose outputs depend only
    on internal state integrated from *past* inputs (VCOs, filters)
    should set ``is_state = True``; the solver then treats them as
    sources when breaking feedback loops.
    """

    is_state = False

    def __init__(self, sim, name, parent=None):
        super().__init__(sim, name, parent=parent)
        self.read_nodes = []
        self.write_nodes = []
        sim.analog.add_block(self)

    def reads_node(self, node):
        """Declare that :meth:`step` reads ``node``; returns it."""
        if node not in self.read_nodes:
            self.read_nodes.append(node)
        node.add_reader(self)
        return node

    def writes_node(self, node):
        """Declare that :meth:`step` writes ``node``; returns it."""
        if node not in self.write_nodes:
            self.write_nodes.append(node)
        node.add_writer(self)
        return node

    def step(self, t, dt):
        """Advance the block from ``t`` to ``t + dt``.

        ``dt`` is the elapsed time since the previous evaluation; on
        the very first step ``dt`` is 0 and blocks should initialise
        their outputs.
        """
        raise NotImplementedError
