"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the simulation kernel reaches an inconsistent state."""


class SchedulingError(SimulationError):
    """Raised for invalid event scheduling (negative delay, past time)."""


class ElaborationError(ReproError):
    """Raised when a circuit description cannot be turned into a live design."""


class ConnectionError_(ElaborationError):
    """Raised for invalid port/net connections.

    Named with a trailing underscore to avoid shadowing the built-in
    ``ConnectionError`` (an OSError subclass with unrelated semantics).
    """


class LogicValueError(ReproError):
    """Raised when a value is not a valid logic level for the operation."""


class FaultModelError(ReproError):
    """Raised for invalid fault-model parameters (e.g. negative width)."""


class InjectionError(ReproError):
    """Raised when a fault cannot be injected at the requested target."""


class CampaignError(ReproError):
    """Raised for invalid campaign specifications or failed campaign runs."""


class NetlistError(ReproError):
    """Raised when a netlist description is malformed."""


class MeasurementError(ReproError):
    """Raised when a waveform measurement cannot be computed."""
