"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the simulation kernel reaches an inconsistent state."""


class SchedulingError(SimulationError):
    """Raised for invalid event scheduling (negative delay, past time)."""


class ElaborationError(ReproError):
    """Raised when a circuit description cannot be turned into a live design."""


class ConnectionError_(ElaborationError):
    """Raised for invalid port/net connections.

    Named with a trailing underscore to avoid shadowing the built-in
    ``ConnectionError`` (an OSError subclass with unrelated semantics).
    """


class LogicValueError(ReproError):
    """Raised when a value is not a valid logic level for the operation."""


class FaultModelError(ReproError):
    """Raised for invalid fault-model parameters (e.g. negative width)."""


class InjectionError(ReproError):
    """Raised when a fault cannot be injected at the requested target."""


class BudgetExceededError(SimulationError):
    """Raised when a run exhausts its :class:`~repro.core.budget.RunBudget`.

    Campaign supervision maps this to the ``timeout`` run status: the
    simulation was healthy but would not finish within its allotted
    wall-clock time, kernel events or analog solver steps.

    Extra context (all optional, ``None`` when unknown — e.g. after
    crossing a process boundary) is carried in attributes so callers
    can report *which* resource ran out without parsing the message.

    :ivar resource: ``"wall"``, ``"events"`` or ``"steps"``.
    :ivar limit: the configured ceiling.
    :ivar used: the amount consumed when the budget tripped.
    :ivar at_time: simulated time when the budget tripped.
    """

    def __init__(self, message, resource=None, limit=None, used=None,
                 at_time=None):
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.used = used
        self.at_time = at_time


class NumericalDivergenceError(SimulationError):
    """Raised when an analog node value becomes non-finite or runs away.

    The very pulses a campaign injects can drive the behavioural
    analog solver into divergence; without this guard a NaN silently
    poisons every downstream trace sample.  Campaign supervision maps
    this to the ``diverged`` run status.

    :ivar node: name of the offending analog node (``None`` if lost
        across a process boundary).
    :ivar value: the offending value.
    :ivar at_time: simulated time of the failed check.
    """

    def __init__(self, message, node=None, value=None, at_time=None):
        super().__init__(message)
        self.node = node
        self.value = value
        self.at_time = at_time


class CampaignError(ReproError):
    """Raised for invalid campaign specifications or failed campaign runs."""


class WorkerCrashError(CampaignError):
    """Raised when a campaign worker process died without reporting.

    Synthesised by the supervised worker pool when a forked worker's
    exit is observed (non-zero exitcode, killed by a signal, or its
    result pipe hit EOF mid-run).  Campaign supervision maps this to
    the ``crashed`` run status.

    :ivar exitcode: the worker's exit code (negative = killed by that
        signal number), when known.
    """

    def __init__(self, message, exitcode=None):
        super().__init__(message)
        self.exitcode = exitcode


class NetlistError(ReproError):
    """Raised when a netlist description is malformed."""


class MeasurementError(ReproError):
    """Raised when a waveform measurement cannot be computed."""
