"""Engineering-unit helpers.

Fault-injection campaigns are specified in datasheet-style engineering
notation (``"10mA"``, ``"500ps"``, ``"2.5V"``).  This module converts
between such strings and floats in SI base units, and formats floats
back into readable engineering notation for reports.
"""

from __future__ import annotations

import math
import re

from .errors import ReproError

#: SI prefixes accepted by :func:`parse_quantity`, mapping to multipliers.
SI_PREFIXES = {
    "y": 1e-24,
    "z": 1e-21,
    "a": 1e-18,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,
    "m": 1e-3,
    "": 1.0,
    "k": 1e3,
    "K": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
}

#: Unit suffixes recognised (and stripped) by :func:`parse_quantity`.
KNOWN_UNITS = ("s", "A", "V", "Hz", "F", "Ohm", "ohm", "C", "W", "H")

_QUANTITY_RE = re.compile(
    r"""^\s*
        (?P<number>[-+]?(\d+(\.\d*)?|\.\d+)([eE][-+]?\d+)?)
        \s*
        (?P<prefix>[yzafpnuµmkKMGT]?)
        (?P<unit>[a-zA-Zµ]*)
        \s*$""",
    re.VERBOSE,
)


class UnitError(ReproError):
    """Raised when an engineering quantity string cannot be parsed."""


def parse_quantity(text, expect_unit=None):
    """Parse an engineering quantity string into a float in SI base units.

    >>> parse_quantity("10mA")
    0.01
    >>> parse_quantity("500ps")
    5e-10
    >>> parse_quantity("50MHz", expect_unit="Hz")
    50000000.0

    Floats and ints pass through unchanged, so campaign parameters can
    mix raw numbers and strings freely.

    :param text: string such as ``"10mA"``, or a plain number.
    :param expect_unit: if given, the unit suffix (when present) must
        match it; a bare number or bare prefix is always accepted.
    :raises UnitError: if the string is malformed or the unit mismatches.
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text)
    if not isinstance(text, str):
        raise UnitError(f"cannot parse quantity from {text!r}")

    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitError(f"malformed quantity: {text!r}")

    number = float(match.group("number"))
    prefix = match.group("prefix")
    unit = match.group("unit")

    # The regex is greedy about what it calls a prefix; a bare "m" with
    # no unit is ambiguous (metres vs milli) -- we treat a lone trailing
    # letter as a prefix only if a unit follows, except for known units.
    if prefix and not unit and prefix not in SI_PREFIXES:
        raise UnitError(f"malformed quantity: {text!r}")
    if prefix and not unit:
        # "10m" -> milli with implicit unit; accepted.
        pass
    if unit and unit not in KNOWN_UNITS:
        # Maybe the prefix capture was empty and the "unit" starts with
        # a prefix character, e.g. "10ms" parses prefix="m" unit="s"
        # already; anything left over here is genuinely unknown.
        raise UnitError(f"unknown unit {unit!r} in {text!r}")
    if expect_unit is not None and unit and unit != expect_unit:
        raise UnitError(f"expected unit {expect_unit!r}, got {unit!r} in {text!r}")

    return number * SI_PREFIXES[prefix]


def format_nonfinite(value, unit=""):
    """Format a NaN/Inf value with its unit, or None for finite values.

    The single source of truth for non-finite renderings: both
    :func:`format_quantity` and the numerical-guard diagnostics
    (:func:`nonfinite_diagnostic`) use it, so ``nan``/``inf`` always
    read the same everywhere.  A space separates the word from the
    unit (``"nan V"``, not the former ``"nanV"`` — which for seconds
    produced the unfortunate ``"nans"``).

    >>> format_nonfinite(float("nan"), "s")
    'nan s'
    >>> format_nonfinite(float("-inf"), "V")
    '-inf V'
    >>> format_nonfinite(1.0, "V") is None
    True
    """
    if math.isnan(value):
        return f"nan {unit}".rstrip()
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"{sign}inf {unit}".rstrip()
    return None


def nonfinite_diagnostic(name, value, time, unit="V"):
    """One-line diagnostic for a value that became non-finite.

    Used by the analog numerical guard so every divergence report
    renders identically: ``"node 'pll.vctrl' became non-finite
    (nan V) at t=40us"``.  Finite values render in engineering
    notation (useful for runaway — but still finite — magnitudes).

    :param name: node or quantity name.
    :param value: the offending value.
    :param time: simulated time of the check, in seconds.
    :param unit: unit suffix of the value.
    """
    rendered = format_nonfinite(value, unit)
    if rendered is not None:
        kind = "non-finite"
    else:
        rendered = format_quantity(value, unit)
        kind = "divergent"
    return (
        f"node {name!r} became {kind} ({rendered}) "
        f"at t={format_quantity(time, 's')}"
    )


def format_quantity(value, unit="", digits=4):
    """Format a float as an engineering quantity string.

    >>> format_quantity(5e-10, "s")
    '500ps'
    >>> format_quantity(0.01, "A")
    '10mA'

    :param value: the value in SI base units.
    :param unit: unit suffix appended after the SI prefix.
    :param digits: number of significant digits.
    """
    if value == 0:
        return f"0{unit}"
    nonfinite = format_nonfinite(value, unit)
    if nonfinite is not None:
        return nonfinite

    exponent = math.floor(math.log10(abs(value)))
    eng_exponent = 3 * (exponent // 3)
    eng_exponent = max(-24, min(12, eng_exponent))
    mantissa = value / 10.0**eng_exponent

    prefixes = {
        -24: "y", -21: "z", -18: "a", -15: "f", -12: "p", -9: "n",
        -6: "u", -3: "m", 0: "", 3: "k", 6: "M", 9: "G", 12: "T",
    }
    text = f"{mantissa:.{digits}g}"
    # Collapse "1000" mantissas produced by rounding (e.g. 0.9999e3).
    if float(text) >= 1000.0 and eng_exponent < 12:
        eng_exponent += 3
        mantissa = value / 10.0**eng_exponent
        text = f"{mantissa:.{digits}g}"
    return f"{text}{prefixes[eng_exponent]}{unit}"


def seconds(text):
    """Parse a time quantity (``"500ps"`` -> ``5e-10``)."""
    return parse_quantity(text, expect_unit="s")


def amperes(text):
    """Parse a current quantity (``"10mA"`` -> ``0.01``)."""
    return parse_quantity(text, expect_unit="A")


def volts(text):
    """Parse a voltage quantity (``"2.5V"`` -> ``2.5``)."""
    return parse_quantity(text, expect_unit="V")


def hertz(text):
    """Parse a frequency quantity (``"50MHz"`` -> ``5e7``)."""
    return parse_quantity(text, expect_unit="Hz")
