"""Checkpoint tree: the restore-point structure batched campaigns share.

Warm-started campaigns keep a flat list of golden snapshots; batched
execution generalises that into a *tree*:

* the **root** is the state at t=0 (the base golden checkpoint);
* **trunk** nodes are the golden-run checkpoints taken at the faults'
  injection times — the same snapshots plain warm starts restore;
* **branch** nodes hang off a trunk node: a digital bit-flip batch
  restores its group's trunk checkpoint once, then advances along the
  golden trajectory snapshotting at every distinct flip time (and at a
  geometric tail of *convergence horizon* points), so each mutant
  restores the branch node at exactly its flip time and every later
  branch node doubles as a state-comparison reference.

Branch snapshots are cheap to keep live: a :class:`Snapshot` stores
trace *lengths*, not sample data, so its footprint is the design's
state vectors — a few kilobytes for the digital blocks this path
serves.  The tree tracks how many were created and the peak live count
so campaign observability can report the real memory shape.
"""

from __future__ import annotations

from bisect import bisect_right

from .errors import SimulationError

#: Node kinds.
ROOT = "root"
TRUNK = "trunk"
BRANCH = "branch"


class CheckpointNode:
    """One restore point in the tree.

    :ivar time: simulated time the snapshot was captured at.
    :ivar snapshot: the :class:`~repro.core.snapshot.Snapshot`.
    :ivar parent: parent node (None for the root).
    :ivar kind: :data:`ROOT`, :data:`TRUNK` or :data:`BRANCH`.
    """

    __slots__ = ("time", "snapshot", "parent", "children", "kind")

    def __init__(self, time, snapshot, parent=None, kind=TRUNK):
        self.time = time
        self.snapshot = snapshot
        self.parent = parent
        self.children = []
        self.kind = kind
        if parent is not None:
            parent.children.append(self)

    def __repr__(self):
        return (
            f"<CheckpointNode {self.kind} t={self.time:.6g} "
            f"children={len(self.children)}>"
        )


class CheckpointTree:
    """Restore points organised as a tree rooted at the golden t=0 state.

    Built by the campaign runner during :meth:`prepare_warm` (trunk)
    and extended per digital batch (branches); released branches are
    dropped eagerly so peak memory stays one batch deep.
    """

    def __init__(self):
        self.root = None
        self._trunk = []          # CheckpointNode, ascending time
        self._trunk_times = []
        self.branches_created = 0
        self.branches_live = 0
        self.peak_live = 0

    # -- trunk -------------------------------------------------------------

    def set_trunk(self, checkpoints):
        """Install the golden checkpoint spine.

        :param checkpoints: iterable of ``(time, snapshot)`` pairs in
            ascending time order; the first becomes the root.
        """
        self.root = None
        self._trunk = []
        self._trunk_times = []
        parent = None
        for time, snapshot in checkpoints:
            kind = ROOT if parent is None else TRUNK
            node = CheckpointNode(time, snapshot, parent=parent, kind=kind)
            if parent is None:
                self.root = node
            self._trunk.append(node)
            self._trunk_times.append(time)
            parent = node
        if self.root is None:
            raise SimulationError("checkpoint tree needs at least one trunk node")
        return self._trunk

    @property
    def trunk(self):
        """The trunk nodes, ascending in time."""
        return list(self._trunk)

    def trunk_at(self, time):
        """The deepest trunk node at or before ``time`` (root fallback)."""
        if not self._trunk:
            raise SimulationError("checkpoint tree has no trunk")
        index = bisect_right(self._trunk_times, time)
        return self._trunk[max(index - 1, 0)]

    # -- branches ----------------------------------------------------------

    def branch(self, parent, time, snapshot):
        """Attach a branch node under ``parent`` (trunk or branch)."""
        if time < parent.time:
            raise SimulationError(
                f"branch time {time} precedes parent checkpoint {parent.time}"
            )
        node = CheckpointNode(time, snapshot, parent=parent, kind=BRANCH)
        self.branches_created += 1
        self.branches_live += 1
        self.peak_live = max(self.peak_live, self.branches_live)
        return node

    def release(self, node):
        """Drop a branch subtree (frees its snapshots for GC)."""
        if node.kind != BRANCH:
            raise SimulationError("only branch nodes can be released")
        dropped = 1 + self._count(node)
        if node.parent is not None:
            node.parent.children.remove(node)
        node.parent = None
        self.branches_live -= dropped
        return dropped

    @staticmethod
    def _count(node):
        total = 0
        for child in node.children:
            total += 1 + CheckpointTree._count(child)
        return total

    def stats(self):
        """Counters for campaign observability."""
        return {
            "trunk": len(self._trunk),
            "branch_snapshots": self.branches_created,
            "branch_peak_live": self.peak_live,
        }

    def __repr__(self):
        return (
            f"<CheckpointTree trunk={len(self._trunk)} "
            f"branches={self.branches_created} live={self.branches_live}>"
        )
