"""Hierarchy utilities.

Helpers for walking and querying a design hierarchy: collecting the
memory elements a mutant campaign can target, listing the analog nodes
a saboteur campaign can target, and rendering the instance tree —
the information the designer supplies during the paper's "campaign
definition" step.
"""

from __future__ import annotations

import fnmatch

from .component import AnalogBlock, Component
from .node import CurrentNode


def glob_match(name, pattern):
    """fnmatch with literal square brackets.

    Signal and state names contain ``[i]`` bit indices; a plain
    fnmatch would read those as character classes, so ``[`` in the
    pattern is escaped to the ``[[]`` literal form first.
    """
    return fnmatch.fnmatch(name, pattern.replace("[", "[[]"))


def iter_components(root):
    """Depth-first iterator over a component subtree."""
    yield from root.walk()


def collect_state_signals(root, pattern="*"):
    """All mutant-injectable memory elements under ``root``.

    Returns a list of ``(qualified_name, signal)`` pairs where the
    qualified name is ``"<component path>.<state name>"``.  ``pattern``
    is an fnmatch-style filter on the qualified name.
    """
    found = []
    for component in root.walk():
        for state_name, sig in sorted(component.state_signals().items()):
            qualified = f"{component.path}.{state_name}"
            if glob_match(qualified, pattern):
                found.append((qualified, sig))
    return found


def collect_current_nodes(sim, pattern="*"):
    """All saboteur-injectable current nodes in the design.

    Returns ``(name, node)`` pairs sorted by name, filtered by an
    fnmatch pattern; these are the legal targets of the analog
    current-pulse saboteur (injection is limited to interconnections
    between sub-blocks, exactly the paper's Section 4.1 restriction).
    """
    found = []
    for name in sorted(sim.nodes):
        node = sim.nodes[name]
        if isinstance(node, CurrentNode) and glob_match(name, pattern):
            found.append((name, node))
    return found


def analog_blocks(root):
    """All analog behavioural blocks under ``root``."""
    return [c for c in root.walk() if isinstance(c, AnalogBlock)]


def format_tree(root, indent="  "):
    """Multi-line text rendering of the instance tree."""
    lines = []

    def visit(component, depth):
        kind = type(component).__name__
        lines.append(f"{indent * depth}{component.name} [{kind}]")
        for child in component.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def common_ancestor(a, b):
    """Deepest component containing both ``a`` and ``b`` (or None)."""
    ancestors = set()
    cursor = a
    while cursor is not None:
        ancestors.add(cursor)
        cursor = cursor.parent
    cursor = b
    while cursor is not None:
        if cursor in ancestors:
            return cursor
        cursor = cursor.parent
    return None


def depth_of(component):
    """Number of ancestors above ``component`` (top instances are 0)."""
    depth = 0
    cursor = component.parent
    while cursor is not None:
        depth += 1
        cursor = cursor.parent
    return depth
