"""repro — Early SEU fault injection in digital, analog and mixed-signal
circuits: a global flow.

A from-scratch Python reproduction of Leveugle & Ammari, *"Early SEU
Fault Injection in Digital, Analog and Mixed Signal Circuits: a Global
Flow"* (DATE 2004): a mixed-mode behavioural simulator, the paper's
trapezoidal current-pulse fault model with saboteur-based analog
injection and mutant-based digital bit-flip injection, a campaign
engine with golden-run comparison and classification, and the Figure 5
PLL case study.

Quick start::

    from repro import Simulator, PLL, CurrentPulseSaboteur, TrapezoidPulse
    from repro.analysis import analyze_perturbation

    sim = Simulator(dt=1e-9)
    pll = PLL(sim, "pll", preset_locked=True)
    saboteur = CurrentPulseSaboteur(sim, "sab", pll.icp)
    saboteur.schedule(TrapezoidPulse("10mA", "100ps", "300ps", "500ps"), 20e-6)
    vco = sim.probe(pll.vco_out)
    sim.run(40e-6)
    report = analyze_perturbation(vco, 20e-6, 800e-12, pll.t_out_nominal)
    print(report.summary())
"""

from .ams import PLL, BusToVoltage, Digitizer, LogicToVoltage
from .campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    Design,
    run_campaign,
)
from .core import (
    AnalogBlock,
    AnalogNode,
    Component,
    CurrentNode,
    DigitalComponent,
    Logic,
    ReproError,
    Signal,
    Simulator,
    Trace,
)
from .faults import (
    FIGURE6_PULSE,
    FIGURE8_PULSES,
    BitFlip,
    DoubleExponentialPulse,
    MultipleBitUpset,
    ParametricFault,
    SETPulse,
    StuckAt,
    TrapezoidPulse,
    fit_double_exp,
    fit_trapezoid,
)
from .injection import (
    ControlledCurrentSaboteur,
    CurrentInjection,
    CurrentPulseSaboteur,
    DigitalSaboteur,
    InjectionController,
    MutantInjector,
    instrument,
)

__version__ = "1.0.0"

__all__ = [
    "AnalogBlock",
    "AnalogNode",
    "BitFlip",
    "BusToVoltage",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "Component",
    "ControlledCurrentSaboteur",
    "CurrentInjection",
    "CurrentNode",
    "CurrentPulseSaboteur",
    "Design",
    "DigitalComponent",
    "DigitalSaboteur",
    "Digitizer",
    "DoubleExponentialPulse",
    "FIGURE6_PULSE",
    "FIGURE8_PULSES",
    "InjectionController",
    "Logic",
    "LogicToVoltage",
    "MultipleBitUpset",
    "MutantInjector",
    "PLL",
    "ParametricFault",
    "ReproError",
    "SETPulse",
    "Signal",
    "Simulator",
    "StuckAt",
    "Trace",
    "TrapezoidPulse",
    "__version__",
    "fit_double_exp",
    "fit_trapezoid",
    "instrument",
    "run_campaign",
]
