"""Streaming campaign event journal (append-only JSONL).

The span tracer and metrics registry are *end-of-run* instruments:
they buffer in process and export once when asked.  A supervisor on
another host — or a user watching a live campaign — needs the
opposite: a machine-readable stream written **incrementally**, one
line per event, flushed as it happens, so that

* ``campaign watch`` can tail it and render live progress;
* an interrupted campaign still leaves a valid, parseable record of
  everything that happened up to the interrupt (JSONL is
  line-atomic: at worst the final line is truncated, and
  :func:`read_journal` tolerates that); and
* later analysis (failure-rate mining, ML triage, the distributed
  campaign service) consumes typed events instead of scraping logs.

Like the other ``repro.obs`` instruments, the journal is a
process-global singleton (:data:`JOURNAL`) that starts *disabled* and
costs one boolean attribute load per call site while disabled — true
hot paths guard on :attr:`Journal.enabled` and skip the call
entirely.

Every record is one JSON object per line::

    {"v": 1, "seq": 12, "t_wall": 3.0914, "event": "run_finished",
     "index": 7, "status": "ok", "label": "silent", "wall_s": 0.41}

with three envelope fields on every event: ``v`` (the journal schema
version), ``seq`` (a per-journal monotonically increasing sequence
number) and ``t_wall`` (seconds since the journal was opened).  The
``event`` field carries one of :data:`EVENT_TYPES`; all remaining
fields are event-specific (see ``docs/observability.md`` for the full
schema with one example per event type).
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from ..core.errors import ReproError

#: Version of the journal record schema, stamped on every line.
#: v2 = v1 plus the crash-tolerance events (``coordinator_resumed``,
#: ``worker_reconnected``, ``frame_rejected``, ``lease_expired``);
#: every v1 record is also a valid v2 record.
JOURNAL_SCHEMA_VERSION = 2

#: The typed events a campaign emits, in rough lifecycle order.
EVENT_TYPES = (
    "campaign_started",      # name, total, pending, mode, workers
    "batch_planned",         # kind, size, t_ckpt, position, batches
    "run_started",           # index, fault, attempt[, worker_pid]
    "run_finished",          # index, status, label, wall_s, attempts
    "retry",                 # index, attempt, delay_s, status
    "quarantined",           # index, status, attempts
    "worker_spawned",        # pid
    "worker_heartbeat",      # pid, index, phase, age_s
    "worker_died",           # pid, index, exitcode, killed
    "checkpoint_restored",   # index, t_ckpt
    "postmortem_written",    # index, path, status
    "campaign_finished",     # name, execution (stats dict)
    # Distributed campaigns (repro.dist) — additive in journal schema
    # v1: consumers that predate them ignore unknown event types.
    "job_submitted",         # job, name, total, shards
    "shard_leased",          # job, shard, worker, size, lease
    "shard_completed",       # job, shard, worker, rows, merged
    "shard_reassigned",      # job, shard, worker, reason
    # Crash tolerance (journal schema v2): coordinator resume from the
    # durable ledger, worker reconnect/lease re-adoption, and the
    # transport's rejection/expiry decisions.
    "coordinator_resumed",   # jobs, adopted, requeued, ledger
    "worker_reconnected",    # worker, job, shard, token
    "frame_rejected",        # peer, reason
    "lease_expired",         # job, shard, worker, reason
    # Confidence-bounded adaptive sampling (journal schema v3).
    "sample_chunk",          # chunk, round, size, pending, trials
    "sampling_stopped",      # reason, trials, estimate, half_width, skipped
    "stop_sampling",         # job, reason, revoked (distributed early stop)
)


class JournalError(ReproError):
    """Raised for invalid journal usage or unreadable journal files."""


class Journal:
    """An append-only JSONL event stream with flush-on-record.

    :ivar enabled: True while a sink file is open; call sites on hot
        paths guard on this attribute and skip :meth:`emit` entirely.
    :ivar path: the sink path, or None while closed.
    :ivar session_offset: byte offset at which the current session's
        events begin (0 unless the journal was opened with
        ``append=True`` on a non-empty file).
    """

    def __init__(self):
        self.enabled = False
        self.path = None
        self.session_offset = 0
        self._handle = None
        self._seq = 0
        self._epoch = 0.0

    # -- lifecycle ---------------------------------------------------------

    def open(self, path, append=False):
        """Start journalling into ``path`` (truncates unless ``append``).

        Re-opening an already open journal closes the previous sink
        first.  Returns the byte offset at which this session's events
        begin — 0 for a fresh journal, the existing file size when
        appending (the store records this offset so a resume's events
        can be located inside a shared journal file).
        """
        self.close()
        mode = "a" if append else "w"
        self._handle = open(path, mode, buffering=1)
        offset = self._handle.tell() if append else 0
        self.session_offset = offset
        self.path = str(path)
        self._seq = 0
        self._epoch = perf_counter()
        self.enabled = True
        return offset

    def close(self):
        """Stop journalling and close the sink (idempotent)."""
        self.enabled = False
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
        self.path = None

    # -- recording -----------------------------------------------------------

    def emit(self, event, **fields):
        """Append one typed event line and flush it to disk.

        No-op while the journal is closed, so cold call sites may call
        unconditionally; hot paths should guard on :attr:`enabled`.

        :raises JournalError: for event types outside
            :data:`EVENT_TYPES` (catching schema drift at the emit
            site, not in a consumer months later).
        """
        if not self.enabled:
            return
        if event not in EVENT_TYPES:
            raise JournalError(
                f"unknown journal event type {event!r};"
                f" expected one of {EVENT_TYPES}"
            )
        record = {
            "v": JOURNAL_SCHEMA_VERSION,
            "seq": self._seq,
            "t_wall": round(perf_counter() - self._epoch, 6),
            "event": event,
        }
        record.update(fields)
        self._seq += 1
        # One write + flush per record: the line either lands whole or
        # (on a mid-write interrupt) is the final, truncated line that
        # read_journal() skips.  json.dumps with default=str so odd
        # payload values degrade to strings instead of killing the run.
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()


#: The process-global journal instrumented modules record into.
JOURNAL = Journal()


def open_journal(path, append=False):
    """Open the global journal; returns the session's byte offset."""
    return JOURNAL.open(path, append=append)


def close_journal():
    """Close the global journal."""
    JOURNAL.close()


def enabled():
    """True while the global journal has an open sink."""
    return JOURNAL.enabled


def emit(event, **fields):
    """Global-journal :meth:`Journal.emit` shortcut."""
    JOURNAL.emit(event, **fields)


# -- reading -----------------------------------------------------------------


def read_journal(path, offset=0):
    """Yield parsed event dicts from a journal file.

    Tolerant of the one failure mode an interrupt can produce: a
    truncated (or otherwise unparseable) **final** line is skipped
    silently.  A malformed line *followed by* well-formed ones means
    the file is not a journal — that raises.

    :param offset: byte offset to start reading from (a stored
        resume offset).
    :raises JournalError: on malformed non-final lines.
    """
    with open(path) as handle:
        if offset:
            handle.seek(offset)
        pending_error = None
        for line in handle:
            if pending_error is not None:
                raise JournalError(pending_error)
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                pending_error = (
                    f"malformed journal line in {path}: {line[:80]!r}"
                )


def tail_journal(path, position=0):
    """One non-blocking poll of a growing journal file.

    Returns ``(events, new_position)`` where ``events`` are the
    complete records appended since ``position``.  A partial final
    line (a writer mid-record) is left for the next poll — the
    returned position never advances past the last complete line, so
    ``campaign watch`` can poll in a loop without ever double-reading
    or dropping an event.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return [], position
    if size <= position:
        return [], position
    with open(path, "rb") as handle:
        handle.seek(position)
        chunk = handle.read(size - position)
    text = chunk.decode("utf-8", errors="replace")
    end = text.rfind("\n")
    if end < 0:
        return [], position
    events = []
    for line in text[: end + 1].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    consumed = len(text[: end + 1].encode("utf-8"))
    return events, position + consumed
