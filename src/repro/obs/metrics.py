"""Counter and histogram metrics with near-zero disabled overhead.

Campaigns over millions of faults need the same run telemetry that
emulation-based environments (DAVOS, OpenSEA) treat as first-class
output: how many kernel events were dispatched, how long each faulty
run took, how often a warm start actually hit a checkpoint.  This
module provides that as a process-global :class:`MetricsRegistry` of
named :class:`Counter` and :class:`Histogram` instruments.

The design constraint is the *disabled* cost, not the enabled one:
instrumented hot paths (the kernel event loop, the analog solver) must
pay nothing when nobody asked for metrics.  Two rules achieve that:

* hot code guards on the single boolean :attr:`MetricsRegistry.enabled`
  (exposed as :func:`enabled`) and takes the uninstrumented path when
  it is False — no dict lookups, no dead calls;
* where a count already exists for free (the kernel's
  ``events_executed`` counter), instrumentation records *deltas* at
  coarse boundaries (once per ``Simulator.run`` call) instead of
  touching the per-event loop at all.

Instruments are created on first use and live until :func:`reset`.
"""

from __future__ import annotations

from ..core.errors import ReproError


class MetricsError(ReproError):
    """Raised for invalid metric names or values."""


class Counter:
    """A monotonically increasing named count.

    :ivar name: registry key.
    :ivar value: current count.
    """

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        """Add ``n`` (default 1) to the count."""
        self.value += n

    def __repr__(self):
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """Summary statistics over recorded samples.

    Keeps count, sum, min and max — enough for mean/rate reporting
    without unbounded memory, which matters for per-fault-run samples
    in million-fault campaigns.

    :ivar name: registry key.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def record(self, value):
        """Fold one sample into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        """Arithmetic mean of the samples (None when empty)."""
        return self.total / self.count if self.count else None

    def summary(self):
        """Plain-dict rendering: count, total, min, max, mean."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self):
        return f"<Histogram {self.name} n={self.count} mean={self.mean}>"


class MetricsRegistry:
    """Named instruments plus the global enabled flag.

    All mutating helpers (:meth:`inc`, :meth:`observe`) are no-ops
    while :attr:`enabled` is False, so call sites that cannot afford
    even a dict lookup can guard on the attribute themselves and
    everything else can call unconditionally.

    :ivar enabled: master switch; start disabled.
    """

    def __init__(self):
        self.enabled = False
        self._counters = {}
        self._histograms = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self):
        """Turn metric recording on."""
        self.enabled = True

    def disable(self):
        """Turn metric recording off (instruments keep their values)."""
        self.enabled = False

    def reset(self):
        """Drop every instrument and its value (flag unchanged)."""
        self._counters.clear()
        self._histograms.clear()

    # -- instruments --------------------------------------------------------

    def counter(self, name):
        """The :class:`Counter` called ``name``, created on first use."""
        if not name or not isinstance(name, str):
            raise MetricsError(f"invalid metric name {name!r}")
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def histogram(self, name):
        """The :class:`Histogram` called ``name``, created on first use."""
        if not name or not isinstance(name, str):
            raise MetricsError(f"invalid metric name {name!r}")
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def inc(self, name, n=1):
        """Increment counter ``name`` by ``n`` — no-op while disabled."""
        if self.enabled:
            self.counter(name).inc(n)

    def observe(self, name, value):
        """Record ``value`` into histogram ``name`` — no-op while disabled."""
        if self.enabled:
            self.histogram(name).record(value)

    # -- export --------------------------------------------------------------

    def snapshot(self):
        """JSON-ready dict of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }


#: The process-global registry every instrumented module records into.
REGISTRY = MetricsRegistry()


def enable():
    """Enable the global registry."""
    REGISTRY.enable()


def disable():
    """Disable the global registry."""
    REGISTRY.disable()


def enabled():
    """True when the global registry is recording."""
    return REGISTRY.enabled


def reset():
    """Clear every instrument in the global registry."""
    REGISTRY.reset()


def counter(name):
    """Global-registry :class:`Counter` accessor."""
    return REGISTRY.counter(name)


def histogram(name):
    """Global-registry :class:`Histogram` accessor."""
    return REGISTRY.histogram(name)


def inc(name, n=1):
    """Increment a global counter (no-op while disabled)."""
    REGISTRY.inc(name, n)


def observe(name, value):
    """Record a global histogram sample (no-op while disabled)."""
    REGISTRY.observe(name, value)


def snapshot():
    """Snapshot of the global registry."""
    return REGISTRY.snapshot()
