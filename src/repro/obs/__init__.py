"""Observability: span tracing and metrics for kernel and campaigns.

``repro.obs`` makes campaign execution inspectable: the kernel records
event/step deltas and checkpoint-restore timings, the campaign runner
records per-fault spans, classification outcomes and warm-start
hit/miss counters, and the CLI exposes everything through ``--trace``
and ``--metrics-out``.  Both instruments are process-global singletons
that start *disabled* and cost (near) nothing until enabled::

    from repro import obs

    obs.enable()
    ...  # run a campaign
    print(obs.metrics.snapshot()["counters"]["campaign.runs"])
    obs.tracer.TRACER.save("spans.json")

See ``docs/observability.md`` for the full instrument inventory.
"""

from . import metrics, tracer
from .metrics import Counter, Histogram, MetricsRegistry
from .tracer import Span, Tracer


def enable(enable_metrics=True, enable_tracing=True):
    """Switch on the global metrics registry and/or tracer."""
    if enable_metrics:
        metrics.enable()
    if enable_tracing:
        tracer.enable()


def disable():
    """Switch off both global instruments (collected data is kept)."""
    metrics.disable()
    tracer.disable()


def enabled():
    """True when either global instrument is recording."""
    return metrics.enabled() or tracer.enabled()


def reset():
    """Clear both global instruments' collected data."""
    metrics.reset()
    tracer.reset()


__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "metrics",
    "reset",
    "tracer",
]
