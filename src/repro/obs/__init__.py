"""Observability: tracing, metrics, event journal and flight recorder.

``repro.obs`` makes campaign execution inspectable: the kernel records
event/step deltas and checkpoint-restore timings, the campaign runner
records per-fault spans, classification outcomes and warm-start
hit/miss counters, and the CLI exposes everything through ``--trace``
and ``--metrics-out``.  Both instruments are process-global singletons
that start *disabled* and cost (near) nothing until enabled::

    from repro import obs

    obs.enable()
    ...  # run a campaign
    print(obs.metrics.snapshot()["counters"]["campaign.runs"])
    obs.tracer.TRACER.save("spans.json")

Two streaming instruments complement the buffered pair:
:mod:`repro.obs.journal` appends typed campaign events to a JSONL
file as they happen (the stream ``campaign watch`` tails), and
:mod:`repro.obs.flightrec` keeps a bounded ring of recent solver
steps per faulty run and dumps a post-mortem file when a run dies.

See ``docs/observability.md`` for the full instrument inventory.
"""

from . import flightrec, journal, metrics, tracer
from .flightrec import FlightRecorder
from .journal import Journal
from .metrics import Counter, Histogram, MetricsRegistry
from .tracer import Span, Tracer


def enable(enable_metrics=True, enable_tracing=True):
    """Switch on the global metrics registry and/or tracer."""
    if enable_metrics:
        metrics.enable()
    if enable_tracing:
        tracer.enable()


def disable():
    """Switch off both global instruments (collected data is kept)."""
    metrics.disable()
    tracer.disable()


def enabled():
    """True when either global instrument is recording."""
    return metrics.enabled() or tracer.enabled()


def reset():
    """Clear both global instruments' collected data."""
    metrics.reset()
    tracer.reset()


__all__ = [
    "Counter",
    "FlightRecorder",
    "Histogram",
    "Journal",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "flightrec",
    "journal",
    "metrics",
    "reset",
    "tracer",
]
