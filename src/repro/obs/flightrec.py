"""Failure flight recorder: bounded per-run history + post-mortems.

When a faulty run dies — budget timeout, numerical divergence, a
crashed worker — the classification row says *that* it died but not
*what the simulation looked like* when it did.  The flight recorder
fills that gap the way an aircraft FDR does: a bounded ring buffer of
recent solver steps rides along with the run at negligible cost, and
on failure its contents are dumped — together with the live analog
node values, the pending event-queue tail, the active fault's
parameters and the armed budget's state — to a per-fault post-mortem
JSON file that the campaign store references from the run's row.

The recorder follows the same opt-in discipline as the numerical
guard: ``sim.analog.recorder`` is ``None`` by default (one attribute
load per solver step), and the campaign runner arms a fresh recorder
per faulty run only when a post-mortem directory is configured.
Within an armed run, recording is strided (every ``stride``-th solver
step) and each entry is a flat tuple append — no dict churn on the
step path.

Post-mortems are written atomically (temp file + ``os.replace``) so a
second interrupt can never leave a truncated JSON body, and their
paths are deterministic (:func:`postmortem_path`) so the parent
process can locate a post-mortem a now-dead worker wrote.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

from ..core.errors import ReproError

#: Post-mortem file schema version.
POSTMORTEM_VERSION = 1

#: Default ring capacity (recorded solver steps retained).
DEFAULT_CAPACITY = 64

#: Default solver-step stride between ring entries.
DEFAULT_STRIDE = 8

#: Pending events included in the event-queue tail of a dump.
QUEUE_TAIL_EVENTS = 16

#: Trailing samples per probe trace included in a dump.
TRACE_TAIL_SAMPLES = 16


def postmortem_path(directory, index):
    """The deterministic post-mortem path for fault ``index``.

    Deterministic on purpose: a SIGKILLed worker cannot report where
    it would have written, so both the in-run recorder and the
    supervisor's death report target the same name, and the store can
    reference it without any cross-process handshake.
    """
    return os.path.join(str(directory), f"fault_{index:05d}.postmortem.json")


def write_postmortem(directory, index, payload):
    """Atomically write one post-mortem JSON file; returns its path."""
    os.makedirs(str(directory), exist_ok=True)
    path = postmortem_path(directory, index)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    os.replace(tmp, path)
    return path


class FlightRecorder:
    """Bounded in-run history of analog solver steps.

    Installed on an :class:`~repro.core.kernel.AnalogSolver` via its
    ``recorder`` attribute; the solver calls :meth:`record_step` after
    each step.  Every ``stride``-th call appends ``(t, v0, v1, ...)``
    — one float per registered analog node, in a stable order captured
    on first use — into a ring of ``capacity`` entries.

    :param capacity: ring size (entries retained).
    :param stride: solver steps between recorded entries (>= 1).
    """

    __slots__ = ("capacity", "stride", "_countdown", "_ring", "_head",
                 "_node_names", "_nodes", "steps_seen")

    def __init__(self, capacity=DEFAULT_CAPACITY, stride=DEFAULT_STRIDE):
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity!r}")
        if stride < 1:
            raise ReproError(f"stride must be >= 1, got {stride!r}")
        self.capacity = int(capacity)
        self.stride = int(stride)
        self._countdown = 1          # record the first step immediately
        self._ring = []
        self._head = 0
        self._node_names = None
        self._nodes = None
        self.steps_seen = 0

    def _bind(self, sim):
        names = sorted(sim.nodes)
        self._node_names = names
        self._nodes = [sim.nodes[name] for name in names]

    def record_step(self, sim, t):
        """Solver hook: fold one step into the ring (strided)."""
        self.steps_seen += 1
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.stride
        if self._nodes is None:
            self._bind(sim)
        entry = (t,) + tuple(node.v for node in self._nodes)
        if len(self._ring) < self.capacity:
            self._ring.append(entry)
        else:
            self._ring[self._head] = entry
            self._head = (self._head + 1) % self.capacity

    def entries(self):
        """Recorded ``(t, *values)`` tuples, oldest first."""
        return self._ring[self._head:] + self._ring[: self._head]

    # -- dumping -----------------------------------------------------------

    def snapshot(self, sim):
        """The recorder's JSON-ready view of a (possibly dying) sim.

        Captured pieces: the ring (recent strided solver steps), the
        node values *now*, the next pending events, and the trailing
        samples of every kernel trace.  All reads are defensive — a
        diverged sim may hold NaN/Inf values, which serialize as
        strings via ``default=str``.
        """
        names = self._node_names
        if names is None and sim is not None:
            self._bind(sim)
            names = self._node_names
        queue_tail = []
        if sim is not None:
            for event in sorted(sim._queue._heap)[:QUEUE_TAIL_EVENTS]:
                if event.cancelled:
                    continue
                callback = event.callback
                queue_tail.append({
                    "t": event.time,
                    "priority": event.priority,
                    "callback": getattr(
                        callback, "__qualname__",
                        getattr(callback, "__name__", repr(callback)),
                    ),
                })
        trace_tails = {}
        if sim is not None:
            for trace in sim._traces:
                times = trace._times.raw_list()[-TRACE_TAIL_SAMPLES:]
                values = trace.raw_values[-TRACE_TAIL_SAMPLES:]
                trace_tails[trace.name] = [
                    [float(t), value] for t, value in zip(times, values)
                ]
        return {
            "t_now": sim.now if sim is not None else None,
            "node_names": list(names or ()),
            "nodes_now": (
                {name: node.v for name, node in sim.nodes.items()}
                if sim is not None else {}
            ),
            "solver_steps": [list(entry) for entry in self.entries()],
            "solver_stride": self.stride,
            "steps_seen": self.steps_seen,
            "event_queue_tail": queue_tail,
            "trace_tails": trace_tails,
        }


def build_postmortem(sim, recorder, fault=None, index=None, status=None,
                     error=None, budget=None, attempt=None):
    """Assemble the full post-mortem payload for one failed run."""
    from ..store.serialize import fault_to_dict

    payload = {
        "postmortem_version": POSTMORTEM_VERSION,
        "written_at_wall": perf_counter(),
        "index": index,
        "status": status,
        "attempt": attempt,
        "error": None if error is None else (
            f"{type(error).__name__}: {error}"
        ),
        "fault": None,
        "budget": None,
    }
    if fault is not None:
        payload["fault"] = {"describe": fault.describe()}
        try:
            payload["fault"]["descriptor"] = fault_to_dict(fault)
        except Exception:
            pass  # exotic fault objects still get the describe() line
    if budget is not None:
        payload["budget"] = {
            "describe": budget.describe(),
            "max_wall_s": budget.max_wall_s,
            "max_events": budget.max_events,
            "max_steps": budget.max_steps,
        }
    recorder = recorder or FlightRecorder()
    payload["recorder"] = recorder.snapshot(sim)
    return payload


def write_worker_postmortem(directory, index, fault=None, status=None,
                            error=None, pid=None, exitcode=None,
                            last_heartbeat=None):
    """Post-mortem for a run whose worker died without reporting.

    A SIGKILLed worker leaves no in-process recorder to dump, so the
    supervising parent writes what it knows: the worker's identity and
    exit code, the fault it was running, and the last heartbeat it
    sent (which carries the phase the run was in).  Returns the path.
    """
    payload = {
        "postmortem_version": POSTMORTEM_VERSION,
        "kind": "worker_death",
        "index": index,
        "status": status,
        "error": error,
        "fault": None if fault is None else {"describe": fault.describe()},
        "worker": {"pid": pid, "exitcode": exitcode},
        "last_heartbeat": last_heartbeat,
    }
    return write_postmortem(directory, index, payload)
