"""A lightweight span tracer for kernel and campaign hot paths.

A *span* is a named wall-clock interval with free-form attributes:
one golden run, one checkpoint restore, one faulty run.  The global
:data:`TRACER` collects spans in memory and exports them as a JSON
list (and as the Chrome ``chrome://tracing`` / Perfetto event format,
so campaign timelines can be inspected visually).

Like :mod:`repro.obs.metrics`, the tracer is built around the disabled
case: :meth:`Tracer.span` returns a shared no-op context manager while
disabled, and call sites on true hot paths should guard on
:attr:`Tracer.enabled` and skip the call entirely.
"""

from __future__ import annotations

import json
import os
from time import perf_counter


def atomic_write_json(path, payload, indent=2):
    """Write ``payload`` as JSON via a same-directory temp + rename.

    ``os.replace`` is atomic on POSIX and Windows, so an interrupt
    mid-write leaves either the previous file or the complete new one
    — never truncated JSON.  Used for every end-of-run observability
    artifact (trace spans, metrics snapshots, post-mortems).
    """
    path = str(path)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=indent, default=str)
    os.replace(tmp, path)


class Span:
    """One completed named interval.

    :ivar name: span name (dotted, e.g. ``"campaign.fault_run"``).
    :ivar t0: start, in seconds since the tracer's epoch.
    :ivar t1: end, in seconds since the tracer's epoch.
    :ivar attrs: free-form attributes attached at creation or via
        :meth:`_OpenSpan.annotate`.
    """

    __slots__ = ("name", "t0", "t1", "attrs")

    def __init__(self, name, t0, t1, attrs):
        self.name = name
        self.t0 = t0
        self.t1 = t1
        self.attrs = attrs

    @property
    def duration(self):
        """Span length in seconds."""
        return self.t1 - self.t0

    def to_dict(self):
        """JSON-ready rendering."""
        return {
            "name": self.name,
            "start_s": self.t0,
            "duration_s": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self):
        return f"<Span {self.name} {self.duration * 1e3:.3f}ms>"


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False

    def annotate(self, **_attrs):
        """Discard attributes (tracing is disabled)."""


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("tracer", "name", "attrs", "t0")

    def __init__(self, tracer, name, attrs):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        self.t0 = perf_counter() - self.tracer.epoch
        return self

    def __exit__(self, exc_type, _exc, _tb):
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._record(
            Span(self.name, self.t0, perf_counter() - self.tracer.epoch,
                 self.attrs)
        )
        return False

    def annotate(self, **attrs):
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)


class Tracer:
    """Collects :class:`Span` objects while enabled.

    :ivar enabled: master switch; start disabled.
    :ivar spans: completed spans, in completion order.
    :ivar epoch: ``perf_counter`` origin for span timestamps.
    """

    def __init__(self):
        self.enabled = False
        self.spans = []
        self.epoch = perf_counter()

    # -- lifecycle ---------------------------------------------------------

    def enable(self):
        """Turn span recording on."""
        self.enabled = True

    def disable(self):
        """Turn span recording off (collected spans are kept)."""
        self.enabled = False

    def reset(self):
        """Drop collected spans and restart the epoch."""
        self.spans = []
        self.epoch = perf_counter()

    # -- recording -----------------------------------------------------------

    def span(self, name, **attrs):
        """Context manager timing one named interval.

        While disabled this returns a shared no-op object, so wrapping
        cold paths unconditionally is safe; hot paths should guard on
        :attr:`enabled` instead.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _OpenSpan(self, name, attrs)

    def _record(self, span):
        self.spans.append(span)

    # -- export --------------------------------------------------------------

    def to_dicts(self):
        """Every span as a JSON-ready dict."""
        return [span.to_dict() for span in self.spans]

    def to_chrome_trace(self):
        """Spans in the Chrome/Perfetto ``traceEvents`` format."""
        return {
            "traceEvents": [
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.t0 * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": span.attrs,
                }
                for span in self.spans
            ]
        }

    def save(self, path, chrome=False):
        """Write collected spans to ``path`` as JSON (atomically)."""
        payload = self.to_chrome_trace() if chrome else self.to_dicts()
        atomic_write_json(path, payload)


#: The process-global tracer instrumented modules record into.
TRACER = Tracer()


def enable():
    """Enable the global tracer."""
    TRACER.enable()


def disable():
    """Disable the global tracer."""
    TRACER.disable()


def enabled():
    """True when the global tracer is recording."""
    return TRACER.enabled


def reset():
    """Drop the global tracer's spans."""
    TRACER.reset()


def span(name, **attrs):
    """Global-tracer :meth:`Tracer.span` shortcut."""
    return TRACER.span(name, **attrs)
