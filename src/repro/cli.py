"""Command-line interface.

File-driven access to the flow, so campaigns can run from a shell or a
Makefile without writing Python::

    python -m repro types
    python -m repro info design.json
    python -m repro simulate design.json --until 1us --vcd out.vcd
    python -m repro campaign design.json faults.json --report report.txt

The fault file is a JSON list of fault descriptors::

    [
      {"kind": "bitflip", "target": "top/counter.q[0]", "time": "35ns"},
      {"kind": "mbu", "targets": ["a", "b"], "time": "35ns"},
      {"kind": "set", "target": "clk", "time": "50ns", "width": "2ns"},
      {"kind": "stuck", "target": "clk", "value": "0", "t_start": "50ns"},
      {"kind": "current", "node": "pll.icp", "time": "40us",
       "pulse": {"pa": "10mA", "rt": "100ps", "ft": "300ps", "pw": "500ps"}},
      {"kind": "parametric", "component": "pll/vco", "attribute": "kvco",
       "factor": 1.2}
    ]
"""

from __future__ import annotations

import argparse
import json
import sys

from .campaign import CampaignSpec, full_report, run_campaign, to_csv
from .core.errors import ReproError
from .core.units import parse_quantity
from .core.vcd import save_vcd
from .faults import (
    BitFlip,
    DoubleExponentialPulse,
    MultipleBitUpset,
    ParametricFault,
    SETPulse,
    StuckAt,
    TrapezoidPulse,
)
from .injection import CurrentInjection
from .netlist import design_factory, known_types, load_file, load_text_file


def load_netlist(path):
    """Read a netlist file, dispatching on format.

    ``.json`` files use the JSON schema; anything else is parsed as
    the ``.rcir`` text format.
    """
    if path.endswith(".json"):
        return load_file(path)
    return load_text_file(path)


def fault_from_dict(data):
    """Build a fault-model instance from a JSON descriptor.

    :raises ReproError: for unknown kinds or malformed descriptors.
    """
    kind = data.get("kind")
    try:
        if kind == "bitflip":
            return BitFlip(data["target"], data["time"])
        if kind == "mbu":
            return MultipleBitUpset(data["targets"], data["time"])
        if kind == "set":
            return SETPulse(data["target"], data["time"], data["width"],
                            value=data.get("value"))
        if kind == "stuck":
            return StuckAt(data["target"], data["value"],
                           t_start=data.get("t_start", 0.0),
                           t_end=data.get("t_end"))
        if kind == "current":
            pulse = data["pulse"]
            if "tau_r" in pulse:
                transient = DoubleExponentialPulse(
                    pulse["i0"], pulse["tau_r"], pulse["tau_f"]
                )
            else:
                transient = TrapezoidPulse(
                    pulse["pa"], pulse["rt"], pulse["ft"], pulse["pw"]
                )
            return CurrentInjection(transient, data["node"], data["time"])
        if kind == "parametric":
            return ParametricFault(
                data["component"], data["attribute"],
                factor=data.get("factor"), delta=data.get("delta"),
                t_start=data.get("t_start", 0.0), t_end=data.get("t_end"),
            )
    except KeyError as exc:
        raise ReproError(
            f"fault descriptor {data!r} is missing key {exc}"
        ) from exc
    raise ReproError(f"unknown fault kind {kind!r}")


def load_faults(path):
    """Read a JSON fault list file."""
    with open(path) as handle:
        entries = json.load(handle)
    if not isinstance(entries, list):
        raise ReproError("fault file must contain a JSON list")
    return [fault_from_dict(entry) for entry in entries]


# -- subcommands -----------------------------------------------------------


def cmd_types(_args):
    """List the component types a netlist may instantiate."""
    for name in known_types():
        print(name)
    return 0


def cmd_info(args):
    """Summarise a netlist file."""
    netlist = load_netlist(args.netlist)
    print(f"design   : {netlist.name}")
    print(f"dt       : {netlist.dt}")
    print(f"signals  : {', '.join(s.name for s in netlist.signals) or '-'}")
    print(f"nodes    : "
          f"{', '.join(f'{n.name}({n.kind})' for n in netlist.nodes) or '-'}")
    print(f"buses    : "
          f"{', '.join(f'{b.name}[{b.width}]' for b in netlist.buses) or '-'}")
    print("instances:")
    for inst in netlist.instances:
        ports = ", ".join(f"{p}={n}" for p, n in inst.ports.items())
        print(f"  {inst.name}: {inst.type}({ports})")
    print(f"probes   : {', '.join(netlist.probes) or '-'}")
    print(f"outputs  : {', '.join(netlist.outputs) or '-'}")
    return 0


def cmd_simulate(args):
    """Elaborate and run a netlist, optionally dumping waves."""
    netlist = load_netlist(args.netlist)
    design = design_factory(netlist)()
    until = parse_quantity(args.until, expect_unit="s")
    design.sim.run(until)
    print(f"simulated {until * 1e6:g} us: "
          f"{design.sim.events_executed} events, "
          f"{design.sim.analog_steps} analog steps")
    for name in sorted(design.probes):
        trace = design.probes[name]
        print(f"  {name}: {len(trace)} samples, final = "
              f"{trace.raw_values[-1] if len(trace) else '-'}")
    if args.vcd:
        save_vcd(design.probes, args.vcd)
        print(f"wrote {args.vcd}")
    return 0


def cmd_campaign(args):
    """Run a fault-injection campaign from netlist + fault files."""
    netlist = load_netlist(args.netlist)
    faults = load_faults(args.faults)
    if not netlist.outputs:
        raise ReproError(
            "netlist declares no outputs; campaigns need at least one"
        )
    spec = CampaignSpec(
        name=args.name or netlist.name,
        faults=faults,
        t_end=parse_quantity(args.until, expect_unit="s"),
        outputs=list(netlist.outputs),
        analog_tolerance=args.analog_tolerance,
        compare_from=args.compare_from,
    )
    result = run_campaign(
        design_factory(netlist),
        spec,
        workers=args.workers,
        warm_start=args.warm_start,
        checkpoint_every=(
            parse_quantity(args.checkpoint_every, expect_unit="s")
            if args.checkpoint_every
            else None
        ),
        max_checkpoints=args.max_checkpoints,
        progress=(
            (lambda i, n, f: print(f"run {i + 1}/{n}: {f.describe()}",
                                   file=sys.stderr))
            if args.verbose
            else None
        ),
    )
    report = full_report(result, listing_limit=args.listing_limit)
    print(report)
    if args.verbose and result.execution:
        ex = result.execution
        print(
            f"execution: {ex['mode']} start, {ex['checkpoints']} "
            f"checkpoints, {ex['kernel_events']} kernel events",
            file=sys.stderr,
        )
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report + "\n")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(to_csv(result))
        print(f"wrote {args.csv}")
    errors = sum(1 for r in result if r.classification.is_error())
    return 1 if args.fail_on_error and errors else 0


def build_parser():
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Early SEU fault injection in digital, analog and "
        "mixed-signal circuits (DATE 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_types = sub.add_parser("types", help="list netlist component types")
    p_types.set_defaults(func=cmd_types)

    p_info = sub.add_parser("info", help="summarise a netlist file")
    p_info.add_argument("netlist")
    p_info.set_defaults(func=cmd_info)

    p_sim = sub.add_parser("simulate", help="run a netlist")
    p_sim.add_argument("netlist")
    p_sim.add_argument("--until", default="1us",
                       help="simulated duration (default 1us)")
    p_sim.add_argument("--vcd", help="write probe waves to a VCD file")
    p_sim.set_defaults(func=cmd_simulate)

    p_camp = sub.add_parser("campaign", help="run an injection campaign")
    p_camp.add_argument("netlist")
    p_camp.add_argument("faults", help="JSON fault list file")
    p_camp.add_argument("--until", default="1us")
    p_camp.add_argument("--name", default=None)
    p_camp.add_argument("--analog-tolerance", type=float, default=0.01)
    p_camp.add_argument("--compare-from", type=float, default=None)
    p_camp.add_argument("--report", help="also write the report to a file")
    p_camp.add_argument("--csv", help="write per-run results as CSV")
    p_camp.add_argument("--listing-limit", type=int, default=20)
    p_camp.add_argument("--workers", type=int, default=None,
                        help="run faulty simulations in N processes")
    p_camp.add_argument("--warm-start", action="store_true",
                        help="restore golden checkpoints instead of "
                             "re-simulating each fault from t=0")
    p_camp.add_argument("--checkpoint-every", default=None,
                        help="checkpoint granularity for --warm-start, "
                             "e.g. '500ns' (default: per injection time)")
    p_camp.add_argument("--max-checkpoints", type=int, default=None,
                        help="ceiling on retained golden checkpoints")
    p_camp.add_argument("--verbose", action="store_true")
    p_camp.add_argument("--fail-on-error", action="store_true",
                        help="exit 1 when any fault caused an error")
    p_camp.set_defaults(func=cmd_campaign)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
