"""Command-line interface.

File-driven access to the flow, so campaigns can run from a shell or a
Makefile without writing Python::

    python -m repro types
    python -m repro info design.json
    python -m repro simulate design.json --until 1us --vcd out.vcd
    python -m repro campaign run design.json faults.json --report report.txt

Campaigns can be recorded into a persistent SQLite store as they run,
then resumed after an interruption or queried without re-simulating::

    python -m repro campaign run design.json faults.json --store camp.db
    python -m repro campaign run design.json faults.json --resume camp.db
    python -m repro campaign status --from-db camp.db
    python -m repro campaign report --from-db camp.db --dictionary

(The pre-store spelling ``repro campaign design.json faults.json`` is
still accepted and behaves like ``campaign run``.)

Observability: ``--trace spans.json`` records kernel/campaign spans,
``--metrics-out metrics.json`` dumps the counter/histogram registry,
``--journal events.jsonl`` streams typed campaign events as they
happen (``campaign watch camp.db`` tails them live), and
``--postmortem-dir dumps/`` writes a flight-recorder post-mortem per
failed run.  An interactive run shows a live progress line with
runs/sec and an ETA (force it with ``--progress``).

The fault file is a JSON list of fault descriptors::

    [
      {"kind": "bitflip", "target": "top/counter.q[0]", "time": "35ns"},
      {"kind": "mbu", "targets": ["a", "b"], "time": "35ns"},
      {"kind": "set", "target": "clk", "time": "50ns", "width": "2ns"},
      {"kind": "stuck", "target": "clk", "value": "0", "t_start": "50ns"},
      {"kind": "current", "node": "pll.icp", "time": "40us",
       "pulse": {"pa": "10mA", "rt": "100ps", "ft": "300ps", "pw": "500ps"}},
      {"kind": "parametric", "component": "pll/vco", "attribute": "kvco",
       "factor": 1.2}
    ]

Exit codes: 0 success, 1 ``--fail-on-error`` tripped, 2 usage or file
errors, 3 one or more fault runs raised simulation errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import deque
from datetime import datetime, timezone
from time import monotonic, sleep

from .campaign import (
    CampaignSpec,
    FaultDictionary,
    full_report,
    run_campaign,
    to_csv,
)
from .core.errors import ReproError
from .core.units import parse_quantity
from .core.vcd import save_vcd
from .netlist import design_factory, known_types, load_file, load_text_file
from .obs import journal as obs_journal
from .obs import metrics as obs_metrics
from .obs import tracer as obs_tracer
from .obs.tracer import atomic_write_json
from .store import CampaignStore
from .store.serialize import fault_from_dict


def load_netlist(path):
    """Read a netlist file, dispatching on format.

    ``.json`` files use the JSON schema; anything else is parsed as
    the ``.rcir`` text format.
    """
    if path.endswith(".json"):
        return load_file(path)
    return load_text_file(path)


def load_faults(path):
    """Read a JSON fault list file."""
    with open(path) as handle:
        entries = json.load(handle)
    if not isinstance(entries, list):
        raise ReproError("fault file must contain a JSON list")
    return [fault_from_dict(entry) for entry in entries]


class ProgressLine:
    """A single live stderr line: completed count, rate, ETA.

    The campaign runner invokes it as its ``progress`` callback;
    ``index`` counts already-completed (or started) runs, so the rate
    estimate is simply ``index / elapsed``.
    """

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self.t_start = monotonic()
        self._dirty = False

    def __call__(self, index, total, fault):
        """Render progress for run ``index`` of ``total``.

        Guarded against the degenerate inputs a first callback (or an
        empty campaign) produces: ``total == 0``, zero elapsed time and
        zero rate all render placeholders instead of raising or
        printing ``inf``/``nan``.
        """
        elapsed = monotonic() - self.t_start
        if index > 0 and elapsed > 0:
            runs_per_s = index / elapsed
            eta = f"{(total - index) / runs_per_s:4.0f}s"
            rate = f"{runs_per_s:6.2f}"
        else:
            rate, eta = " " * 6, "   ?s"
        percent = f"{index / total:4.0%}" if total > 0 else "   -"
        line = (
            f"\r[{index + 1:>4}/{total}] {percent}"
            f" {rate} runs/s  eta {eta}  {fault.describe():<60.60s}"
        )
        self.stream.write(line)
        self.stream.flush()
        self._dirty = True

    def finish(self):
        """Terminate the live line (idempotent)."""
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


# -- subcommands -----------------------------------------------------------


def cmd_types(_args):
    """List the component types a netlist may instantiate."""
    for name in known_types():
        print(name)
    return 0


def cmd_info(args):
    """Summarise a netlist file."""
    netlist = load_netlist(args.netlist)
    print(f"design   : {netlist.name}")
    print(f"dt       : {netlist.dt}")
    print(f"signals  : {', '.join(s.name for s in netlist.signals) or '-'}")
    print(f"nodes    : "
          f"{', '.join(f'{n.name}({n.kind})' for n in netlist.nodes) or '-'}")
    print(f"buses    : "
          f"{', '.join(f'{b.name}[{b.width}]' for b in netlist.buses) or '-'}")
    print("instances:")
    for inst in netlist.instances:
        ports = ", ".join(f"{p}={n}" for p, n in inst.ports.items())
        print(f"  {inst.name}: {inst.type}({ports})")
    print(f"probes   : {', '.join(netlist.probes) or '-'}")
    print(f"outputs  : {', '.join(netlist.outputs) or '-'}")
    return 0


def cmd_simulate(args):
    """Elaborate and run a netlist, optionally dumping waves."""
    netlist = load_netlist(args.netlist)
    design = design_factory(netlist)()
    until = parse_quantity(args.until, expect_unit="s")
    design.sim.run(until)
    print(f"simulated {until * 1e6:g} us: "
          f"{design.sim.events_executed} events, "
          f"{design.sim.analog_steps} analog steps")
    for name in sorted(design.probes):
        trace = design.probes[name]
        print(f"  {name}: {len(trace)} samples, final = "
              f"{trace.raw_values[-1] if len(trace) else '-'}")
    if args.vcd:
        save_vcd(design.probes, args.vcd)
        print(f"wrote {args.vcd}")
    return 0


def _write_observability(args):
    """Dump trace spans / metrics snapshots the run collected.

    Both artifacts are written atomically (temp file + rename), so an
    interrupt mid-dump leaves the previous file or the complete new
    one, never truncated JSON.
    """
    if getattr(args, "trace", None):
        obs_tracer.TRACER.save(args.trace)
        print(f"wrote {args.trace}", file=sys.stderr)
    if getattr(args, "metrics_out", None):
        atomic_write_json(args.metrics_out, obs_metrics.snapshot())
        print(f"wrote {args.metrics_out}", file=sys.stderr)


def cmd_campaign_run(args):
    """Run a fault-injection campaign from netlist + fault files."""
    netlist = load_netlist(args.netlist)
    faults = load_faults(args.faults)
    if not netlist.outputs:
        raise ReproError(
            "netlist declares no outputs; campaigns need at least one"
        )
    spec = CampaignSpec(
        name=args.name or netlist.name,
        faults=faults,
        t_end=parse_quantity(args.until, expect_unit="s"),
        outputs=list(netlist.outputs),
        analog_tolerance=args.analog_tolerance,
        compare_from=args.compare_from,
    )

    if args.trace:
        obs_tracer.reset()
        obs_tracer.enable()
    if args.metrics_out:
        obs_metrics.reset()
        obs_metrics.enable()
    if args.journal:
        # Resumed campaigns append to a shared journal file (the store
        # records this session's byte offset); fresh runs truncate.
        obs_journal.open_journal(
            args.journal, append=args.resume is not None
        )

    if args.verbose:
        progress = (lambda i, n, f: print(f"run {i + 1}/{n}: {f.describe()}",
                                          file=sys.stderr))
    elif args.progress or sys.stderr.isatty():
        progress = ProgressLine()
    else:
        progress = None

    store_path = args.resume or args.store
    store = CampaignStore(store_path) if store_path else None
    try:
        result = run_campaign(
            design_factory(netlist),
            spec,
            workers=args.workers,
            warm_start=args.warm_start,
            batch=args.batch,
            checkpoint_every=(
                parse_quantity(args.checkpoint_every, expect_unit="s")
                if args.checkpoint_every
                else None
            ),
            max_checkpoints=args.max_checkpoints,
            progress=progress,
            store=store,
            resume=args.resume is not None,
            on_error="collect",
            timeout=args.timeout,
            event_budget=args.event_budget,
            retries=args.retries,
            retry_quarantined=args.retry_quarantined,
            postmortem_dir=args.postmortem_dir,
            sample=args.sample,
            margin=args.margin,
            confidence=args.confidence,
            sample_seed=args.sample_seed,
            strata=args.strata,
            chunk=args.chunk,
        )
    finally:
        if store is not None:
            store.close()
        if isinstance(progress, ProgressLine):
            progress.finish()
        if args.journal:
            obs_journal.close_journal()
            print(f"wrote {args.journal}", file=sys.stderr)
        _write_observability(args)
        if args.trace:
            obs_tracer.disable()
        if args.metrics_out:
            obs_metrics.disable()

    report = full_report(result, listing_limit=args.listing_limit)
    print(report)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report + "\n")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(to_csv(result))
        print(f"wrote {args.csv}")

    if result.errors:
        print(
            f"error: {len(result.errors)} of {len(spec.faults)} fault "
            "runs raised simulation errors:",
            file=sys.stderr,
        )
        for err in result.errors[:10]:
            print(f"  [{err.index}] {err.describe()}", file=sys.stderr)
        if len(result.errors) > 10:
            print(f"  ... ({len(result.errors) - 10} more)", file=sys.stderr)
        if store_path:
            hint = f"(rerun with --resume {store_path} to retry the failed runs"
            if any(err.quarantined for err in result.errors):
                hint += "; add --retry-quarantined to include quarantined ones"
            print(hint + ")", file=sys.stderr)
        return 3
    errors = sum(1 for r in result if r.classification.is_error())
    return 1 if args.fail_on_error and errors else 0


def _age_seconds(iso_text):
    """Seconds since an ISO timestamp, or None when unparseable."""
    try:
        then = datetime.fromisoformat(iso_text)
    except (TypeError, ValueError):
        return None
    if then.tzinfo is None:
        then = then.replace(tzinfo=timezone.utc)
    return (datetime.now(timezone.utc) - then).total_seconds()


def _worker_lines(store, name):
    """Rendered supervised-worker rows for one campaign (may be [])."""
    try:
        rows = store.worker_rows(name)
    except ReproError:
        return []
    lines = []
    for row in rows:
        state = row["state"]
        if state == "dead" and row["exitcode"] is not None:
            state = f"dead[{row['exitcode']}]"
        task = (
            "idle" if row["fault_idx"] is None
            else f"fault {row['fault_idx']}"
        )
        if row["phase"]:
            task += f" ({row['phase']})"
        age = _age_seconds(row["updated_at"])
        updated = f"{age:.1f}s ago" if age is not None else "?"
        lines.append(
            f"worker {row['pid']}: {state:<9} {task:<24} updated {updated}"
        )
    return lines


def cmd_campaign_status(args):
    """Progress summary of every campaign in a store."""
    with CampaignStore(args.from_db) as store:
        summaries = store.status()
        if not summaries:
            print("no campaigns recorded")
            return 0
        header = (
            f"{'campaign':<24} {'status':<9} {'mode':<15} {'done':>10} "
            f"{'errors':>6} {'quar':>5} {'skip':>6}  last update"
        )
        print(header)
        print("-" * len(header))
        for row in summaries:
            done = f"{row['completed']}/{row['total']}"
            # "skip" counts faults a sampled campaign's early stop
            # never simulated; "-" marks exhaustive campaigns.
            skip = (
                str(row.get("skipped", 0)) if row.get("sampled") else "-"
            )
            print(
                f"{row['name']:<24} {row['status']:<9} "
                f"{row.get('mode', '?'):<15} {done:>10} "
                f"{row['errors']:>6} {row.get('quarantined', 0):>5} "
                f"{skip:>6}  "
                f"{row['updated_at']}"
            )
        for row in summaries:
            worker_lines = _worker_lines(store, row["name"])
            if worker_lines:
                print(f"workers ({row['name']}):")
                for line in worker_lines:
                    print(f"  {line}")
    return 0


def _watch_frame(store, name, finished, last_event, journal_path):
    """One rendered frame of the ``campaign watch`` live view."""
    stamp = datetime.now(timezone.utc).strftime("%H:%M:%S")
    lines = [f"--- campaign watch @ {stamp}Z ---"]
    try:
        summaries = store.status()
    except Exception as exc:  # writer holds the lock: show a stale frame
        lines.append(f"(store busy: {exc})")
        return "\n".join(lines)
    if name is not None:
        summaries = [s for s in summaries if s["name"] == name]
    if not summaries:
        lines.append("no campaigns recorded yet")
        return "\n".join(lines)
    window_s = 10.0
    cutoff = monotonic() - window_s
    rate = sum(1 for t in finished if t >= cutoff) / window_s
    for row in summaries:
        total = row["total"]
        percent = (
            f"{row['completed'] / total:4.0%}" if total else "   -"
        )
        lines.append(
            f"{row['name']}: {row['status']} [{row.get('mode', '?')}]  "
            f"{row['completed']}/{total} {percent}  "
            f"errors {row['errors']}  "
            f"quarantined {row.get('quarantined', 0)}"
        )
        try:
            counts = store.run_status_counts(row["name"])
        except ReproError:
            counts = {}
        if counts:
            text = "  ".join(
                f"{status}={n}" for status, n in sorted(counts.items())
            )
            lines.append(f"  status: {text}")
        for line in _worker_lines(store, row["name"]):
            lines.append(f"  {line}")
    if journal_path:
        lines.append(
            f"  rate: {rate:.2f} runs/s (last {window_s:.0f}s,"
            f" journal {journal_path})"
        )
        if last_event is not None:
            lines.append(
                f"  last event: {last_event.get('event')}"
                f" (seq {last_event.get('seq')})"
            )
    else:
        lines.append("  (no journal recorded; polling store only)")
    return "\n".join(lines)


def cmd_campaign_watch(args):
    """Live view of a (running) campaign: tail the journal, poll the
    store, render per-status counts, workers and runs/sec."""
    from .obs.journal import tail_journal

    deadline = monotonic() + args.duration if args.duration else None
    finished = deque(maxlen=1024)  # stamps of recent run_finished events
    last_event = None
    # Opening a CampaignStore *creates* the file, and a watcher must
    # not conjure an empty database where the writer expects to create
    # one (a distributed coordinator, say, that has not merged its
    # first shard yet).  Wait for the file instead.
    while not os.path.exists(args.from_db):
        stamp = datetime.now(timezone.utc).strftime("%H:%M:%S")
        print(
            f"--- campaign watch @ {stamp}Z ---\n"
            f"waiting for store {args.from_db} to appear...",
            flush=True,
        )
        if args.once:
            return 0
        if deadline is not None and monotonic() >= deadline:
            return 0
        try:
            sleep(args.interval)
        except KeyboardInterrupt:
            return 0
    with CampaignStore(args.from_db) as store:
        journal_path = args.journal
        position = 0
        if journal_path is None:
            try:
                located = store.journal_location(args.name)
            except ReproError:
                located = None
            if located:
                journal_path, position = located
        try:
            while True:
                if journal_path:
                    events, position = tail_journal(journal_path, position)
                    now = monotonic()
                    for event in events:
                        if event.get("event") == "run_finished":
                            finished.append(now)
                    if events:
                        last_event = events[-1]
                print(
                    _watch_frame(
                        store, args.name, finished, last_event,
                        journal_path,
                    ),
                    flush=True,
                )
                if args.once:
                    return 0
                if deadline is not None and monotonic() >= deadline:
                    return 0
                sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def cmd_campaign_report(args):
    """Regenerate reports from a campaign store, without simulating."""
    with CampaignStore(args.from_db) as store:
        result = store.load_result(args.name)
    report = full_report(result, listing_limit=args.listing_limit)
    print(report)
    if args.dictionary:
        print()
        print("--- fault dictionary ---")
        print(FaultDictionary(result).report())
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report + "\n")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(to_csv(result))
        print(f"wrote {args.csv}")
    return 0


def _build_spec(args):
    """A CampaignSpec from the netlist/faults file arguments."""
    netlist = load_netlist(args.netlist)
    faults = load_faults(args.faults)
    if not netlist.outputs:
        raise ReproError(
            "netlist declares no outputs; campaigns need at least one"
        )
    spec = CampaignSpec(
        name=args.name or netlist.name,
        faults=faults,
        t_end=parse_quantity(args.until, expect_unit="s"),
        outputs=list(netlist.outputs),
        analog_tolerance=args.analog_tolerance,
        compare_from=args.compare_from,
    )
    return netlist, spec


def _shard_config(args):
    """Worker-side execution kwargs shipped inside every shard.

    Sampling flags deliberately never land here: workers execute
    plain exhaustive shards of the *drawn* faults; the coordinator
    owns the sampler (see :func:`_sampling_config`).
    """
    config = {}
    if args.warm_start:
        config["warm_start"] = True
    if args.batch != "off":
        config["batch"] = args.batch
    if args.timeout is not None:
        config["timeout"] = args.timeout
    return config


def _sampling_config(args):
    """Coordinator-side sampling config from the CLI flags, or None."""
    if not getattr(args, "sample", False):
        return None
    if args.margin is None:
        raise ReproError("--sample needs --margin (e.g. --margin 0.005)")
    return {
        "margin": args.margin,
        "confidence": args.confidence,
        "seed": args.sample_seed,
        "strata": args.strata,
    }


def cmd_campaign_serve(args):
    """Start a distributed campaign coordinator.

    With netlist + fault files the job is submitted immediately and
    the coordinator exits when it completes; without them it serves
    until interrupted, accepting jobs from ``campaign submit``.
    """
    from .dist import Coordinator
    from .dist.protocol import parse_address

    host, port = parse_address(args.listen)
    if args.journal:
        obs_journal.open_journal(args.journal)
    ledger = args.ledger
    if ledger is None:
        ledger = f"{args.db}.ledger.jsonl"
    elif ledger.lower() == "none":
        ledger = None
    coordinator = Coordinator(
        args.db, host=host, port=port, shard_size=args.shard_size,
        lease_timeout_s=args.lease_timeout, max_leases=args.max_leases,
        ledger_path=ledger, reconnect_grace_s=args.reconnect_grace,
        lease_wall_s=args.lease_wall_timeout,
    )
    bound = coordinator.address
    print(f"coordinator listening on {bound[0]}:{bound[1]}, "
          f"store {args.db}", file=sys.stderr)
    try:
        if args.resume:
            if ledger is None or not os.path.exists(ledger):
                raise ReproError(
                    f"--resume needs an existing ledger file "
                    f"(looked for {ledger or '--ledger FILE'})"
                )
            resumed = coordinator.resume_from_ledger(ledger)
            print(f"resumed {len(resumed)} job(s) from {ledger}",
                  file=sys.stderr)
            if resumed:
                # Finish the interrupted jobs, then exit with their
                # verdict — the crash-recovery counterpart of serving
                # a netlist job to completion.
                coordinator.drain_when_idle(True)
                coordinator.start()
                ok = True
                try:
                    for job_id in resumed:
                        status = coordinator.wait(job_id)
                        print(
                            f"job {job_id} ({status.get('name')}): "
                            f"{status['state']}, "
                            f"{status.get('merged', 0)}/"
                            f"{status.get('shards', '?')} shards merged, "
                            f"{status.get('rows', 0)} rows",
                            file=sys.stderr,
                        )
                        ok = ok and status["state"] == "complete"
                except KeyboardInterrupt:
                    return 3
                return 0 if ok else 3
            # Nothing interrupted: every ledgered job already reached
            # a terminal state.  Exit instead of parking as a server —
            # the operator asked to finish a crash, not to serve.
            print("nothing to resume: all ledgered jobs are terminal",
                  file=sys.stderr)
            return 0
        if args.netlist:
            if not args.faults:
                raise ReproError("serve with a netlist also needs faults")
            netlist, spec = _build_spec(args)
            payload = netlist.to_dict() if args.ship_netlist else None
            coordinator.drain_when_idle(True)
            job_id = coordinator.submit(
                spec, netlist=payload, config=_shard_config(args),
                sampling=_sampling_config(args),
            )
            coordinator.start()
            try:
                status = coordinator.wait(job_id)
            except KeyboardInterrupt:
                status = coordinator.job_status(job_id)
            print(
                f"job {job_id} ({status.get('name')}): "
                f"{status['state']}, "
                f"{status.get('merged', 0)}/{status.get('shards', '?')} "
                f"shards merged, {status.get('rows', 0)} rows",
                file=sys.stderr,
            )
            return 0 if status["state"] == "complete" else 3
        try:
            coordinator.serve()
        except KeyboardInterrupt:
            pass
        return 0
    finally:
        coordinator.stop()
        if args.journal:
            obs_journal.close_journal()


def cmd_campaign_worker(args):
    """Run a worker daemon against a coordinator.

    With ``--netlist`` the design is built locally and shards only
    carry fault slices; without it, shards must embed their netlist
    (``campaign submit`` ships it by default).
    """
    from .dist import run_worker

    factory = None
    if args.netlist:
        factory = design_factory(load_netlist(args.netlist))
    completed = run_worker(
        args.connect, factory=factory, name=args.name,
        max_shards=args.max_shards, reconnect=args.reconnect,
        max_reconnects=args.max_reconnects or None,
        backoff_s=args.backoff, backoff_max_s=args.backoff_max,
    )
    print(f"worker done: {completed} shards completed", file=sys.stderr)
    return 0


def cmd_campaign_submit(args):
    """Submit a campaign to a running coordinator (async job API)."""
    from .dist.protocol import PROTOCOL_VERSION, connect, parse_address
    from .store.serialize import spec_to_dict

    netlist, spec = _build_spec(args)
    host, port = parse_address(args.connect)
    conn = connect(host, port)
    try:
        conn.send("hello", role="client", name="repro-submit",
                  proto=PROTOCOL_VERSION)
        welcome = conn.recv(timeout=10.0)
        if welcome is None or welcome.get("frame") != "welcome":
            raise ReproError(
                f"coordinator at {host}:{port} did not answer the hello"
            )
        conn.send(
            "submit", spec=spec_to_dict(spec),
            netlist=netlist.to_dict() if args.ship_netlist else None,
            config=_shard_config(args),
            sampling=_sampling_config(args),
        )
        reply = conn.recv(timeout=30.0)
        if reply is None or reply.get("frame") != "job":
            raise ReproError(f"submit rejected: {reply!r}")
        job_id = reply["job"]
        print(
            f"job {job_id} accepted: {reply.get('total')} faults in "
            f"{reply.get('shards')} shards"
        )
        if not args.wait:
            return 0
        while True:
            sleep(args.poll)
            conn.send("status_request", job=job_id)
            status = conn.recv(timeout=30.0)
            if status is None:
                raise ReproError("coordinator went away while waiting")
            if status.get("frame") != "job_status":
                continue
            print(
                f"job {job_id}: {status['state']}  "
                f"shards {status.get('merged', 0)}/"
                f"{status.get('shards', '?')} merged  "
                f"rows {status.get('rows', 0)}/{status.get('total', '?')}",
                file=sys.stderr,
            )
            if status["state"] != "running":
                return 0 if status["state"] == "complete" else 3
    finally:
        conn.close()


def _add_sampling_options(p, chunk=False):
    """Adaptive-sampling flags shared by run, serve and submit."""
    from .campaign.sampling import STRATA_MODES

    p.add_argument("--sample", action="store_true",
                   help="confidence-bounded adaptive sampling: draw "
                        "stratified samples from the fault list and "
                        "stop when the pooled Wilson interval "
                        "half-width drops to --margin; faults never "
                        "simulated get 'skipped' store rows")
    p.add_argument("--margin", type=float, default=None, metavar="FRAC",
                   help="requested interval half-width, e.g. 0.005 "
                        "for ±0.5%% (required with --sample)")
    p.add_argument("--confidence", type=float, default=0.95,
                   metavar="LEVEL",
                   help="interval confidence level (default 0.95)")
    p.add_argument("--sample-seed", type=int, default=0, metavar="N",
                   help="draw-sequence seed; same seed -> "
                        "row-identical campaign (default 0)")
    p.add_argument("--strata", default="site-phase",
                   choices=list(STRATA_MODES),
                   help="stratification: 'site' = injection site, "
                        "'phase' = schedule-time bucket, 'site-phase' "
                        "= both (default), 'none' = one pool")
    if chunk:
        p.add_argument("--chunk", type=int, default=None, metavar="N",
                       help="draws per convergence-evaluation chunk "
                            "(default 25; part of the draw sequence)")


def build_parser():
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Early SEU fault injection in digital, analog and "
        "mixed-signal circuits (DATE 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_types = sub.add_parser("types", help="list netlist component types")
    p_types.set_defaults(func=cmd_types)

    p_info = sub.add_parser("info", help="summarise a netlist file")
    p_info.add_argument("netlist")
    p_info.set_defaults(func=cmd_info)

    p_sim = sub.add_parser("simulate", help="run a netlist")
    p_sim.add_argument("netlist")
    p_sim.add_argument("--until", default="1us",
                       help="simulated duration (default 1us)")
    p_sim.add_argument("--vcd", help="write probe waves to a VCD file")
    p_sim.set_defaults(func=cmd_simulate)

    p_camp = sub.add_parser("campaign", help="fault-injection campaigns")
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    p_run = camp_sub.add_parser("run", help="run an injection campaign")
    p_run.add_argument("netlist")
    p_run.add_argument("faults", help="JSON fault list file")
    p_run.add_argument("--until", default="1us")
    p_run.add_argument("--name", default=None)
    p_run.add_argument("--analog-tolerance", type=float, default=0.01)
    p_run.add_argument("--compare-from", type=float, default=None)
    p_run.add_argument("--report", help="also write the report to a file")
    p_run.add_argument("--csv", help="write per-run results as CSV")
    p_run.add_argument("--listing-limit", type=int, default=20)
    p_run.add_argument("--workers", type=int, default=None,
                       help="run faulty simulations in N processes")
    p_run.add_argument("--warm-start", action="store_true",
                       help="restore golden checkpoints instead of "
                            "re-simulating each fault from t=0")
    p_run.add_argument("--batch", nargs="?", const="auto", default="off",
                       choices=["auto", "analog", "digital", "off"],
                       metavar="{auto,analog,digital,off}",
                       help="batched execution mode (implies "
                            "--warm-start): 'analog' advances "
                            "current-injection variants as vectorized "
                            "ensembles, 'digital' forks bit-flip "
                            "mutants off a shared golden branch walk, "
                            "'auto' (the default when the flag is "
                            "given bare) enables both; divergent "
                            "variants peel off to the scalar path, "
                            "results stay bit-identical")
    p_run.add_argument("--no-batch", dest="batch", action="store_const",
                       const="off",
                       help="disable batched execution (same as "
                            "--batch off; kept as an alias)")
    p_run.add_argument("--checkpoint-every", default=None,
                       help="checkpoint granularity for --warm-start, "
                            "e.g. '500ns' (default: per injection time)")
    p_run.add_argument("--max-checkpoints", type=int, default=None,
                       help="ceiling on retained golden checkpoints")
    p_run.add_argument("--store", metavar="DB", default=None,
                       help="record results into a campaign database as "
                            "each run completes")
    p_run.add_argument("--resume", metavar="DB", default=None,
                       help="resume an interrupted campaign from DB, "
                            "skipping already-completed faults "
                            "(implies --store DB)")
    p_run.add_argument("--trace", metavar="FILE", default=None,
                       help="record kernel/campaign spans to a JSON file")
    p_run.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="dump the metrics registry to a JSON file")
    p_run.add_argument("--journal", metavar="FILE", default=None,
                       help="stream typed campaign events to FILE as "
                            "JSONL while the campaign runs; 'campaign "
                            "watch' tails it (with --resume the file "
                            "is appended, not truncated)")
    p_run.add_argument("--postmortem-dir", metavar="DIR", default=None,
                       help="write a flight-recorder post-mortem JSON "
                            "per failed run (recent solver steps, node "
                            "values, event-queue tail, fault and "
                            "budget state) into DIR")
    p_run.add_argument("--timeout", default=None, metavar="SECONDS",
                       help="per-fault wall-clock budget, e.g. '30s'; "
                            "overrunning runs classify as 'timeout' "
                            "(parallel workers are killed a grace "
                            "period later)")
    p_run.add_argument("--event-budget", type=int, default=None,
                       metavar="N",
                       help="per-fault ceiling on kernel events; "
                            "overrunning runs classify as 'timeout'")
    p_run.add_argument("--retries", type=int, default=None, metavar="N",
                       help="extra attempts per failed fault before it "
                            "is quarantined (default 1; 0 disables)")
    p_run.add_argument("--retry-quarantined", action="store_true",
                       help="with --resume, re-run previously "
                            "quarantined faults instead of skipping "
                            "them")
    p_run.add_argument("--progress", action="store_true",
                       help="force the live progress line (default: only "
                            "on a tty)")
    p_run.add_argument("--verbose", action="store_true")
    p_run.add_argument("--fail-on-error", action="store_true",
                       help="exit 1 when any fault caused an error")
    _add_sampling_options(p_run, chunk=True)
    p_run.set_defaults(func=cmd_campaign_run)

    p_status = camp_sub.add_parser(
        "status", help="progress of stored campaigns"
    )
    p_status.add_argument("--from-db", required=True, metavar="DB",
                          help="campaign database to inspect")
    p_status.set_defaults(func=cmd_campaign_status)

    p_watch = camp_sub.add_parser(
        "watch", help="live view of a running campaign"
    )
    p_watch.add_argument("from_db", metavar="DB",
                         help="campaign database to watch")
    p_watch.add_argument("--name", default=None,
                         help="campaign name (when the DB holds several)")
    p_watch.add_argument("--journal", metavar="FILE", default=None,
                         help="journal file to tail (default: the one "
                              "recorded in the store, when any)")
    p_watch.add_argument("--interval", type=float, default=1.0,
                         metavar="SECONDS",
                         help="refresh interval (default 1s)")
    p_watch.add_argument("--once", action="store_true",
                         help="render a single frame and exit")
    p_watch.add_argument("--duration", type=float, default=None,
                         metavar="SECONDS",
                         help="stop watching after SECONDS")
    p_watch.set_defaults(func=cmd_campaign_watch)

    p_report = camp_sub.add_parser(
        "report", help="regenerate reports from a campaign database"
    )
    p_report.add_argument("--from-db", required=True, metavar="DB",
                          help="campaign database to report from")
    p_report.add_argument("--name", default=None,
                          help="campaign name (when the DB holds several)")
    p_report.add_argument("--listing-limit", type=int, default=20)
    p_report.add_argument("--dictionary", action="store_true",
                          help="also print the fault-dictionary report")
    p_report.add_argument("--report", help="also write the report to a file")
    p_report.add_argument("--csv", help="write per-run results as CSV")
    p_report.set_defaults(func=cmd_campaign_report)

    def _add_spec_options(p, required=True):
        """Netlist/faults/spec options shared by serve and submit."""
        nargs = {} if required else {"nargs": "?", "default": None}
        p.add_argument("netlist", **nargs)
        p.add_argument("faults", help="JSON fault list file", **nargs)
        p.add_argument("--until", default="1us")
        p.add_argument("--name", default=None)
        p.add_argument("--analog-tolerance", type=float, default=0.01)
        p.add_argument("--compare-from", type=float, default=None)
        p.add_argument("--warm-start", action="store_true",
                       help="workers restore golden checkpoints instead "
                            "of re-simulating each fault from t=0")
        p.add_argument("--batch", nargs="?", const="auto", default="off",
                       choices=["auto", "analog", "digital", "off"],
                       metavar="{auto,analog,digital,off}",
                       help="workers use batched execution "
                            "(implies --warm-start)")
        p.add_argument("--timeout", default=None, metavar="SECONDS",
                       help="per-fault wall-clock budget on workers")
        p.add_argument("--no-ship-netlist", dest="ship_netlist",
                       action="store_false", default=True,
                       help="do not embed the netlist in shards; "
                            "workers must then run with --netlist")
        _add_sampling_options(p)

    p_serve = camp_sub.add_parser(
        "serve",
        help="start a distributed campaign coordinator",
        description="Shard a campaign across connected 'campaign "
                    "worker' daemons.  With netlist+faults files the "
                    "job runs immediately and the coordinator exits on "
                    "completion; without them it accepts jobs from "
                    "'campaign submit' until interrupted.",
    )
    _add_spec_options(p_serve, required=False)
    p_serve.add_argument("--db", required=True, metavar="DB",
                         help="final merged campaign database")
    p_serve.add_argument("--listen", default="127.0.0.1:7410",
                         metavar="HOST:PORT",
                         help="listen address (default 127.0.0.1:7410; "
                              "port 0 picks an ephemeral port)")
    p_serve.add_argument("--shard-size", type=int, default=25,
                         metavar="N", help="faults per shard (default 25)")
    p_serve.add_argument("--lease-timeout", type=float, default=15.0,
                         metavar="SECONDS",
                         help="heartbeat silence before a shard lease "
                              "is revoked and reassigned (default 15s)")
    p_serve.add_argument("--max-leases", type=int, default=3, metavar="N",
                         help="lease attempts per shard before it is "
                              "declared failed (default 3)")
    p_serve.add_argument("--journal", metavar="FILE", default=None,
                         help="stream job/shard/run events to FILE as "
                              "JSONL ('campaign watch' tails it)")
    p_serve.add_argument("--ledger", metavar="FILE", default=None,
                         help="durable scheduling ledger for crash "
                              "recovery (default: <db>.ledger.jsonl; "
                              "'none' disables)")
    p_serve.add_argument("--resume", action="store_true",
                         help="rebuild coordinator state from the "
                              "ledger before serving: completed shards "
                              "are adopted from their shard databases, "
                              "the rest requeue")
    p_serve.add_argument("--reconnect-grace", type=float, default=10.0,
                         metavar="SECONDS",
                         help="how long a disconnected worker's lease "
                              "stays reserved for its reconnect before "
                              "the shard reassigns (default 10s; 0 "
                              "restores immediate reassignment)")
    p_serve.add_argument("--lease-wall-timeout", type=float,
                         default=None, metavar="SECONDS",
                         help="absolute wall-clock ceiling per lease, "
                              "heartbeats or not (default: none)")
    p_serve.set_defaults(func=cmd_campaign_serve)

    p_worker = camp_sub.add_parser(
        "worker", help="run a distributed campaign worker daemon"
    )
    p_worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator address")
    p_worker.add_argument("--netlist", default=None,
                          help="build the design from this local file "
                               "(otherwise shards must embed a netlist)")
    p_worker.add_argument("--name", default=None,
                          help="worker identity (default host:pid)")
    p_worker.add_argument("--max-shards", type=int, default=None,
                          metavar="N", help="exit after N shards")
    p_worker.add_argument("--no-reconnect", dest="reconnect",
                          action="store_false", default=True,
                          help="die on the first socket failure instead "
                               "of backing off and redialing")
    p_worker.add_argument("--max-reconnects", type=int, default=8,
                          metavar="N",
                          help="consecutive failed redials before "
                               "giving up (default 8; 0 = forever)")
    p_worker.add_argument("--backoff", type=float, default=0.5,
                          metavar="SECONDS",
                          help="first reconnect backoff; doubles per "
                               "attempt (default 0.5s)")
    p_worker.add_argument("--backoff-max", type=float, default=15.0,
                          metavar="SECONDS",
                          help="reconnect backoff ceiling (default 15s)")
    p_worker.set_defaults(func=cmd_campaign_worker)

    p_submit = camp_sub.add_parser(
        "submit", help="submit a campaign to a running coordinator"
    )
    _add_spec_options(p_submit, required=True)
    p_submit.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="coordinator address")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job reaches a terminal "
                               "state (exit 0 complete, 3 otherwise)")
    p_submit.add_argument("--poll", type=float, default=1.0,
                          metavar="SECONDS",
                          help="status poll interval with --wait")
    p_submit.set_defaults(func=cmd_campaign_submit)

    return parser


_CAMPAIGN_SUBCOMMANDS = {
    "run", "status", "report", "watch", "serve", "worker", "submit",
}


def _normalize_argv(argv):
    """Accept the historic ``repro campaign <netlist> <faults>`` form.

    The campaign command grew subcommands (``run``/``status``/
    ``report``); a bare ``campaign`` followed by a file path is
    rewritten to ``campaign run`` so existing Makefiles keep working.
    """
    argv = list(argv)
    if (
        len(argv) >= 2
        and argv[0] == "campaign"
        and argv[1] not in _CAMPAIGN_SUBCOMMANDS
        and not argv[1].startswith("-")
    ):
        argv.insert(1, "run")
    return argv


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(
        _normalize_argv(sys.argv[1:] if argv is None else argv)
    )
    try:
        return args.func(args)
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
