"""Digital/analog boundary bridges.

Mixed-mode simulation needs explicit conversion elements at the
digital/analog frontier.  The A→D direction is the comparator
:class:`~repro.analog.comparator.Digitizer` (the Figure 5 block named
"Digitizer (Comparator, Threshold 2.5 V)"); this module adds the D→A
direction and re-exports the digitizer for a complete bridge kit.
"""

from __future__ import annotations

import math

from ..core.component import AnalogBlock
from ..core.errors import SimulationError
from ..core.logic import logic
from ..analog.comparator import Digitizer

__all__ = ["Digitizer", "LogicToVoltage", "BusToVoltage"]


class LogicToVoltage(AnalogBlock):
    """Drives an analog node from a digital signal.

    Logic 1 maps to ``v_high``, 0 to ``v_low``, undefined levels to the
    midpoint (an unknown driver floats to mid-rail behaviourally).  An
    optional slew limit gives the edge a finite transition time.

    :param inp: digital input signal.
    :param out: analog output node.
    :param slew: maximum dV/dt in V/s (None = instantaneous).
    """

    is_state = True

    def __init__(self, sim, name, inp, out, v_high=5.0, v_low=0.0, slew=None,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.inp = inp
        self.out = self.writes_node(out)
        self.v_high = float(v_high)
        self.v_low = float(v_low)
        self.slew = float(slew) if slew is not None else None
        self._v = None

    def _target(self):
        level = logic(self.inp.value)
        if level.is_high():
            return self.v_high
        if level.is_low():
            return self.v_low
        return 0.5 * (self.v_high + self.v_low)

    def step(self, t, dt):
        target = self._target()
        if self._v is None or self.slew is None:
            self._v = target
        elif dt > 0:
            max_dv = self.slew * dt
            delta = target - self._v
            if abs(delta) > max_dv:
                delta = math.copysign(max_dv, delta)
            self._v += delta
        self.out.set(self._v)


class BusToVoltage(AnalogBlock):
    """Drives an analog node from a digital bus (ideal DAC shorthand).

    Unlike :class:`~repro.analog.dac.IdealDAC` this bridge maps an
    undefined bus to mid-rail rather than holding, which is the right
    pessimism when the bus is a *wire bundle* rather than a registered
    DAC input.
    """

    def __init__(self, sim, name, bus, out, v_ref=5.0, parent=None):
        super().__init__(sim, name, parent=parent)
        if v_ref <= 0:
            raise SimulationError(f"bridge {name}: v_ref must be positive")
        self.bus = bus
        self.out = self.writes_node(out)
        self.v_ref = float(v_ref)

    def step(self, t, dt):
        code = self.bus.to_int_or_none()
        if code is None:
            self.out.set(0.5 * self.v_ref)
        else:
            self.out.set(self.v_ref * code / (1 << len(self.bus)))
