"""Digital load for the mixed-signal test case.

The paper's complete circuit is a PLL "generating the clock signal of a
digital block"; :class:`DigitalLoad` is that digital block — a small
counter + LFSR datapath with a parity output.  Clocking it from the
PLL's recovered clock closes the loop of the Section 5.2 discussion:
one analog injection perturbs the clock for many cycles, and the
monitored digital outputs reveal whether (and when) that translates
into logic errors at the behavioural level.
"""

from __future__ import annotations

from ..core.component import Component
from ..core.logic import Logic
from ..digital.bus import Bus
from ..digital.counter import Counter
from ..digital.lfsr import LFSR
from ..digital.alu import ParityGen


class DigitalLoad(Component):
    """A counter + LFSR + parity datapath clocked externally.

    :param clk: the (possibly PLL-generated) clock.
    :param counter_bits: width of the cycle counter.
    :param lfsr_bits: width of the pattern generator (must have default
        maximal taps: 3,4,5,6,7,8,9,10,11,12,15,16).

    :ivar count: counter state bus (injectable, observable).
    :ivar pattern: LFSR state bus (injectable, observable).
    :ivar parity: single-bit output combining the LFSR bits.
    """

    def __init__(self, sim, name, clk, counter_bits=8, lfsr_bits=8,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        path = self.path
        self.clk = clk
        self.count = Bus(sim, f"{path}.count", counter_bits, init=0)
        self.counter = Counter(sim, "counter", clk, self.count, parent=self)
        self.pattern = Bus(sim, f"{path}.pattern", lfsr_bits, init=1)
        self.lfsr = LFSR(sim, "lfsr", clk, self.pattern, parent=self)
        self.parity = sim.signal(f"{path}.parity", init=Logic.U)
        self.paritygen = ParityGen(
            sim, "paritygen", self.pattern, self.parity, parent=self
        )

    def snapshot(self):
        """Current (count, pattern) integers, None bits when undefined."""
        return self.count.to_int_or_none(), self.pattern.to_int_or_none()
