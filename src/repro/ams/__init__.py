"""AMS assemblies: bridges and the case-study circuits (PLL, ADCs)."""

from .adc import (
    ComparatorBank,
    FlashADC,
    SARADC,
    SARLogic,
    ThermometerEncoder,
)
from .bridges import BusToVoltage, Digitizer, LogicToVoltage
from .dll import DLL, SamplingPhaseDetector, VoltageControlledDelayLine
from .loads import DigitalLoad
from .pll import PLL

__all__ = [
    "BusToVoltage",
    "ComparatorBank",
    "DLL",
    "DigitalLoad",
    "Digitizer",
    "FlashADC",
    "LogicToVoltage",
    "PLL",
    "SARADC",
    "SARLogic",
    "SamplingPhaseDetector",
    "ThermometerEncoder",
    "VoltageControlledDelayLine",
]
