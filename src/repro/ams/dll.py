"""A delay-locked loop — the PLL's first-order sibling.

A second mixed-signal case study assembled from the same substrate, at
the same behavioural level as the Figure 5 PLL: a voltage-controlled
delay line aligns a delayed copy of the reference clock with the *next*
reference edge (delay = one period), driven by a sampling phase
detector, a charge pump and a pure capacitive integrator.  The
charge-pump output is again a :class:`~repro.core.node.CurrentNode`
(``"<path>.icp"``), so the same saboteur campaign runs unchanged
against a different loop topology — the point of the paper's *global*
flow.

A note on the phase detector: the PLL's three-state PFD cannot lock a
DLL, because it accumulates the *total* delay rather than the error to
one period (it pairs each delayed edge with the previous reference
edge, so its up/down duty never nulls at delay = T).  Real DLLs use a
phase-only detector; :class:`SamplingPhaseDetector` is its behavioural
model — it pairs every delayed edge with the *nearest* reference edge
and emits an UP/DOWN pulse whose width is the timing error, which the
ordinary charge pump then integrates.

Being first order, the DLL answers an injected charge with a pure
delay (phase) step and an exponential recovery — none of the PLL's
frequency excursion — so campaigns over the two case studies separate
phase-sensitive from frequency-sensitive failure modes.
"""

from __future__ import annotations

from ..analog.chargepump import ChargePump
from ..analog.filters import TransimpedanceFilter
from ..analog.lti import LTISystem
from ..core.component import Component, DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, logic
from ..core.units import parse_quantity
from ..digital.clock import ClockGen


class VoltageControlledDelayLine(DigitalComponent):
    """Delays every edge of a digital input by a voltage-set interval.

    ``delay = d0 + kdl * (vctrl - vcenter)``, clamped to
    ``[d_min, d_max]``; the control node is sampled at each input
    edge (the behavioural abstraction of a current-starved buffer
    chain).

    :param inp: input clock signal.
    :param out: delayed output signal.
    :param vctrl: control-voltage node.
    :param d0: nominal delay at ``vcenter``.
    :param kdl: delay gain in seconds per volt.
    """

    def __init__(self, sim, name, inp, out, vctrl, d0, kdl, vcenter=2.5,
                 d_min=None, d_max=None, parent=None):
        super().__init__(sim, name, parent=parent)
        self.inp = inp
        self.out = out
        self.vctrl = vctrl
        self.d0 = float(d0)
        self.kdl = float(kdl)
        self.vcenter = float(vcenter)
        self.d_min = float(d_min) if d_min is not None else 0.1 * self.d0
        self.d_max = float(d_max) if d_max is not None else 3.0 * self.d0
        if self.d_min <= 0 or self.d_max <= self.d_min:
            raise ElaborationError(
                f"delay line {name}: need 0 < d_min < d_max"
            )
        self._driver = out.driver(owner=self)
        self._driver.set(Logic.L0)
        self.process(self._on_edge, sensitivity=[inp])

    def current_delay(self):
        """The delay in force for an edge arriving now."""
        delay = self.d0 + self.kdl * (self.vctrl.v - self.vcenter)
        return min(max(delay, self.d_min), self.d_max)

    def _on_edge(self):
        value = logic(self.inp.value)
        if not value.is_defined():
            return
        level = Logic.L1 if value.is_high() else Logic.L0
        self._driver.set(level, self.current_delay())


class SamplingPhaseDetector(DigitalComponent):
    """Phase-only detector for delay locking.

    On every rising edge of ``delayed`` it measures the time since the
    last ``ref`` rising edge.  If the delayed edge landed in the first
    half of the reference period it is *late* (the loop delay exceeds
    one period): a DOWN pulse of that width is emitted.  If it landed
    in the second half it is *early*: an UP pulse as wide as the gap
    to the upcoming reference edge is emitted.  Both widths null
    exactly at delay = one period, so the charge pump integrates a
    signed, proportional timing error — the behavioural equivalent of
    a sample-and-compare phase detector.
    """

    def __init__(self, sim, name, ref, delayed, up, down, period,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if period <= 0:
            raise ElaborationError(f"phase detector {name}: bad period")
        self.ref = ref
        self.delayed = delayed
        self.period = float(period)
        self._up_driver = up.driver(owner=self)
        self._down_driver = down.driver(owner=self)
        self._up_driver.set(Logic.L0)
        self._down_driver.set(Logic.L0)
        self._last_ref_rise = None
        self.process(self._on_ref, sensitivity=[ref])
        self.process(self._on_delayed, sensitivity=[delayed])

    def _on_ref(self):
        if self.ref.rose():
            self._last_ref_rise = self.sim.now

    def _on_delayed(self):
        if not self.delayed.rose() or self._last_ref_rise is None:
            return
        since_ref = self.sim.now - self._last_ref_rise
        # Normalise into one period (robust to a missed ref update in
        # the same delta).
        since_ref = since_ref % self.period
        if since_ref <= 0.5 * self.period:
            width = since_ref
            driver = self._down_driver
        else:
            width = self.period - since_ref
            driver = self._up_driver
        if width <= 0:
            return
        driver.set(Logic.L1)
        driver.set(Logic.L0, width)


class DLL(Component):
    """Behavioural delay-locked loop.

    Locks the delay line to one reference period: the delayed clock's
    rising edges align with the following reference edges.  The loop
    is first order (pure capacitive integrator) with per-cycle gain
    ``kdl * i_pump / c_loop`` — below 1 for the defaults, so the error
    converges geometrically without overshoot.

    :param f_ref: reference frequency (the delay locks to its period).
    :param kdl: delay-line gain (s/V).
    :param i_pump: charge-pump current.
    :param c_loop: integrating loop capacitor.
    :param d0_frac: initial/nominal delay as a fraction of the period
        (in [0.55, 1) so the detector starts in its capture range and
        pulls up towards lock).
    """

    def __init__(self, sim, name, f_ref="50MHz", kdl="20ns", i_pump="100uA",
                 c_loop="64pF", vdd=5.0, d0_frac=0.75, ref=None, parent=None):
        super().__init__(sim, name, parent=parent)
        self.f_ref = parse_quantity(f_ref, expect_unit="Hz")
        self.t_ref = 1.0 / self.f_ref
        self.kdl = parse_quantity(kdl, expect_unit="s")
        self.i_pump = parse_quantity(i_pump, expect_unit="A")
        self.vdd = float(vdd)
        self.c_loop = parse_quantity(c_loop, expect_unit="F")
        if not 0.55 <= d0_frac < 1.0:
            raise ElaborationError(
                f"dll {name}: d0_frac must be in [0.55, 1)"
            )
        path = self.path

        if ref is None:
            self.ref = sim.signal(f"{path}.ref", init=Logic.L0)
            self.refgen = ClockGen(sim, "refgen", self.ref,
                                   period=self.t_ref, parent=self)
        else:
            self.ref = ref
            self.refgen = None
        self.delayed = sim.signal(f"{path}.delayed", init=Logic.L0)
        self.up = sim.signal(f"{path}.up", init=Logic.L0)
        self.down = sim.signal(f"{path}.down", init=Logic.L0)

        #: Charge-pump output / loop capacitor: the injection target.
        self.icp = sim.current_node(f"{path}.icp")
        self.vctrl = sim.node(f"{path}.vctrl", init=vdd / 2.0)

        self.delayline = VoltageControlledDelayLine(
            sim, "delayline", self.ref, self.delayed, self.vctrl,
            d0=d0_frac * self.t_ref, kdl=self.kdl, vcenter=vdd / 2.0,
            d_min=0.55 * self.t_ref, d_max=1.45 * self.t_ref, parent=self,
        )
        self.detector = SamplingPhaseDetector(
            sim, "detector", self.ref, self.delayed, self.up, self.down,
            period=self.t_ref, parent=self,
        )
        self.chargepump = ChargePump(
            sim, "chargepump", self.up, self.down, self.icp, self.i_pump,
            parent=self,
        )
        integrator = LTISystem(a=[[0.0]], b=[[1.0 / self.c_loop]],
                               c=[[1.0]], x0=[vdd / 2.0])
        self.filter = TransimpedanceFilter(
            sim, "filter", self.icp, self.vctrl, integrator,
            v_min=0.0, v_max=vdd, parent=self,
        )

    @property
    def loop_gain_per_cycle(self):
        """Fraction of the timing error removed each reference cycle."""
        return self.kdl * self.i_pump / self.c_loop

    @property
    def vctrl_locked(self):
        """Control voltage at which the delay equals one period."""
        return self.vdd / 2.0 + (self.t_ref - self.delayline.d0) / self.kdl

    def delay_error(self):
        """Instantaneous delay error vs one reference period (s)."""
        return self.delayline.current_delay() - self.t_ref
