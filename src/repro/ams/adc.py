"""Analog-to-digital converter assemblies.

The paper's conclusion names ADCs as the natural next target: "the
interest of the approach could be still higher when analyzing the
impact of faults in functional blocks including both analog and digital
circuitry, e.g. analog to digital converters", and its reference [9]
found the *analog* part of a converter can be more sensitive than the
digital part.  These assemblies make that experiment runnable:

* :class:`FlashADC` — sample/hold + resistor ladder + comparator bank
  + thermometer encoder + output register.  Analog injection target:
  the hold capacitor node (``"<path>.held"``); digital targets: the
  output register bits.
* :class:`SARADC` — sample/hold + capacitive DAC + comparator + SAR
  control logic.  A strike during the bit trials corrupts *all*
  remaining decisions, a classically nasty ADC failure mode.
"""

from __future__ import annotations

from ..analog.comparator import AnalogComparator, Digitizer
from ..analog.dac import IdealDAC, ResistorLadder
from ..analog.samplehold import SampleHold
from ..core.component import AnalogBlock, Component, DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, bits_from_int, logic
from ..digital.bus import Bus
from ..digital.seq import Register


class ComparatorBank(AnalogBlock):
    """2**n - 1 comparators against ladder taps -> thermometer bus.

    Each comparator drives one digital thermometer bit; per-comparator
    input offsets are exposed for parametric fault experiments.
    """

    def __init__(self, sim, name, inp, taps, therm, offsets=None, parent=None):
        super().__init__(sim, name, parent=parent)
        if len(taps) != len(therm):
            raise ElaborationError(
                f"comparator bank {name}: {len(taps)} taps vs "
                f"{len(therm)} thermometer bits"
            )
        self.inp = self.reads_node(inp)
        self.taps = [self.reads_node(tap) for tap in taps]
        self.therm = therm
        self.offsets = list(offsets) if offsets is not None else [0.0] * len(taps)
        if len(self.offsets) != len(taps):
            raise ElaborationError(
                f"comparator bank {name}: offset count mismatch"
            )
        self._drivers = [sig.driver(owner=self) for sig in therm.bits]
        for drv in self._drivers:
            drv.set(Logic.L0)

    def step(self, t, dt):
        v = self.inp.v
        for drv, tap, offset in zip(self._drivers, self.taps, self.offsets):
            drv.set(Logic.L1 if v + offset >= tap.v else Logic.L0)


class ThermometerEncoder(DigitalComponent):
    """Thermometer-to-binary encoder with bubble tolerance.

    Counts the asserted thermometer bits (ones-counting is inherently
    bubble-tolerant, unlike a priority encoder).  Any undefined input
    bit poisons the code to X.
    """

    def __init__(self, sim, name, therm, code, parent=None):
        super().__init__(sim, name, parent=parent)
        if (1 << len(code)) - 1 != len(therm):
            raise ElaborationError(
                f"encoder {name}: need {(1 << len(code)) - 1} thermometer "
                f"bits for {len(code)} code bits, got {len(therm)}"
            )
        self.therm = therm
        self.code = code
        self._drivers = [sig.driver(owner=self) for sig in code.bits]
        self.process(self._encode, sensitivity=list(therm.bits))

    def _encode(self):
        count = 0
        for sig in self.therm.bits:
            level = logic(sig.value)
            if not level.is_defined():
                for drv in self._drivers:
                    drv.set(Logic.X)
                return
            if level.is_high():
                count += 1
        for drv, bit in zip(self._drivers, bits_from_int(count, len(self.code))):
            drv.set(bit)


class FlashADC(Component):
    """Behavioural flash converter.

    Pipeline: track-and-hold (track while ``clk`` high) -> comparator
    bank against a 2**bits - 1 tap ladder -> thermometer encoder ->
    output register captured on the rising ``clk`` edge (i.e. the code
    resolved during the previous hold phase).

    :ivar held: the hold-capacitor :class:`CurrentNode` — the analog
        injection target.
    :ivar output: registered output :class:`Bus` — the digital
        injection target.
    """

    def __init__(self, sim, name, clk, vin, bits=4, v_ref=5.0,
                 c_hold=1e-12, comparator_offsets=None, ladder_deviations=None,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if bits < 2:
            raise ElaborationError(f"flash adc {name}: bits must be >= 2")
        self.bits = bits
        self.v_ref = float(v_ref)
        self.clk = clk
        path = self.path
        n_taps = (1 << bits) - 1

        self.held = sim.current_node(f"{path}.held")
        self.samplehold = SampleHold(
            sim, "samplehold", vin, clk, self.held, c_hold=c_hold, parent=self
        )
        self.ladder = ResistorLadder(
            sim, "ladder", n_taps, v_top=v_ref, v_bottom=0.0,
            deviations=ladder_deviations, parent=self,
        )
        self.therm = Bus(sim, f"{path}.therm", n_taps, init=Logic.L0)
        self.bank = ComparatorBank(
            sim, "bank", self.held, self.ladder.taps, self.therm,
            offsets=comparator_offsets, parent=self,
        )
        self.code = Bus(sim, f"{path}.code", bits, init=Logic.U)
        self.encoder = ThermometerEncoder(
            sim, "encoder", self.therm, self.code, parent=self
        )
        self.output = Bus(sim, f"{path}.out", bits, init=0)
        self.register = Register(
            sim, "register", self.code, clk, self.output, parent=self
        )

    def ideal_code(self, volts):
        """The code an ideal converter would produce for ``volts``."""
        lsb = self.v_ref / (1 << self.bits)
        code = int(volts / lsb + 0.5)
        return max(0, min((1 << self.bits) - 1, code))


class SARLogic(DigitalComponent):
    """Successive-approximation control: one bit trial per clock.

    Cycle 0 samples (asserts ``track``); cycles 1..bits test bits MSB
    first against the comparator decision; the result is copied to the
    output register with ``done`` pulsed high.  The trial register and
    bit counter are injectable state.
    """

    def __init__(self, sim, name, clk, comp, trial, track, done, parent=None):
        super().__init__(sim, name, parent=parent)
        self.clk = clk
        self.comp = comp
        self.trial = trial
        self.track = track
        self.done = done
        self.bits = len(trial)
        self._trial_drivers = [sig.driver(owner=self) for sig in trial.bits]
        self._track_driver = track.driver(owner=self)
        self._done_driver = done.driver(owner=self)
        self._track_driver.set(Logic.L1)
        self._done_driver.set(Logic.L0)
        #: Index of the bit currently under trial; ``bits`` means
        #: "sampling phase".
        self.phase = self.bits
        for drv in self._trial_drivers:
            drv.set(Logic.L0)
        self.process(self._tick, sensitivity=[clk])

    def _tick(self):
        if not self.clk.rose():
            return
        if self.phase == self.bits:
            # Leaving the sampling phase: start the MSB trial.
            self._track_driver.set(Logic.L0)
            self._done_driver.set(Logic.L0)
            self.phase = self.bits - 1
            self._set_trial_bit(self.phase, Logic.L1)
            return
        # Resolve the current trial from the comparator: comp high
        # means the input is above the DAC level, so the bit stays.
        decision = logic(self.comp.value)
        keep = decision.is_high()
        if not decision.is_defined():
            keep = False  # pessimistic: an unknown comparison clears
        if not keep:
            self._set_trial_bit(self.phase, Logic.L0)
        if self.phase == 0:
            self._done_driver.set(Logic.L1)
            self._track_driver.set(Logic.L1)
            self.phase = self.bits
        else:
            self.phase -= 1
            self._set_trial_bit(self.phase, Logic.L1)

    def _set_trial_bit(self, index, value):
        self._trial_drivers[index].set(value)

    def state_signals(self):
        return self.trial.state_map(prefix="trial")


class SARADC(Component):
    """Behavioural successive-approximation converter.

    Conversion takes ``bits + 1`` clock cycles (sample + one trial per
    bit).  The held node is injectable; a current pulse during the
    trials shifts the comparisons of every remaining bit.

    :ivar held: hold-capacitor :class:`CurrentNode` (analog target).
    :ivar trial: SAR trial register (digital target).
    :ivar output: registered conversion result.
    """

    def __init__(self, sim, name, clk, vin, bits=8, v_ref=5.0, c_hold=1e-12,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if bits < 2:
            raise ElaborationError(f"sar adc {name}: bits must be >= 2")
        self.bits = bits
        self.v_ref = float(v_ref)
        self.clk = clk
        path = self.path

        self.track = sim.signal(f"{path}.track", init=Logic.L1)
        self.held = sim.current_node(f"{path}.held")
        self.samplehold = SampleHold(
            sim, "samplehold", vin, self.track, self.held, c_hold=c_hold,
            parent=self,
        )
        self.trial = Bus(sim, f"{path}.trial", bits, init=0)
        self.dac_node = sim.node(f"{path}.dac")
        self.dac = IdealDAC(
            sim, "dac", self.trial, self.dac_node, v_ref=v_ref, parent=self
        )
        self.comp_analog = sim.node(f"{path}.comp_a")
        self.comparator = AnalogComparator(
            sim, "comparator", self.held, self.dac_node, self.comp_analog,
            v_high=5.0, v_low=0.0, parent=self,
        )
        self.comp = sim.signal(f"{path}.comp", init=Logic.L0)
        self.comp_digitizer = Digitizer(
            sim, "compdig", self.comp_analog, self.comp, threshold=2.5,
            parent=self,
        )
        self.done = sim.signal(f"{path}.done", init=Logic.L0)
        self.logic = SARLogic(
            sim, "sarlogic", clk, self.comp, self.trial, self.track,
            self.done, parent=self,
        )
        self.output = Bus(sim, f"{path}.out", bits, init=0)
        self.register = Register(
            sim, "register", self.trial, clk, self.output, en=self.done,
            parent=self,
        )

    def ideal_code(self, volts):
        """The code an ideal converter would produce for ``volts``."""
        lsb = self.v_ref / (1 << self.bits)
        code = int(volts / lsb)
        return max(0, min((1 << self.bits) - 1, code))
