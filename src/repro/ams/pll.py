"""The paper's case-study PLL (Section 5, Figure 5).

A behavioural phase-locked loop with the exact Figure 5 hierarchy::

    F_in --> [ Sequential Phase-frequency Detector ] --> [ Charge Pump ]
                      ^                                        |
                      |                                   (current node:
                  [ Divider ]                            INJECTION TARGET)
                      ^                                        v
                      |                                 [ Low-pass Filter ]
                   F_out <-- [ Digitizer (2.5 V) ] <-- [ Analog VCO ]

and the paper's operating point: 500 kHz input frequency, 20 ns output
clock period (50 MHz), so a ÷100 feedback divider.  Each sub-block is
specified at the behavioural level, like the frequency synthesizer of
Antao et al. (paper reference [13]).

The charge-pump output / filter input is a
:class:`~repro.core.node.CurrentNode` named ``"<path>.icp"`` — the
node where the paper inserts its saboteur.
"""

from __future__ import annotations

from ..analog.chargepump import ChargePump
from ..analog.comparator import Digitizer
from ..analog.filters import TransimpedanceFilter, pi_loop_filter
from ..analog.pfd import PFD
from ..analog.vco import VCO
from ..core.component import Component
from ..core.errors import ElaborationError
from ..core.logic import Logic
from ..core.units import parse_quantity
from ..digital.clock import ClockGen
from ..digital.counter import ClockDivider


class PLL(Component):
    """Behavioural charge-pump PLL.

    Default parameters give the paper's operating point with a loop
    bandwidth near 25 kHz (crossover ``Ip * Kvco * R / N``), locking
    well before the paper's 0.17 ms injection time.

    :param f_ref: reference frequency (paper: 500 kHz).
    :param n_div: feedback division ratio (paper: 100 -> 50 MHz out).
    :param kvco: VCO gain in Hz/V.
    :param i_pump: charge-pump current.
    :param r, c1, c2: loop-filter elements (series R+C1 shunted by C2).
    :param vdd: supply; the digitizer threshold is ``vdd/2`` (2.5 V).
    :param ref: optional external reference signal; when None an
        internal clock generator provides ``f_ref``.
    :param preset_locked: start with the filter preset to the VCO
        centre voltage and all phases aligned, so the loop is locked
        from t=0 (campaign acceleration; the full acquisition can be
        simulated by leaving this False).
    """

    def __init__(
        self,
        sim,
        name,
        f_ref="500kHz",
        n_div=100,
        kvco="10MHz",  # Hz per volt
        i_pump="100uA",
        r="15.7kOhm",
        c1="1.62nF",
        c2="80pF",
        vdd=5.0,
        f0=None,
        ref=None,
        preset_locked=False,
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        self.f_ref = parse_quantity(f_ref, expect_unit="Hz")
        self.n_div = int(n_div)
        if self.n_div < 2:
            raise ElaborationError(f"pll {name}: n_div must be >= 2")
        self.kvco = parse_quantity(kvco)
        self.i_pump = parse_quantity(i_pump, expect_unit="A")
        self.vdd = float(vdd)
        self.f_out_nominal = self.f_ref * self.n_div
        self.f0 = parse_quantity(f0, expect_unit="Hz") if f0 is not None else self.f_out_nominal

        r = parse_quantity(r)
        c1 = parse_quantity(c1, expect_unit="F")
        c2 = parse_quantity(c2, expect_unit="F")

        path = self.path
        # -- signals ------------------------------------------------------
        if ref is None:
            self.ref = sim.signal(f"{path}.ref", init=Logic.L0)
            self.refgen = ClockGen(
                sim, "refgen", self.ref, period=1.0 / self.f_ref, parent=self
            )
        else:
            self.ref = ref
            self.refgen = None
        self.fb = sim.signal(f"{path}.fb", init=Logic.L0)
        self.up = sim.signal(f"{path}.up", init=Logic.L0)
        self.down = sim.signal(f"{path}.down", init=Logic.L0)
        self.fout = sim.signal(f"{path}.fout", init=Logic.L0)

        # -- nodes ----------------------------------------------------------
        #: Charge-pump output / loop-filter input: the injection target.
        self.icp = sim.current_node(f"{path}.icp")
        self.vctrl = sim.node(f"{path}.vctrl", init=0.0)
        self.vco_out = sim.node(f"{path}.vco_out", init=0.0)

        # -- sub-blocks (Figure 5) ------------------------------------------
        self.pfd = PFD(sim, "pfd", self.ref, self.fb, self.up, self.down,
                       parent=self)
        self.chargepump = ChargePump(
            sim, "chargepump", self.up, self.down, self.icp, self.i_pump,
            parent=self,
        )
        self.filter = TransimpedanceFilter(
            sim,
            "filter",
            self.icp,
            self.vctrl,
            pi_loop_filter(r, c1, c2),
            v_min=0.0,
            v_max=self.vdd,
            parent=self,
        )
        self.vco = VCO(
            sim,
            "vco",
            self.vctrl,
            self.vco_out,
            f0=self.f0,
            kvco=self.kvco,
            vcenter=self.vdd / 2.0,
            v_high=self.vdd,
            v_low=0.0,
            parent=self,
        )
        self.digitizer = Digitizer(
            sim, "digitizer", self.vco_out, self.fout,
            threshold=self.vdd / 2.0, parent=self,
        )
        self.divider = ClockDivider(
            sim, "divider", self.fout, self.fb, n=self.n_div, parent=self
        )

        if preset_locked:
            self.preset_locked()

    # -- operating-point helpers --------------------------------------------

    @property
    def vctrl_locked(self):
        """Control voltage at which the VCO outputs the nominal clock."""
        return self.vdd / 2.0 + (self.f_out_nominal - self.f0) / self.kvco

    @property
    def t_out_nominal(self):
        """Nominal output clock period (paper: 20 ns)."""
        return 1.0 / self.f_out_nominal

    def preset_locked(self):
        """Preset loop state to the locked operating point.

        The filter capacitors are charged to the locked control
        voltage and the VCO phase starts at zero, aligned with the
        reference generator's first edge — the loop then holds lock
        from t=0 instead of spending tens of microseconds acquiring.
        """
        self.filter.preset(self.vctrl_locked)
        self.vco.phase = 0.0
        self.vco._u_prev = self.vctrl_locked

    def loop_crossover_hz(self):
        """Approximate open-loop unity-gain frequency in Hz.

        ``f_c = Ip * Kvco * R / (2*pi*N)`` — the standard charge-pump
        PLL crossover with the stabilising zero below it.
        """
        import math

        r = self._filter_r()
        return self.i_pump * self.kvco * r / (2.0 * math.pi * self.n_div)

    def _filter_r(self):
        # Recover R from the state-space matrices: A[1][0] = 1/(R*C1),
        # B[0][0] = 1/C2, A[0][0] = -1/(R*C2).
        a = self.filter.system.a
        b = self.filter.system.b
        c2 = 1.0 / b[0][0]
        return -1.0 / (a[0][0] * c2)
