"""Clock and stimulus generators.

Campaign workloads need reference clocks (the PLL's 500 kHz input),
reset pulses and data stimulus; these generators provide them as
event-driven components.
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, logic


class ClockGen(DigitalComponent):
    """A free-running clock.

    :param out: output signal.
    :param period: clock period in seconds.
    :param duty: high fraction of the period (0 < duty < 1).
    :param start_delay: time of the first rising edge.
    :param start_low: when True the clock idles low until the first
        rising edge; when False it starts high.
    """

    def __init__(
        self,
        sim,
        name,
        out,
        period,
        duty=0.5,
        start_delay=0.0,
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        if period <= 0:
            raise ElaborationError(f"clock {name}: period must be positive")
        if not 0.0 < duty < 1.0:
            raise ElaborationError(f"clock {name}: duty must be in (0, 1)")
        self.out = out
        self.period = period
        self.high_time = period * duty
        self._driver = out.driver(owner=self)
        self._driver.set(Logic.L0)
        self.edges = 0
        sim.at(sim.now + start_delay, self._rise)

    def _rise(self):
        self._driver.set(Logic.L1)
        self.edges += 1
        self.sim.schedule(self.high_time, self._fall)

    def _fall(self):
        self._driver.set(Logic.L0)
        self.sim.schedule(self.period - self.high_time, self._rise)


class ResetGen(DigitalComponent):
    """An active-high reset pulse asserted from time 0 for ``duration``."""

    def __init__(self, sim, name, out, duration, parent=None):
        super().__init__(sim, name, parent=parent)
        self.out = out
        self._driver = out.driver(owner=self)
        self._driver.set(Logic.L1)
        sim.at(sim.now + duration, lambda: self._driver.set(Logic.L0))


class PulseGen(DigitalComponent):
    """A single pulse of a given polarity at a programmed time.

    Useful both as stimulus and as the *injection control signal* of
    the paper's saboteur (Figure 4), whose duration controls the pulse
    width PW.
    """

    def __init__(self, sim, name, out, start, width, active=Logic.L1, parent=None):
        super().__init__(sim, name, parent=parent)
        if width <= 0:
            raise ElaborationError(f"pulse {name}: width must be positive")
        self.out = out
        active = logic(active)
        idle = Logic.L0 if active.is_high() else Logic.L1
        self._driver = out.driver(owner=self)
        self._driver.set(idle)
        sim.at(sim.now + start, lambda: self._driver.set(active))
        sim.at(sim.now + start + width, lambda: self._driver.set(idle))


class SequencePlayer(DigitalComponent):
    """Drives a signal through a scripted ``(time, value)`` sequence."""

    def __init__(self, sim, name, out, script, parent=None):
        super().__init__(sim, name, parent=parent)
        self.out = out
        self._driver = out.driver(owner=self)
        last_time = None
        for time, value in script:
            if last_time is not None and time < last_time:
                raise ElaborationError(
                    f"sequence {name}: times must be non-decreasing"
                )
            last_time = time
            value = logic(value) if isinstance(value, (str, bool)) else value
            sim.at(sim.now + time, self._make_setter(value))

    def _make_setter(self, value):
        return lambda: self._driver.set(value)


class BusSequencePlayer(DigitalComponent):
    """Drives a bus through a scripted ``(time, int_value)`` sequence."""

    def __init__(self, sim, name, bus, script, parent=None):
        super().__init__(sim, name, parent=parent)
        self.bus = bus
        for time, value in script:
            sim.at(sim.now + time, self._make_setter(value))

    def _make_setter(self, value):
        return lambda: self.bus.drive_int(value)
