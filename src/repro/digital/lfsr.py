"""Linear-feedback shift registers.

LFSRs serve two roles in the campaign infrastructure: as *workload*
(pseudo-random stimulus generators, the classical BIST pattern source)
and as *targets* whose single-bit upsets derail the whole future
sequence — a good stress case for the classification stage.
"""

from __future__ import annotations

from functools import reduce

from ..core.component import DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, bits_from_int, logic_xor

#: Maximal-length Fibonacci tap sets (1-based bit indices, MSB = width).
MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    15: (15, 14),
    16: (16, 15, 13, 4),
}


class LFSR(DigitalComponent):
    """A Fibonacci LFSR over a state bus.

    On each rising clock edge the register shifts toward the MSB and
    bit 0 takes the XOR of the tap bits.  The all-zero state is a
    lock-up state, exactly like hardware — a fault campaign can land
    the register there, which the classifier then reports.

    :param q: state bus, width >= 2.
    :param taps: 1-based tap positions; default maximal-length taps
        when the width is in :data:`MAXIMAL_TAPS`.
    :param init: initial state (nonzero for free running).
    :param en: optional active-high shift enable (holds when low).
    """

    def __init__(self, sim, name, clk, q, taps=None, init=1, rst=None,
                 en=None, parent=None):
        super().__init__(sim, name, parent=parent)
        width = len(q)
        if width < 2:
            raise ElaborationError(f"lfsr {name}: width must be >= 2")
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise ElaborationError(
                    f"lfsr {name}: no default taps for width {width}; "
                    "pass taps explicitly"
                )
            taps = MAXIMAL_TAPS[width]
        for tap in taps:
            if not 1 <= tap <= width:
                raise ElaborationError(
                    f"lfsr {name}: tap {tap} out of range 1..{width}"
                )
        self.clk = clk
        self.q = q
        self.rst = rst
        self.en = en
        self.taps = tuple(taps)
        self.init = init
        self._drivers = [sig.driver(owner=self) for sig in q.bits]
        for drv, bit in zip(self._drivers, bits_from_int(init, width)):
            drv.set(bit)
        sensitivity = [clk] if rst is None else [clk, rst]
        self.process(self._tick, sensitivity=sensitivity)

    def _tick(self):
        from ..core.logic import logic

        if self.rst is not None and logic(self.rst.value).is_high():
            for drv, bit in zip(
                self._drivers, bits_from_int(self.init, len(self.q))
            ):
                drv.set(bit)
            return
        if not self.clk.rose():
            return
        if self.en is not None and not logic(self.en.value).is_high():
            return
        state = [sig.value for sig in self.q.bits]
        feedback = reduce(logic_xor, (state[tap - 1] for tap in self.taps))
        new_bits = [feedback] + state[:-1]
        for drv, bit in zip(self._drivers, new_bits):
            drv.set(bit)

    def state_signals(self):
        return self.q.state_map()

    @staticmethod
    def sequence(width, taps=None, init=1, steps=10):
        """Reference software model: the integer sequence the LFSR
        should produce (for known-answer tests and golden checks)."""
        if taps is None:
            taps = MAXIMAL_TAPS[width]
        state = init
        result = []
        for _ in range(steps):
            feedback = 0
            for tap in taps:
                feedback ^= (state >> (tap - 1)) & 1
            state = ((state << 1) | feedback) & ((1 << width) - 1)
            result.append(state)
        return result
