"""A small accumulator CPU — the processor-style campaign workload.

Reference [2] of the paper studies "bit-flip injection in processor-
based architectures"; this module provides that class of target: an
8-bit accumulator machine with a program counter, an accumulator, a
zero flag and a fetch/execute control FSM — all built on the library's
own sequential elements, so every architectural register is an
injectable SEU target with a distinct failure signature (PC upsets
derail control flow, ACC upsets corrupt data, flag upsets misroute
branches).

Instruction set (4-bit opcode, 4-bit operand):

=========  ====  =====================================
``NOP``    0x0   do nothing
``LDI n``  0x1   ACC <- n
``ADD n``  0x2   ACC <- ACC + n (mod 256), sets Z
``SUB n``  0x3   ACC <- ACC - n (mod 256), sets Z
``JMP a``  0x4   PC <- a
``JNZ a``  0x5   PC <- a when Z == 0
``OUT``    0x6   OUT <- ACC, pulses ``out_valid``
``HALT``   0x7   stop (PC holds)
=========  ====  =====================================

Programs are lists of ``(opcode << 4) | operand`` bytes, assembled with
:func:`assemble`.
"""

from __future__ import annotations

from ..core.component import Component, DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, logic
from .bus import Bus

#: Opcode table.
OPCODES = {
    "NOP": 0x0,
    "LDI": 0x1,
    "ADD": 0x2,
    "SUB": 0x3,
    "JMP": 0x4,
    "JNZ": 0x5,
    "OUT": 0x6,
    "HALT": 0x7,
}

_NEEDS_OPERAND = {"LDI", "ADD", "SUB", "JMP", "JNZ"}


def assemble(source):
    """Assemble ``[("LDI", 5), ("ADD", 3), ("OUT",), ...]`` into bytes.

    :raises ElaborationError: for unknown mnemonics, missing/extra
        operands or out-of-range values.
    """
    program = []
    for index, instruction in enumerate(source):
        mnemonic = instruction[0]
        if mnemonic not in OPCODES:
            raise ElaborationError(
                f"instruction {index}: unknown mnemonic {mnemonic!r}"
            )
        needs = mnemonic in _NEEDS_OPERAND
        if needs and len(instruction) != 2:
            raise ElaborationError(
                f"instruction {index}: {mnemonic} needs one operand"
            )
        if not needs and len(instruction) != 1:
            raise ElaborationError(
                f"instruction {index}: {mnemonic} takes no operand"
            )
        operand = instruction[1] if needs else 0
        if not 0 <= operand <= 15:
            raise ElaborationError(
                f"instruction {index}: operand {operand} out of range 0..15"
            )
        program.append((OPCODES[mnemonic] << 4) | operand)
    if len(program) > 16:
        raise ElaborationError(
            f"program has {len(program)} instructions; ROM holds 16"
        )
    return program


class Accumulator8(Component):
    """The CPU: ROM + PC + ACC + Z flag + output port.

    :param program: assembled bytes (max 16).
    :param clk: clock (one instruction per rising edge).
    :param rst: optional active-high reset (PC, ACC, Z to 0; restarts
        a halted machine).

    :ivar pc: 4-bit program-counter bus (injectable state).
    :ivar acc: 8-bit accumulator bus (injectable state).
    :ivar zflag: zero-flag signal (injectable state).
    :ivar out: 8-bit output bus, written by ``OUT``.
    :ivar out_valid: strobe raised for one cycle on each ``OUT``.
    :ivar halted: high once ``HALT`` executes.
    """

    def __init__(self, sim, name, clk, program, rst=None, parent=None):
        super().__init__(sim, name, parent=parent)
        if not program:
            raise ElaborationError(f"cpu {name}: empty program")
        if len(program) > 16:
            raise ElaborationError(f"cpu {name}: ROM holds 16 bytes")
        if any(not 0 <= b <= 255 for b in program):
            raise ElaborationError(f"cpu {name}: bytes must be 0..255")
        self.rom = list(program) + [OPCODES["HALT"] << 4] * (16 - len(program))
        self.clk = clk
        self.rst = rst
        path = self.path

        self.pc = Bus(sim, f"{path}.pc", 4, init=0)
        self.acc = Bus(sim, f"{path}.acc", 8, init=0)
        self.zflag = sim.signal(f"{path}.z", init=Logic.L1)
        self.out = Bus(sim, f"{path}.out", 8, init=0)
        self.out_valid = sim.signal(f"{path}.out_valid", init=Logic.L0)
        self.halted = sim.signal(f"{path}.halted", init=Logic.L0)

        self._pc_drv = [sig.driver(owner=self) for sig in self.pc.bits]
        self._acc_drv = [sig.driver(owner=self) for sig in self.acc.bits]
        self._z_drv = self.zflag.driver(owner=self)
        self._out_drv = [sig.driver(owner=self) for sig in self.out.bits]
        self._valid_drv = self.out_valid.driver(owner=self)
        self._halt_drv = self.halted.driver(owner=self)
        self.instructions_retired = 0

        core = DigitalComponent(sim, "core", parent=self)
        sensitivity = [clk] if rst is None else [clk, rst]
        core.process(self._step, sensitivity=sensitivity)

    # -- helpers -----------------------------------------------------------

    def _write_bus(self, drivers, width, value):
        from ..core.logic import bits_from_int

        for drv, bit in zip(drivers, bits_from_int(value % (1 << width),
                                                   width)):
            drv.set(bit)

    def _poison(self, drivers):
        for drv in drivers:
            drv.set(Logic.X)

    def _reset_state(self):
        self._write_bus(self._pc_drv, 4, 0)
        self._write_bus(self._acc_drv, 8, 0)
        self._z_drv.set(Logic.L1)
        self._valid_drv.set(Logic.L0)
        self._halt_drv.set(Logic.L0)

    # -- the fetch/execute step -----------------------------------------------

    def _step(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            self._reset_state()
            return
        if not self.clk.rose():
            return
        if logic(self.halted.value).is_high():
            return
        self._valid_drv.set(Logic.L0)

        pc = self.pc.to_int_or_none()
        if pc is None:
            # A corrupted PC fetches garbage; model as control-flow
            # escape to address 0 with poisoned data state.
            self._write_bus(self._pc_drv, 4, 0)
            self._poison(self._acc_drv)
            self._z_drv.set(Logic.X)
            return
        word = self.rom[pc]
        opcode = word >> 4
        operand = word & 0xF
        acc = self.acc.to_int_or_none()
        z = logic(self.zflag.value)
        next_pc = (pc + 1) % 16
        self.instructions_retired += 1

        if opcode == OPCODES["NOP"]:
            pass
        elif opcode == OPCODES["LDI"]:
            self._write_bus(self._acc_drv, 8, operand)
            self._z_drv.set(Logic.L1 if operand == 0 else Logic.L0)
        elif opcode in (OPCODES["ADD"], OPCODES["SUB"]):
            if acc is None:
                self._poison(self._acc_drv)
                self._z_drv.set(Logic.X)
            else:
                delta = operand if opcode == OPCODES["ADD"] else -operand
                result = (acc + delta) % 256
                self._write_bus(self._acc_drv, 8, result)
                self._z_drv.set(Logic.L1 if result == 0 else Logic.L0)
        elif opcode == OPCODES["JMP"]:
            next_pc = operand
        elif opcode == OPCODES["JNZ"]:
            if z.is_defined():
                if z.is_low():
                    next_pc = operand
            else:
                # Unknown flag: the branch goes an unknown way; model
                # the pessimistic case by poisoning the PC.
                self._poison(self._pc_drv)
                return
        elif opcode == OPCODES["OUT"]:
            if acc is None:
                self._poison(self._out_drv)
            else:
                self._write_bus(self._out_drv, 8, acc)
            self._valid_drv.set(Logic.L1)
        elif opcode == OPCODES["HALT"]:
            self._halt_drv.set(Logic.L1)
            return
        self._write_bus(self._pc_drv, 4, next_pc)

    def state_signals(self):
        state = self.pc.state_map(prefix="pc")
        state.update(self.acc.state_map(prefix="acc"))
        state["z"] = self.zflag
        return state

    @staticmethod
    def reference_run(program, max_steps=1000):
        """Pure-software golden model; returns the list of OUT values.

        Used by tests as the known answer for fault-free execution.
        """
        rom = list(program) + [OPCODES["HALT"] << 4] * (16 - len(program))
        pc, acc, z = 0, 0, True
        outputs = []
        for _ in range(max_steps):
            word = rom[pc]
            opcode, operand = word >> 4, word & 0xF
            next_pc = (pc + 1) % 16
            if opcode == OPCODES["LDI"]:
                acc = operand
                z = acc == 0
            elif opcode == OPCODES["ADD"]:
                acc = (acc + operand) % 256
                z = acc == 0
            elif opcode == OPCODES["SUB"]:
                acc = (acc - operand) % 256
                z = acc == 0
            elif opcode == OPCODES["JMP"]:
                next_pc = operand
            elif opcode == OPCODES["JNZ"]:
                if not z:
                    next_pc = operand
            elif opcode == OPCODES["OUT"]:
                outputs.append(acc)
            elif opcode == OPCODES["HALT"]:
                break
            pc = next_pc
        return outputs
