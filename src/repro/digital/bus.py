"""Multi-bit signal bundles.

A :class:`Bus` groups ``width`` :class:`~repro.core.signal.Signal`
objects (LSB first) and provides integer conversions with IEEE-1164
``X`` propagation: a bus containing any undefined bit has no integer
value, and behavioural blocks reading it emit unknowns — which is how
an injected bit-flip corrupts downstream words realistically.
"""

from __future__ import annotations

from ..core.errors import LogicValueError
from ..core.logic import Logic, bits_from_int, int_from_bits, logic, vector_string


class Bus:
    """An LSB-first bundle of digital signals.

    :param sim: owning simulator.
    :param name: base name; bit *i* is named ``"<name>[i]"``.
    :param width: number of bits (> 0).
    :param init: initial integer value, logic level, or list of levels.
    """

    def __init__(self, sim, name, width, init=Logic.U):
        if width <= 0:
            raise LogicValueError(f"bus width must be positive, got {width}")
        self.sim = sim
        self.name = name
        self.width = width
        if isinstance(init, int) and not isinstance(init, bool) and not isinstance(init, Logic):
            init_bits = bits_from_int(init, width)
        elif isinstance(init, (list, tuple)):
            if len(init) != width:
                raise LogicValueError(
                    f"init list has {len(init)} bits for width-{width} bus"
                )
            init_bits = [logic(b) for b in init]
        else:
            init_bits = [logic(init)] * width
        self.bits = [
            sim.signal(f"{name}[{i}]", init=init_bits[i]) for i in range(width)
        ]

    # -- container protocol ------------------------------------------------

    def __len__(self):
        return self.width

    def __getitem__(self, index):
        result = self.bits[index]
        return result

    def __iter__(self):
        return iter(self.bits)

    # -- value access ---------------------------------------------------------

    def to_int(self):
        """Integer value of the bus.

        :raises LogicValueError: if any bit is undefined.
        """
        return int_from_bits(sig.value for sig in self.bits)

    def to_int_or_none(self):
        """Integer value, or None when any bit is undefined."""
        try:
            return self.to_int()
        except LogicValueError:
            return None

    def values(self):
        """Current logic levels, LSB first."""
        return [sig.value for sig in self.bits]

    def __str__(self):
        return vector_string(sig.value for sig in self.bits)

    def is_defined(self):
        """True when every bit reads as 0 or 1."""
        return all(logic(sig.value).is_defined() for sig in self.bits)

    # -- driving ------------------------------------------------------------

    def drive_int(self, value, delay=0.0):
        """Drive all bits from an integer."""
        for sig, bit in zip(self.bits, bits_from_int(value, self.width)):
            sig.drive(bit, delay)

    def drive_levels(self, levels, delay=0.0):
        """Drive all bits from an LSB-first iterable of levels."""
        levels = [logic(level) for level in levels]
        if len(levels) != self.width:
            raise LogicValueError(
                f"got {len(levels)} levels for width-{self.width} bus"
            )
        for sig, level in zip(self.bits, levels):
            sig.drive(level, delay)

    def drive_all(self, level, delay=0.0):
        """Drive every bit to the same level."""
        level = logic(level)
        for sig in self.bits:
            sig.drive(level, delay)

    # -- fault-injection hooks -------------------------------------------------

    def deposit_int(self, value):
        """Immediately overwrite all bits from an integer."""
        for sig, bit in zip(self.bits, bits_from_int(value, self.width)):
            sig.deposit(bit)

    def state_map(self, prefix="q"):
        """Mapping ``"<prefix>[i]" -> bit signal`` for state_signals()."""
        return {f"{prefix}[{i}]": sig for i, sig in enumerate(self.bits)}

    def __repr__(self):
        return f"<Bus {self.name}[{self.width - 1}:0]={self}>"
