"""Digital substrate: gates, sequential elements, and behavioural blocks."""

from .alu import Adder, BusMux, Comparator, ParityGen, Subtractor
from .bus import Bus
from .clock import (
    BusSequencePlayer,
    ClockGen,
    PulseGen,
    ResetGen,
    SequencePlayer,
)
from .counter import ClockDivider, Counter, DownCounter
from .cpu import Accumulator8, OPCODES, assemble
from .fsm import MooreFSM, table_transition
from .gates import (
    AndGate,
    BufGate,
    Gate,
    Mux2,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    XnorGate,
    XorGate,
)
from .lfsr import LFSR, MAXIMAL_TAPS
from .seq import DFF, DLatch, Register, TFF
from .shiftreg import ShiftRegister

__all__ = [
    "Adder",
    "AndGate",
    "BufGate",
    "Bus",
    "BusMux",
    "BusSequencePlayer",
    "Accumulator8",
    "ClockDivider",
    "ClockGen",
    "Comparator",
    "Counter",
    "DFF",
    "DLatch",
    "DownCounter",
    "Gate",
    "LFSR",
    "MAXIMAL_TAPS",
    "MooreFSM",
    "Mux2",
    "NandGate",
    "NorGate",
    "OPCODES",
    "NotGate",
    "OrGate",
    "ParityGen",
    "PulseGen",
    "Register",
    "ResetGen",
    "SequencePlayer",
    "ShiftRegister",
    "Subtractor",
    "TFF",
    "XnorGate",
    "XorGate",
    "assemble",
    "table_transition",
]
