"""Sequential elements: flip-flops, latches and registers.

These are the SEU targets of the digital flow: each element exposes its
stored bit(s) through :meth:`state_signals`, which the mutant
instrumentation flips to model an upset (Section 2: "the consequence of
both SETs and SEUs in a synchronous digital block can be modeled at the
functional level by one or several bit-flip(s)").
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.logic import Logic, logic, logic_buf
from .bus import Bus


class DFF(DigitalComponent):
    """Positive-edge D flip-flop with optional asynchronous reset.

    :param d: data input signal.
    :param clk: clock signal (rising-edge triggered).
    :param q: output signal; holds the stored state.
    :param rst: optional active-high asynchronous reset.
    :param init: power-up value (default ``U``, like VHDL).
    """

    def __init__(self, sim, name, d, clk, q, rst=None, init=Logic.U, parent=None):
        super().__init__(sim, name, parent=parent)
        self.d = d
        self.clk = clk
        self.q = q
        self.rst = rst
        self._driver = q.driver(owner=self)
        self._driver.set(init)
        sensitivity = [clk] if rst is None else [clk, rst]
        self.process(self._tick, sensitivity=sensitivity)

    def _tick(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            self._driver.set(Logic.L0)
            return
        if self.clk.rose():
            self._driver.set(logic_buf(self.d.value))

    def state_signals(self):
        return {"q": self.q}


class TFF(DigitalComponent):
    """Positive-edge toggle flip-flop (divide-by-two element).

    Toggles ``q`` on every rising clock edge; an undefined stored value
    stays undefined until reset.  Used by ripple dividers such as the
    PLL feedback divider.
    """

    def __init__(self, sim, name, clk, q, rst=None, init=Logic.L0, parent=None):
        super().__init__(sim, name, parent=parent)
        self.clk = clk
        self.q = q
        self.rst = rst
        self._driver = q.driver(owner=self)
        self._driver.set(init)
        sensitivity = [clk] if rst is None else [clk, rst]
        self.process(self._tick, sensitivity=sensitivity)

    def _tick(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            self._driver.set(Logic.L0)
            return
        if self.clk.rose():
            current = logic(self.q.value)
            if current.is_defined():
                self._driver.set(Logic.L0 if current.is_high() else Logic.L1)
            else:
                self._driver.set(Logic.X)

    def state_signals(self):
        return {"q": self.q}


class DLatch(DigitalComponent):
    """Level-sensitive transparent latch: follows ``d`` while ``en``
    is high, holds while low."""

    def __init__(self, sim, name, d, en, q, init=Logic.U, parent=None):
        super().__init__(sim, name, parent=parent)
        self.d = d
        self.en = en
        self.q = q
        self._driver = q.driver(owner=self)
        self._driver.set(init)
        self.process(self._follow, sensitivity=[d, en])

    def _follow(self):
        if logic(self.en.value).is_high():
            self._driver.set(logic_buf(self.d.value))

    def state_signals(self):
        return {"q": self.q}


class Register(DigitalComponent):
    """A ``width``-bit positive-edge register over buses.

    :param d: input :class:`~repro.digital.bus.Bus`.
    :param q: output :class:`~repro.digital.bus.Bus` (stored state).
    :param en: optional active-high clock enable.
    :param rst: optional active-high asynchronous reset (to 0).
    """

    def __init__(self, sim, name, d, clk, q, en=None, rst=None, init=0, parent=None):
        super().__init__(sim, name, parent=parent)
        if len(d) != len(q):
            from ..core.errors import ElaborationError

            raise ElaborationError(
                f"register {name}: d is {len(d)} bits but q is {len(q)}"
            )
        self.d = d
        self.clk = clk
        self.q = q
        self.en = en
        self.rst = rst
        self._drivers = [sig.driver(owner=self) for sig in q.bits]
        from ..core.logic import bits_from_int

        for drv, bit in zip(self._drivers, bits_from_int(init, len(q))):
            drv.set(bit)
        sensitivity = [clk]
        if rst is not None:
            sensitivity.append(rst)
        self.process(self._tick, sensitivity=sensitivity)

    def _tick(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            for drv in self._drivers:
                drv.set(Logic.L0)
            return
        if not self.clk.rose():
            return
        if self.en is not None and not logic(self.en.value).is_high():
            return
        for drv, src in zip(self._drivers, self.d.bits):
            drv.set(logic_buf(src.value))

    def state_signals(self):
        return self.q.state_map()
