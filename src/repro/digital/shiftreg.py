"""Shift registers.

Like counters, the state lives in the output bus bits so mutant
bit-flips corrupt the stored word directly.
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.logic import Logic, logic, logic_buf


class ShiftRegister(DigitalComponent):
    """A serial-in shift register with optional parallel load.

    Shifts towards the MSB: on each rising clock edge bit *i+1* takes
    bit *i* and bit 0 takes the serial input.  When ``load`` is high
    the parallel input bus ``d`` is loaded instead.

    :param serial_in: serial data input signal.
    :param q: state/output bus.
    :param d: optional parallel-load bus (same width as ``q``).
    :param load: optional active-high parallel-load control.
    :param serial_out: optional signal mirroring the MSB.
    """

    def __init__(
        self,
        sim,
        name,
        clk,
        serial_in,
        q,
        d=None,
        load=None,
        serial_out=None,
        rst=None,
        init=0,
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        from ..core.errors import ElaborationError
        from ..core.logic import bits_from_int

        if (d is None) != (load is None):
            raise ElaborationError(
                f"shiftreg {name}: d and load must be given together"
            )
        if d is not None and len(d) != len(q):
            raise ElaborationError(
                f"shiftreg {name}: d is {len(d)} bits but q is {len(q)}"
            )
        self.clk = clk
        self.serial_in = serial_in
        self.q = q
        self.d = d
        self.load = load
        self.rst = rst
        self.serial_out = serial_out
        self._drivers = [sig.driver(owner=self) for sig in q.bits]
        for drv, bit in zip(self._drivers, bits_from_int(init, len(q))):
            drv.set(bit)
        self._so_driver = None
        if serial_out is not None:
            self._so_driver = serial_out.driver(owner=self)
            self._so_driver.set(q.bits[-1].value)
        sensitivity = [clk]
        if rst is not None:
            sensitivity.append(rst)
        self.process(self._tick, sensitivity=sensitivity)

    def _tick(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            for drv in self._drivers:
                drv.set(Logic.L0)
            if self._so_driver is not None:
                self._so_driver.set(Logic.L0)
            return
        if not self.clk.rose():
            return
        if self.load is not None and logic(self.load.value).is_high():
            new_bits = [logic_buf(sig.value) for sig in self.d.bits]
        else:
            current = [sig.value for sig in self.q.bits]
            new_bits = [logic_buf(self.serial_in.value)] + [
                logic_buf(v) for v in current[:-1]
            ]
        for drv, bit in zip(self._drivers, new_bits):
            drv.set(bit)
        if self._so_driver is not None:
            self._so_driver.set(new_bits[-1])

    def state_signals(self):
        return self.q.state_map()
