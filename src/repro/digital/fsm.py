"""Finite-state machines with injectable state registers.

Reference [11] of the paper models SEUs in control logic as *erroneous
transitions* of a finite state machine.  :class:`MooreFSM` realises
that: states are binary-encoded in a bus of flip-flop bits, so a
deposited bit-flip moves the machine to a *different* state — possibly
one with no incoming arc, or an invalid encoding — and the campaign
classifier observes the consequences.
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, bits_from_int, logic
from .bus import Bus


class MooreFSM(DigitalComponent):
    """A Moore machine with a binary-encoded state register.

    :param states: ordered list of state names; index = encoding.
    :param transition: callable ``(state_name, fsm) -> state_name``,
        reading input signals through ``fsm`` attributes or closures.
    :param moore_outputs: mapping ``signal -> (state_name -> level)``;
        output signals are driven combinationally from the state.
    :param inputs: signals the transition function reads; the state
        update is clocked, so these only need to be stable at the
        rising edge.
    :param reset_state: state entered on reset and after an invalid
        (out-of-range or undefined) encoding when ``on_invalid`` is
        ``"reset"``.
    :param on_invalid: ``"reset"`` (recover to ``reset_state``) or
        ``"hold"`` (stay, outputs X) — the recovery policy models how
        real control logic reacts to an illegal state.
    """

    def __init__(
        self,
        sim,
        name,
        clk,
        states,
        transition,
        moore_outputs=None,
        rst=None,
        reset_state=None,
        on_invalid="reset",
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        if not states:
            raise ElaborationError(f"fsm {name}: needs at least one state")
        if len(set(states)) != len(states):
            raise ElaborationError(f"fsm {name}: duplicate state names")
        if on_invalid not in ("reset", "hold"):
            raise ElaborationError(
                f"fsm {name}: on_invalid must be 'reset' or 'hold'"
            )
        self.clk = clk
        self.rst = rst
        self.states = list(states)
        self.encoding = {state: i for i, state in enumerate(self.states)}
        self.transition = transition
        self.reset_state = reset_state if reset_state is not None else states[0]
        if self.reset_state not in self.encoding:
            raise ElaborationError(
                f"fsm {name}: unknown reset state {self.reset_state!r}"
            )
        self.on_invalid = on_invalid
        width = max(1, (len(states) - 1).bit_length())
        self.state_bus = Bus(sim, f"{self.path}.state", width)
        self._drivers = [sig.driver(owner=self) for sig in self.state_bus.bits]
        self._encode(self.reset_state)
        self.moore_outputs = moore_outputs or {}
        self._out_drivers = {
            sig: sig.driver(owner=self) for sig in self.moore_outputs
        }
        self.invalid_entries = 0

        sensitivity = [clk]
        if rst is not None:
            sensitivity.append(rst)
        self.process(self._tick, sensitivity=sensitivity)
        for sig in self.state_bus.bits:
            sig.on_change(lambda _s: self._drive_outputs())
        self._drive_outputs()

    # -- state coding -------------------------------------------------------

    def _encode(self, state_name):
        code = self.encoding[state_name]
        for drv, bit in zip(self._drivers, bits_from_int(code, len(self.state_bus))):
            drv.set(bit)

    def current_state(self):
        """Current state name, or None for an invalid/undefined code."""
        code = self.state_bus.to_int_or_none()
        if code is None or code >= len(self.states):
            return None
        return self.states[code]

    # -- behaviour ----------------------------------------------------------

    def _tick(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            self._encode(self.reset_state)
            return
        if not self.clk.rose():
            return
        state = self.current_state()
        if state is None:
            self.invalid_entries += 1
            if self.on_invalid == "reset":
                self._encode(self.reset_state)
            return
        nxt = self.transition(state, self)
        if nxt not in self.encoding:
            raise ElaborationError(
                f"fsm {self.name}: transition returned unknown state {nxt!r}"
            )
        self._encode(nxt)

    def _drive_outputs(self):
        state = self.current_state()
        for sig, table in self.moore_outputs.items():
            if state is None:
                self._out_drivers[sig].set(Logic.X)
            else:
                self._out_drivers[sig].set(logic(table[state]))

    def state_signals(self):
        return self.state_bus.state_map(prefix="state")


def table_transition(table, default=None):
    """Build a transition callable from a nested dict.

    ``table[state]`` is either a state name (unconditional) or a
    callable ``fsm -> state name``.  ``default`` handles states missing
    from the table (self-loop when None).
    """

    def transition(state, fsm):
        entry = table.get(state, default)
        if entry is None:
            return state
        if callable(entry):
            return entry(fsm)
        return entry

    return transition
