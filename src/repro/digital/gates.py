"""Combinational gate library.

Gates are event-driven components computing nine-value logic with a
configurable propagation delay.  A non-zero delay gives transport
semantics; digital SET pulses (fault model ``SETPulse``) therefore
propagate and can be latched or missed depending on clock alignment,
as described in Section 2 of the paper.
"""

from __future__ import annotations

from functools import reduce

from ..core.component import DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import (
    logic_and,
    logic_buf,
    logic_nand,
    logic_nor,
    logic_not,
    logic_or,
    logic_xnor,
    logic_xor,
)


class Gate(DigitalComponent):
    """A combinational gate.

    :param fn: function mapping a list of input levels to one output
        level.
    :param inputs: input signals.
    :param output: output signal (driven through its own driver).
    :param delay: propagation delay in seconds.
    :param inertial: when True (and ``delay`` > 0), a new evaluation
        cancels any still-pending opposite transition — input pulses
        narrower than the gate delay never reach the output.  This is
        the *electrical masking* a real gate applies to SETs ("a
        voltage variation that **may** propagate through the gates",
        Section 2); transport mode (the default) passes every glitch.
    """

    def __init__(self, sim, name, fn, inputs, output, delay=0.0,
                 inertial=False, parent=None):
        super().__init__(sim, name, parent=parent)
        if not inputs:
            raise ElaborationError(f"gate {name} needs at least one input")
        self.fn = fn
        self.inputs = list(inputs)
        self.output = output
        self.delay = delay
        self.inertial = inertial
        self.filtered_glitches = 0
        self._driver = output.driver(owner=self)
        self._pending = None  # (event, value) of the in-flight update
        self.process(self._evaluate, sensitivity=self.inputs)

    def _evaluate(self):
        value = self.fn([sig.value for sig in self.inputs])
        if self.inertial and self.delay > 0:
            if self._pending is not None:
                event, pending_value = self._pending
                if not event.cancelled and pending_value != value:
                    # The input changed back before the earlier
                    # transition emerged: swallow it (inertial delay).
                    event.cancel()
                    self.filtered_glitches += 1
            if value == self.output.value and (
                self._pending is None or self._pending[0].cancelled
            ):
                self._pending = None
                return
        event = self._driver.set(value, self.delay)
        self._pending = (event, value)


def _reduce(op):
    def fn(values):
        return reduce(op, values)

    return fn


class NotGate(Gate):
    """Inverter."""

    def __init__(self, sim, name, a, y, delay=0.0, inertial=False,
                 parent=None):
        super().__init__(
            sim, name, lambda v: logic_not(v[0]), [a], y, delay=delay,
            inertial=inertial, parent=parent,
        )


class BufGate(Gate):
    """Buffer (strength strip, optional delay)."""

    def __init__(self, sim, name, a, y, delay=0.0, inertial=False,
                 parent=None):
        super().__init__(
            sim, name, lambda v: logic_buf(v[0]), [a], y, delay=delay,
            inertial=inertial, parent=parent,
        )


class AndGate(Gate):
    """N-input AND."""

    def __init__(self, sim, name, inputs, y, delay=0.0, inertial=False,
                 parent=None):
        super().__init__(sim, name, _reduce(logic_and), inputs, y, delay=delay,
                         inertial=inertial, parent=parent)


class OrGate(Gate):
    """N-input OR."""

    def __init__(self, sim, name, inputs, y, delay=0.0, inertial=False,
                 parent=None):
        super().__init__(sim, name, _reduce(logic_or), inputs, y, delay=delay,
                         inertial=inertial, parent=parent)


class XorGate(Gate):
    """N-input XOR (parity)."""

    def __init__(self, sim, name, inputs, y, delay=0.0, inertial=False,
                 parent=None):
        super().__init__(sim, name, _reduce(logic_xor), inputs, y, delay=delay,
                         inertial=inertial, parent=parent)


class NandGate(Gate):
    """N-input NAND."""

    def __init__(self, sim, name, inputs, y, delay=0.0, inertial=False,
                 parent=None):
        def fn(values):
            return logic_not(reduce(logic_and, values))

        super().__init__(sim, name, fn, inputs, y, delay=delay,
                         inertial=inertial, parent=parent)


class NorGate(Gate):
    """N-input NOR."""

    def __init__(self, sim, name, inputs, y, delay=0.0, inertial=False,
                 parent=None):
        def fn(values):
            return logic_not(reduce(logic_or, values))

        super().__init__(sim, name, fn, inputs, y, delay=delay,
                         inertial=inertial, parent=parent)


class XnorGate(Gate):
    """Two-input XNOR."""

    def __init__(self, sim, name, inputs, y, delay=0.0, inertial=False,
                 parent=None):
        super().__init__(sim, name, _reduce(logic_xnor), inputs, y, delay=delay,
                         inertial=inertial, parent=parent)


class Mux2(DigitalComponent):
    """Two-way multiplexer: ``y = a`` when ``sel`` is 0, ``b`` when 1.

    An undefined select propagates X unless both data inputs agree.
    """

    def __init__(self, sim, name, a, b, sel, y, delay=0.0, parent=None):
        super().__init__(sim, name, parent=parent)
        self.a, self.b, self.sel, self.y = a, b, sel, y
        self.delay = delay
        self._driver = y.driver(owner=self)
        self.process(self._evaluate, sensitivity=[a, b, sel])

    def _evaluate(self):
        from ..core.logic import Logic, logic

        sel = logic(self.sel.value).to_x01()
        if sel is Logic.L0:
            value = logic_buf(self.a.value)
        elif sel is Logic.L1:
            value = logic_buf(self.b.value)
        else:
            a = logic_buf(self.a.value)
            b = logic_buf(self.b.value)
            value = a if a is b else Logic.X
        self._driver.set(value, self.delay)
