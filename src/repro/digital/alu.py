"""Combinational arithmetic blocks over buses.

Word-level behavioural models with X-poisoning: any undefined input bit
makes the affected outputs undefined, so injected corruption propagates
pessimistically — the same abstraction a VHDL integer-based behavioural
model provides.
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, bits_from_int, logic


class _WordBlock(DigitalComponent):
    """Shared machinery: evaluate on any input-bit change, drive buses."""

    def __init__(self, sim, name, input_buses, input_signals, parent=None):
        super().__init__(sim, name, parent=parent)
        sensitivity = [sig for bus in input_buses for sig in bus.bits]
        sensitivity.extend(input_signals)
        self._sensitivity = sensitivity

    def _start(self):
        self.process(self._evaluate, sensitivity=self._sensitivity)

    def _drive_bus_int(self, drivers, width, value):
        for drv, bit in zip(drivers, bits_from_int(value % (1 << width), width)):
            drv.set(bit)

    def _drive_bus_x(self, drivers):
        for drv in drivers:
            drv.set(Logic.X)

    def _evaluate(self):
        raise NotImplementedError


class Adder(_WordBlock):
    """``s = a + b + cin`` with carry out.

    :param a, b: input buses of equal width.
    :param s: sum bus (same width).
    :param cin: optional carry-in signal.
    :param cout: optional carry-out signal.
    """

    def __init__(self, sim, name, a, b, s, cin=None, cout=None, parent=None):
        if len(a) != len(b) or len(a) != len(s):
            raise ElaborationError(f"adder {name}: bus widths differ")
        signals = [cin] if cin is not None else []
        super().__init__(sim, name, [a, b], signals, parent=parent)
        self.a, self.b, self.s = a, b, s
        self.cin, self.cout = cin, cout
        self._s_drivers = [sig.driver(owner=self) for sig in s.bits]
        self._cout_driver = cout.driver(owner=self) if cout is not None else None
        self._start()

    def _evaluate(self):
        a = self.a.to_int_or_none()
        b = self.b.to_int_or_none()
        carry = 0
        if self.cin is not None:
            level = logic(self.cin.value)
            if not level.is_defined():
                a = None
            carry = 1 if level.is_high() else 0
        if a is None or b is None:
            self._drive_bus_x(self._s_drivers)
            if self._cout_driver is not None:
                self._cout_driver.set(Logic.X)
            return
        total = a + b + carry
        width = len(self.s)
        self._drive_bus_int(self._s_drivers, width, total)
        if self._cout_driver is not None:
            self._cout_driver.set(
                Logic.L1 if total >= (1 << width) else Logic.L0
            )


class Subtractor(_WordBlock):
    """``d = a - b`` (two's complement wraparound), borrow flag out."""

    def __init__(self, sim, name, a, b, d, borrow=None, parent=None):
        if len(a) != len(b) or len(a) != len(d):
            raise ElaborationError(f"subtractor {name}: bus widths differ")
        super().__init__(sim, name, [a, b], [], parent=parent)
        self.a, self.b, self.d = a, b, d
        self.borrow = borrow
        self._d_drivers = [sig.driver(owner=self) for sig in d.bits]
        self._borrow_driver = (
            borrow.driver(owner=self) if borrow is not None else None
        )
        self._start()

    def _evaluate(self):
        a = self.a.to_int_or_none()
        b = self.b.to_int_or_none()
        if a is None or b is None:
            self._drive_bus_x(self._d_drivers)
            if self._borrow_driver is not None:
                self._borrow_driver.set(Logic.X)
            return
        self._drive_bus_int(self._d_drivers, len(self.d), a - b)
        if self._borrow_driver is not None:
            self._borrow_driver.set(Logic.L1 if a < b else Logic.L0)


class Comparator(_WordBlock):
    """Magnitude comparator driving eq/lt/gt flags."""

    def __init__(self, sim, name, a, b, eq=None, lt=None, gt=None, parent=None):
        if len(a) != len(b):
            raise ElaborationError(f"comparator {name}: bus widths differ")
        super().__init__(sim, name, [a, b], [], parent=parent)
        self.a, self.b = a, b
        self._flag_drivers = {}
        for flag_name, sig in (("eq", eq), ("lt", lt), ("gt", gt)):
            if sig is not None:
                self._flag_drivers[flag_name] = sig.driver(owner=self)
        if not self._flag_drivers:
            raise ElaborationError(
                f"comparator {name}: connect at least one of eq/lt/gt"
            )
        self._start()

    def _evaluate(self):
        a = self.a.to_int_or_none()
        b = self.b.to_int_or_none()
        if a is None or b is None:
            for drv in self._flag_drivers.values():
                drv.set(Logic.X)
            return
        results = {"eq": a == b, "lt": a < b, "gt": a > b}
        for flag_name, drv in self._flag_drivers.items():
            drv.set(Logic.L1 if results[flag_name] else Logic.L0)


class BusMux(_WordBlock):
    """Two-way bus multiplexer: ``y = a`` when sel=0 else ``b``."""

    def __init__(self, sim, name, a, b, sel, y, parent=None):
        if len(a) != len(b) or len(a) != len(y):
            raise ElaborationError(f"busmux {name}: bus widths differ")
        super().__init__(sim, name, [a, b], [sel], parent=parent)
        self.a, self.b, self.sel, self.y = a, b, sel, y
        self._y_drivers = [sig.driver(owner=self) for sig in y.bits]
        self._start()

    def _evaluate(self):
        from ..core.logic import logic_buf

        sel = logic(self.sel.value).to_x01()
        if sel is Logic.L0:
            source = self.a
        elif sel is Logic.L1:
            source = self.b
        else:
            for drv, abit, bbit in zip(self._y_drivers, self.a.bits, self.b.bits):
                av, bv = logic_buf(abit.value), logic_buf(bbit.value)
                drv.set(av if av is bv else Logic.X)
            return
        for drv, bit in zip(self._y_drivers, source.bits):
            drv.set(logic_buf(bit.value))


class ParityGen(_WordBlock):
    """Even-parity generator over a bus (XOR reduce)."""

    def __init__(self, sim, name, a, parity, parent=None):
        super().__init__(sim, name, [a], [], parent=parent)
        self.a = a
        self._driver = parity.driver(owner=self)
        self._start()

    def _evaluate(self):
        from functools import reduce

        from ..core.logic import logic_xor

        self._driver.set(reduce(logic_xor, (sig.value for sig in self.a.bits)))
