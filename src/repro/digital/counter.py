"""Counters and clock dividers.

State lives *in the output bus bits*, so a deposited bit-flip (mutant
SEU injection) corrupts the count exactly as it would in hardware: the
next increment proceeds from the corrupted word, and an undefined bit
poisons the whole word to ``X``.
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, bits_from_int, logic
from .bus import Bus


class Counter(DigitalComponent):
    """A ``width``-bit synchronous up counter.

    :param clk: clock (rising edge).
    :param q: output/state :class:`~repro.digital.bus.Bus`.
    :param rst: optional active-high asynchronous reset.
    :param en: optional active-high count enable.
    :param modulo: wrap value (default ``2**width``).
    """

    def __init__(
        self,
        sim,
        name,
        clk,
        q,
        rst=None,
        en=None,
        modulo=None,
        init=0,
        parent=None,
    ):
        super().__init__(sim, name, parent=parent)
        self.clk = clk
        self.q = q
        self.rst = rst
        self.en = en
        self.modulo = modulo if modulo is not None else (1 << len(q))
        if self.modulo > (1 << len(q)):
            raise ElaborationError(
                f"counter {name}: modulo {self.modulo} needs more than "
                f"{len(q)} bits"
            )
        self._drivers = [sig.driver(owner=self) for sig in q.bits]
        self._set_word(init)
        sensitivity = [clk]
        if rst is not None:
            sensitivity.append(rst)
        self.process(self._tick, sensitivity=sensitivity)

    def _set_word(self, value):
        for drv, bit in zip(self._drivers, bits_from_int(value, len(self.q))):
            drv.set(bit)

    def _set_unknown(self):
        for drv in self._drivers:
            drv.set(Logic.X)

    def _tick(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            self._set_word(0)
            return
        if not self.clk.rose():
            return
        if self.en is not None and not logic(self.en.value).is_high():
            return
        current = self.q.to_int_or_none()
        if current is None:
            self._set_unknown()
            return
        self._set_word((current + 1) % self.modulo)

    def state_signals(self):
        return self.q.state_map()


class DownCounter(Counter):
    """A ``width``-bit synchronous down counter (wraps at zero)."""

    def _tick(self):
        if self.rst is not None and logic(self.rst.value).is_high():
            self._set_word(self.modulo - 1)
            return
        if not self.clk.rose():
            return
        if self.en is not None and not logic(self.en.value).is_high():
            return
        current = self.q.to_int_or_none()
        if current is None:
            self._set_unknown()
            return
        self._set_word((current - 1) % self.modulo)


class ClockDivider(DigitalComponent):
    """Divide-by-N clock divider with a 50 %-ish duty output.

    Counts rising input edges; the output toggles every ``n // 2``
    (rounding up on the low phase for odd N).  The internal count is
    exposed as injectable state.  This is the behavioural model of the
    PLL's feedback divider (Figure 5).

    :param clk_in: input clock.
    :param clk_out: divided output signal.
    :param n: division ratio (>= 2).
    """

    def __init__(self, sim, name, clk_in, clk_out, n, parent=None):
        super().__init__(sim, name, parent=parent)
        if n < 2:
            raise ElaborationError(f"divider {name}: n must be >= 2, got {n}")
        self.n = n
        self.clk_in = clk_in
        self.clk_out = clk_out
        width = max(1, (n - 1).bit_length())
        self.count = Bus(sim, f"{self.path}.count", width, init=0)
        self._count_drivers = [sig.driver(owner=self) for sig in self.count.bits]
        for drv, bit in zip(self._count_drivers, bits_from_int(0, width)):
            drv.set(bit)
        self._out_driver = clk_out.driver(owner=self)
        self._out_driver.set(Logic.L0)
        self.half = n // 2
        self.process(self._tick, sensitivity=[clk_in])

    def _tick(self):
        if not self.clk_in.rose():
            return
        current = self.count.to_int_or_none()
        if current is None:
            # A corrupted count recovers at the next wrap comparison:
            # model the hardware by restarting the cycle, but flag the
            # output unknown for one input period.
            self._out_driver.set(Logic.X)
            self._set_count(0)
            return
        nxt = current + 1
        if nxt >= self.n:
            nxt = 0
        self._set_count(nxt)
        # High for counts [0, half), low for [half, n).
        self._out_driver.set(Logic.L1 if nxt < self.half else Logic.L0)

    def _set_count(self, value):
        for drv, bit in zip(
            self._count_drivers, bits_from_int(value, len(self.count))
        ):
            drv.set(bit)

    def state_signals(self):
        return self.count.state_map(prefix="count")
