"""Deriving trapezoid parameters from the double exponential (Fig. 1b).

The paper states the trapezoid's "parameter values can be derived from
the classical double exponential model, as illustrated in Figure 1(b)".
Two derivations are provided:

``fit_trapezoid(dexp, method="charge")``
    Analytic moment matching: the trapezoid takes the double
    exponential's **peak amplitude** and **total charge**, with RT set
    by the 10–90 % rise and FT by the 90–10 % fall of the reference
    waveform.  Cheap, deterministic, and what a designer would do by
    hand from a datasheet plot.

``fit_trapezoid(dexp, method="lsq")``
    Least-squares fit of the full waveform on a dense grid using
    ``scipy.optimize.least_squares``, starting from the analytic fit.
    Closest waveform in the L2 sense.

``fit_double_exp(trap)`` inverts the mapping (for round-trip checks).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import least_squares

from ..core.errors import FaultModelError
from .current_pulse import TrapezoidPulse
from .double_exp import DoubleExponentialPulse


def _crossing_time(pulse, level, t_lo, t_hi, rising, tol=1e-15):
    """Bisect for the time where ``|pulse.current|`` crosses ``level``."""
    sign = 1.0 if pulse.current(t_hi if rising else t_lo) >= 0 else -1.0

    def f(t):
        return sign * pulse.current(t) - level

    lo, hi = t_lo, t_hi
    f_lo = f(lo)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        f_mid = f(mid)
        if hi - lo < tol:
            break
        if (f_mid > 0) == (f_lo > 0):
            lo, f_lo = mid, f_mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def rise_fall_times(pulse, lo_frac=0.1, hi_frac=0.9):
    """10–90 % rise time and 90–10 % fall time of any transient.

    Returns ``(t_rise, t_fall, t_peak)`` measured on
    ``abs(pulse.current)``.
    """
    peak = pulse.peak()
    if peak <= 0:
        raise FaultModelError("pulse has zero peak; cannot measure edges")
    if hasattr(pulse, "t_peak"):
        t_peak = pulse.t_peak
    else:
        taus = np.linspace(0.0, pulse.duration, 4001)
        t_peak = float(taus[np.argmax(np.abs(pulse.current_array(taus)))])
    t_lo = _crossing_time(pulse, lo_frac * peak, 0.0, t_peak, rising=True)
    t_hi = _crossing_time(pulse, hi_frac * peak, 0.0, t_peak, rising=True)
    t_rise = t_hi - t_lo
    end = pulse.duration
    t_hi_f = _crossing_time(pulse, hi_frac * peak, t_peak, end, rising=False)
    t_lo_f = _crossing_time(pulse, lo_frac * peak, t_peak, end, rising=False)
    t_fall = t_lo_f - t_hi_f
    return t_rise, t_fall, t_peak


def fit_trapezoid(dexp, method="charge", grid_points=2000):
    """Derive a :class:`TrapezoidPulse` from a double exponential.

    :param dexp: the reference :class:`DoubleExponentialPulse`.
    :param method: ``"charge"`` (analytic peak+charge matching) or
        ``"lsq"`` (full-waveform least squares refinement).
    :raises FaultModelError: for unknown methods.
    """
    if method not in ("charge", "lsq"):
        raise FaultModelError(f"unknown fit method {method!r}")

    sign = 1.0 if dexp.i0 >= 0 else -1.0
    peak = dexp.peak()
    charge = abs(dexp.charge())
    t_rise, t_fall, _ = rise_fall_times(dexp)
    # Scale the measured 10-90% edges to full-swing equivalents.
    rt = t_rise / 0.8
    ft = t_fall / 0.8
    # Conserve charge: Q = PA*(PW - RT/2 + FT/2)  =>  solve for PW.
    pw = charge / peak + 0.5 * rt - 0.5 * ft
    if pw < rt:
        # Degenerate (triangle-like) case: shrink the edges together.
        scale = pw / rt if pw > 0 else 0.5
        rt *= max(scale, 1e-3)
        ft *= max(scale, 1e-3)
        pw = max(charge / peak + 0.5 * rt - 0.5 * ft, rt)
    analytic = TrapezoidPulse(sign * peak, rt, ft, pw)
    if method == "charge":
        return analytic

    # Least-squares refinement on a dense grid.
    horizon = max(dexp.tail_time(1e-3), analytic.duration)
    taus = np.linspace(0.0, horizon, grid_points)
    reference = dexp.current_array(taus)

    def residual(params):
        pa, rt_, ft_, pw_ = params
        rt_ = abs(rt_)
        ft_ = abs(ft_)
        pw_ = max(abs(pw_), rt_ + 1e-15)
        candidate = TrapezoidPulse(pa, rt_, ft_, pw_)
        return candidate.current_array(taus) - reference

    x0 = [analytic.pa, analytic.rt, analytic.ft, analytic.pw]
    solution = least_squares(residual, x0, method="lm", max_nfev=400)
    pa, rt_, ft_, pw_ = solution.x
    rt_ = abs(rt_)
    ft_ = abs(ft_)
    pw_ = max(abs(pw_), rt_ + 1e-15)
    return TrapezoidPulse(pa, rt_, ft_, pw_)


def fit_double_exp(trap):
    """Derive a :class:`DoubleExponentialPulse` matching a trapezoid.

    Matches peak amplitude and total charge, with the time constants
    chosen from the trapezoid edges (``tau_r = RT/2.2`` — 10–90 % rise
    of an RC edge — and ``tau_f`` from charge conservation).
    """
    peak = trap.peak()
    charge = abs(trap.charge())
    sign = 1.0 if trap.pa >= 0 else -1.0
    tau_r = max(trap.rt / 2.2, 1e-15)
    # Iterate: Q = I0*(tau_f - tau_r), peak depends on both.
    tau_f = max(charge / peak, tau_r * 1.5)
    for _ in range(60):
        probe = DoubleExponentialPulse(1.0, tau_r, tau_f)
        i0 = peak / probe.peak_current_of_unit()
        tau_f_new = charge / i0 + tau_r
        if tau_f_new <= tau_r:
            tau_f_new = tau_r * 1.0001
        if abs(tau_f_new - tau_f) < 1e-18:
            tau_f = tau_f_new
            break
        tau_f = 0.5 * (tau_f + tau_f_new)
    probe = DoubleExponentialPulse(1.0, tau_r, tau_f)
    i0 = peak / probe.peak_current_of_unit()
    return DoubleExponentialPulse(sign * i0, tau_r, tau_f)


def waveform_distance(pulse_a, pulse_b, grid_points=4000):
    """Normalised L2 distance between two transients.

    Returns ``||a - b||_2 / ||a||_2`` on a shared grid covering both
    supports — the figure of merit for the Figure 1b/Figure 7
    "very similar" claim.
    """
    horizon = max(pulse_a.duration, pulse_b.duration)
    taus = np.linspace(0.0, horizon, grid_points)
    a = pulse_a.current_array(taus)
    b = pulse_b.current_array(taus)
    norm = float(np.linalg.norm(a))
    if norm == 0:
        raise FaultModelError("reference pulse is identically zero")
    return float(np.linalg.norm(a - b)) / norm
