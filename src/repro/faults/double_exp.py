"""Messenger double-exponential current model (paper reference [12]).

The classical model for the current collected at a junction after an
ion track:

.. math:: I(t) = I_0 \\left( e^{-t/\\tau_f} - e^{-t/\\tau_r} \\right)

with collection time constant :math:`\\tau_f` larger than the track
establishment constant :math:`\\tau_r`.  The paper argues this model is
too expensive for large campaigns and proposes the trapezoid instead;
this class exists both as the baseline for the Figure 7 comparison and
as the source of fitted trapezoid parameters (Figure 1b).
"""

from __future__ import annotations

import math

from ..core.errors import FaultModelError
from ..core.units import format_quantity, parse_quantity
from .models import AnalogTransient, check_positive


class DoubleExponentialPulse(AnalogTransient):
    """Messenger double-exponential current pulse.

    :param i0: scale current :math:`I_0` (not the peak; see
        :meth:`from_peak`).
    :param tau_r: rise time constant (s).
    :param tau_f: fall time constant (s); must exceed ``tau_r``.
    """

    def __init__(self, i0, tau_r, tau_f):
        self.i0 = parse_quantity(i0, expect_unit="A")
        self.tau_r = check_positive("tau_r", parse_quantity(tau_r, expect_unit="s"))
        self.tau_f = check_positive("tau_f", parse_quantity(tau_f, expect_unit="s"))
        if self.i0 == 0:
            raise FaultModelError("i0 must be nonzero")
        if self.tau_f <= self.tau_r:
            raise FaultModelError(
                f"tau_f ({self.tau_f}) must exceed tau_r ({self.tau_r})"
            )

    @classmethod
    def from_peak(cls, ipeak, tau_r, tau_f):
        """Construct from the desired *peak* current instead of I0."""
        ipeak = parse_quantity(ipeak, expect_unit="A")
        tau_r = parse_quantity(tau_r, expect_unit="s")
        tau_f = parse_quantity(tau_f, expect_unit="s")
        probe = cls(1.0, tau_r, tau_f)
        unit_peak = probe.peak_current_of_unit()
        return cls(ipeak / unit_peak, tau_r, tau_f)

    @classmethod
    def from_charge(cls, charge, tau_r, tau_f):
        """Construct from the total collected charge in coulombs."""
        charge = parse_quantity(charge, expect_unit="C")
        tau_r = parse_quantity(tau_r, expect_unit="s")
        tau_f = parse_quantity(tau_f, expect_unit="s")
        return cls(charge / (tau_f - tau_r), tau_r, tau_f)

    # -- analytic properties -------------------------------------------------

    @property
    def t_peak(self):
        """Time of the current maximum (closed form)."""
        ratio = self.tau_f / self.tau_r
        return (self.tau_r * self.tau_f / (self.tau_f - self.tau_r)) * math.log(ratio)

    def peak_current_of_unit(self):
        """Peak of the unit-I0 waveform (used by :meth:`from_peak`)."""
        t = self.t_peak
        return math.exp(-t / self.tau_f) - math.exp(-t / self.tau_r)

    def peak(self):
        """Peak current magnitude (closed form)."""
        return abs(self.i0) * self.peak_current_of_unit()

    def charge(self, n=None):
        """Closed-form charge: ``I0 * (tau_f - tau_r)``."""
        return self.i0 * (self.tau_f - self.tau_r)

    @property
    def duration(self):
        """Effective support: time for the tail to decay to 0.01 % of
        the peak (the waveform is formally infinite)."""
        return self.tail_time(1e-4)

    def tail_time(self, fraction):
        """Time after which ``|I(t)|`` stays below ``fraction * peak``."""
        if not 0 < fraction < 1:
            raise FaultModelError("fraction must be in (0, 1)")
        # Tail is dominated by exp(-t/tau_f).
        target = fraction * self.peak() / abs(self.i0)
        return -self.tau_f * math.log(target) if target < 1 else 0.0

    def current(self, tau):
        """Instantaneous current at ``tau`` after onset (0 for tau<0)."""
        if tau < 0:
            return 0.0
        return self.i0 * (math.exp(-tau / self.tau_f) - math.exp(-tau / self.tau_r))

    def current_batch(self, tau):
        """Vectorized :meth:`current` over an array of offsets.

        .. caution:: ``np.exp`` and ``math.exp`` may differ in the
           last ULP, so this is *numerically* but not *bitwise*
           equivalent to elementwise :meth:`current` calls.  It is
           meant for waveform construction and fitting (Figures 1b/7);
           ensemble campaign batches therefore evaluate
           double-exponential variants with the scalar method to
           preserve their bit-identity contract.
        """
        import numpy as np

        tau = np.asarray(tau, dtype=float)
        wave = self.i0 * (np.exp(-tau / self.tau_f) - np.exp(-tau / self.tau_r))
        return np.where(tau < 0, 0.0, wave)

    def suggested_dt(self, points_per_edge=8):
        """A step resolving the rise time constant."""
        return self.tau_r / points_per_edge

    def parameters(self):
        """Dict of the model parameters (floats, SI units)."""
        return {"i0": self.i0, "tau_r": self.tau_r, "tau_f": self.tau_f}

    def describe(self):
        return (
            f"double-exp(I0={format_quantity(self.i0, 'A')}, "
            f"tau_r={format_quantity(self.tau_r, 's')}, "
            f"tau_f={format_quantity(self.tau_f, 's')})"
        )

    def __repr__(self):
        return (
            f"DoubleExponentialPulse(i0={self.i0!r}, tau_r={self.tau_r!r}, "
            f"tau_f={self.tau_f!r})"
        )
