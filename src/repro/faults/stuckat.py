"""Stuck-at fault model for digital wires and state.

The classical permanent fault model, retained because campaign
infrastructure built for transients classifies stuck-ats for free:
forcing a signal to a fixed level over a window (or forever) covers
both manufacturing-defect screening and long-duration transients.
"""

from __future__ import annotations

from ..core.errors import FaultModelError
from ..core.logic import logic
from ..core.units import format_quantity, parse_quantity
from .models import DigitalFault


class StuckAt(DigitalFault):
    """A signal pinned to a fixed logic level.

    :param target: signal name.
    :param value: the pinned level (anything :func:`repro.core.logic`
        accepts: 0, 1, '0', '1', 'X', ...).
    :param t_start: activation time (default 0).
    :param t_end: release time (None = permanent).
    """

    family = "stuck-at"

    def __init__(self, target, value, t_start=0.0, t_end=None):
        if not isinstance(target, str) or not target:
            raise FaultModelError(f"invalid stuck-at target {target!r}")
        self.target = target
        self.value = logic(value)
        self.t_start = parse_quantity(t_start, expect_unit="s")
        self.t_end = parse_quantity(t_end, expect_unit="s") if t_end is not None else None
        if self.t_start < 0:
            raise FaultModelError("t_start must be >= 0")
        if self.t_end is not None and self.t_end <= self.t_start:
            raise FaultModelError("t_end must exceed t_start")

    def describe(self):
        window = f"@ {format_quantity(self.t_start, 's')}"
        if self.t_end is not None:
            window += f"..{format_quantity(self.t_end, 's')}"
        return f"stuck-at-{self.value.char} {window} on {self.target}"

    def __repr__(self):
        return (
            f"StuckAt({self.target!r}, {self.value.char!r}, "
            f"t_start={self.t_start!r}, t_end={self.t_end!r})"
        )
