"""SEU bit-flip fault models for digital state (Section 2).

"The consequence of both SETs and SEUs in a synchronous digital block
can be modeled at the functional level by one or several bit-flip(s)"
— these classes describe exactly that: which memory element(s) to
flip, and when.  Targets are qualified state names as produced by
:func:`repro.core.hierarchy.collect_state_signals`
(``"<component path>.<state name>"``).
"""

from __future__ import annotations

from ..core.errors import FaultModelError
from ..core.units import format_quantity, parse_quantity
from .models import DigitalFault


class BitFlip(DigitalFault):
    """A single-event upset: one stored bit inverts at one instant.

    :param target: qualified state-signal name.
    :param time: injection time in seconds (or ``"170us"`` style).
    """

    family = "seu"

    def __init__(self, target, time):
        if not isinstance(target, str) or not target:
            raise FaultModelError(f"invalid bit-flip target {target!r}")
        self.target = target
        self.time = parse_quantity(time, expect_unit="s")
        if self.time < 0:
            raise FaultModelError(f"injection time must be >= 0, got {self.time}")

    def targets(self):
        """The state names this fault corrupts (one)."""
        return (self.target,)

    def describe(self):
        return f"SEU bit-flip @ {format_quantity(self.time, 's')} on {self.target}"

    def __repr__(self):
        return f"BitFlip({self.target!r}, {self.time!r})"

    def __eq__(self, other):
        if not isinstance(other, BitFlip):
            return NotImplemented
        return (self.target, self.time) == (other.target, other.time)

    def __hash__(self):
        return hash((type(self).__name__, self.target, self.time))


class MultipleBitUpset(DigitalFault):
    """Several bits flip simultaneously (an MBU / MCU event).

    :param targets: qualified state-signal names (>= 2, distinct).
    :param time: injection time in seconds.
    """

    family = "mbu"

    def __init__(self, targets, time):
        targets = tuple(targets)
        if len(targets) < 2:
            raise FaultModelError("an MBU needs at least two targets")
        if len(set(targets)) != len(targets):
            raise FaultModelError("MBU targets must be distinct")
        self._targets = targets
        self.time = parse_quantity(time, expect_unit="s")
        if self.time < 0:
            raise FaultModelError(f"injection time must be >= 0, got {self.time}")

    def targets(self):
        """The state names this fault corrupts."""
        return self._targets

    def describe(self):
        names = ", ".join(self._targets)
        return f"MBU ({len(self._targets)} bits) @ {format_quantity(self.time, 's')} on {names}"

    def __repr__(self):
        return f"MultipleBitUpset({self._targets!r}, {self.time!r})"

    def __eq__(self, other):
        if not isinstance(other, MultipleBitUpset):
            return NotImplemented
        return (self._targets, self.time) == (other._targets, other.time)

    def __hash__(self):
        return hash((type(self).__name__, self._targets, self.time))
