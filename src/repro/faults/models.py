"""Fault-model base classes.

A fault model is a pure *description* of a disturbance — its shape,
target and timing — decoupled from the mechanism that realises it in a
simulation (saboteur or mutant, :mod:`repro.injection`).  That split
mirrors the paper's flow, where the campaign definition supplies the
pulse parameters and injection times, and the instrumented circuit
carries the machinery.

Two families exist:

* :class:`AnalogTransient` — a current waveform ``i(t)`` superposed on
  a circuit node (Section 2, Figure 1): the trapezoid model and the
  Messenger double exponential.
* :class:`DigitalFault` — value corruption of digital state or wires:
  SEU bit-flips, multiple-bit upsets, SET pulses, stuck-ats.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import FaultModelError


class FaultModel:
    """Common base for all fault descriptions."""

    #: Short machine-readable family tag used in reports.
    family = "generic"

    def describe(self):
        """One-line human-readable description for campaign reports."""
        return repr(self)


class AnalogTransient(FaultModel):
    """A transient current waveform injected on an analog node.

    Subclasses implement :meth:`current` (amperes at ``tau`` seconds
    after injection start) and :attr:`duration`.  :meth:`charge`
    integrates the waveform; :meth:`suggested_dt` recommends a solver
    refinement step resolving the fastest edge.
    """

    family = "analog-transient"

    @property
    def duration(self):
        """Support of the waveform in seconds (0 outside [0, duration])."""
        raise NotImplementedError

    def current(self, tau):
        """Instantaneous current at ``tau`` seconds after onset."""
        raise NotImplementedError

    def current_array(self, taus):
        """Vectorised :meth:`current` over a numpy array of times."""
        taus = np.asarray(taus, dtype=float)
        return np.array([self.current(t) for t in taus.ravel()]).reshape(taus.shape)

    def charge(self, n=20001):
        """Total injected charge in coulombs (numeric by default).

        Subclasses with closed forms override this.
        """
        taus = np.linspace(0.0, self.duration, n)
        return float(np.trapezoid(self.current_array(taus), taus))

    def peak(self):
        """Peak current magnitude in amperes (numeric by default)."""
        taus = np.linspace(0.0, self.duration, 20001)
        return float(np.max(np.abs(self.current_array(taus))))

    def suggested_dt(self, points_per_edge=8):
        """Solver timestep resolving the fastest feature of the pulse."""
        raise NotImplementedError


class DigitalFault(FaultModel):
    """Base for digital value-corruption faults."""

    family = "digital"


def check_positive(name, value, allow_zero=False):
    """Validate a fault parameter; returns the float value.

    :raises FaultModelError: when negative (or zero, unless allowed).
    """
    value = float(value)
    if value < 0 or (value == 0 and not allow_zero):
        kind = "non-negative" if allow_zero else "positive"
        raise FaultModelError(f"{name} must be {kind}, got {value}")
    return value
