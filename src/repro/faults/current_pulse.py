"""The paper's proposed current-pulse model (Section 2, Figure 1a).

A trapezoidal current spike parameterised exactly as in the paper:

* **PA** — pulse amplitude (A),
* **RT** — rising time (s): current ramps 0 → PA over ``[0, RT]``,
* **PW** — pulse width (s): the *injection control* duration; the
  plateau at PA lasts from RT until PW (matching the Figure 4 VHDL-AMS
  saboteur, where the ramp chases the control target so the plateau is
  ``PW - RT`` long),
* **FT** — falling time (s): current ramps PA → 0 over
  ``[PW, PW + FT]``.

The model deliberately trades the physical fidelity of the Messenger
double exponential for a small parameter count and cheap evaluation,
"to simplify the simulations and reduce the fault injection experiment
duration"; :mod:`repro.faults.fitting` derives its parameters from a
double exponential (Figure 1b).
"""

from __future__ import annotations

import numpy as np

from ..core import kernels as _kernels
from ..core.errors import FaultModelError
from ..core.units import format_quantity, parse_quantity
from .models import AnalogTransient, check_positive


class TrapezoidPulse(AnalogTransient):
    """Trapezoidal current pulse (PA, RT, FT, PW).

    Parameters accept floats (SI units) or engineering strings
    (``"10mA"``, ``"500ps"``).

    :param pa: pulse amplitude; sign selects injection polarity.
    :param rt: rising time.
    :param ft: falling time.
    :param pw: pulse width (control-signal duration, >= rt).
    """

    def __init__(self, pa, rt, ft, pw):
        self.pa = parse_quantity(pa, expect_unit="A")
        self.rt = check_positive("rt", parse_quantity(rt, expect_unit="s"), allow_zero=True)
        self.ft = check_positive("ft", parse_quantity(ft, expect_unit="s"), allow_zero=True)
        self.pw = check_positive("pw", parse_quantity(pw, expect_unit="s"))
        if self.pa == 0:
            raise FaultModelError("pulse amplitude must be nonzero")
        if self.pw < self.rt:
            raise FaultModelError(
                f"pulse width {self.pw} shorter than rising time {self.rt}; "
                "the current never reaches the plateau"
            )

    # -- waveform ------------------------------------------------------

    @property
    def duration(self):
        """Total support: ``PW + FT``."""
        return self.pw + self.ft

    @property
    def plateau(self):
        """Flat-top duration: ``PW - RT``."""
        return self.pw - self.rt

    def current(self, tau):
        """Piecewise-linear current at ``tau`` after onset."""
        if tau < 0 or tau >= self.duration:
            return 0.0
        if tau < self.rt:
            return self.pa * tau / self.rt
        if tau < self.pw:
            return self.pa
        return self.pa * (1.0 - (tau - self.pw) / self.ft) if self.ft else 0.0

    def current_batch(self, tau):
        """Vectorized :meth:`current` over an array of offsets.

        Bitwise identical to calling :meth:`current` per element (the
        branches become selections and the arithmetic is the same
        elementwise IEEE-754 expression), which is what lets ensemble
        campaign batches evaluate every variant's pulse at once
        without perturbing results.
        """
        tau = np.asarray(tau, dtype=float)
        return trapezoid_currents(
            tau, self.pa, self.rt, self.ft, self.pw, self.duration
        )

    def charge(self, n=None):
        """Closed-form charge: ``PA * (PW - RT/2 + FT/2)``."""
        return self.pa * (self.pw - 0.5 * self.rt + 0.5 * self.ft)

    def peak(self):
        """Peak magnitude ``|PA|``."""
        return abs(self.pa)

    def suggested_dt(self, points_per_edge=8):
        """A step resolving the fastest edge with ``points_per_edge``."""
        fastest = min(x for x in (self.rt, self.ft, self.plateau) if x > 0)
        return fastest / points_per_edge

    def breakpoints(self):
        """The waveform's corner times (for exact solver alignment)."""
        return (0.0, self.rt, self.pw, self.pw + self.ft)

    # -- convenience ---------------------------------------------------------

    def scaled(self, amplitude_factor=1.0, time_factor=1.0):
        """A new pulse with scaled amplitude and/or stretched time axis."""
        return TrapezoidPulse(
            self.pa * amplitude_factor,
            self.rt * time_factor,
            self.ft * time_factor,
            self.pw * time_factor,
        )

    def parameters(self):
        """Dict of the four paper parameters (floats, SI units)."""
        return {"pa": self.pa, "rt": self.rt, "ft": self.ft, "pw": self.pw}

    def describe(self):
        return (
            f"trapezoid(PA={format_quantity(self.pa, 'A')}, "
            f"RT={format_quantity(self.rt, 's')}, "
            f"FT={format_quantity(self.ft, 's')}, "
            f"PW={format_quantity(self.pw, 's')})"
        )

    def __repr__(self):
        return f"TrapezoidPulse(pa={self.pa!r}, rt={self.rt!r}, ft={self.ft!r}, pw={self.pw!r})"

    def __eq__(self, other):
        if not isinstance(other, TrapezoidPulse):
            return NotImplemented
        return self.parameters() == other.parameters()

    def __hash__(self):
        return hash((self.pa, self.rt, self.ft, self.pw))


def stack_trapezoids(pulses):
    """Struct-of-arrays parameters for a sequence of trapezoid pulses.

    :returns: dict of parallel float64 arrays ``pa``, ``rt``, ``ft``,
        ``pw``, ``duration`` — the layout :func:`trapezoid_currents`
        (and the ensemble saboteur plan) evaluates in one shot.
    """
    for pulse in pulses:
        if not isinstance(pulse, TrapezoidPulse):
            raise FaultModelError(
                f"stack_trapezoids: {pulse!r} is not a TrapezoidPulse"
            )
    return {
        "pa": np.array([p.pa for p in pulses]),
        "rt": np.array([p.rt for p in pulses]),
        "ft": np.array([p.ft for p in pulses]),
        "pw": np.array([p.pw for p in pulses]),
        "duration": np.array([p.duration for p in pulses]),
    }


def trapezoid_currents(tau, pa, rt, ft, pw, duration):
    """Vectorized :meth:`TrapezoidPulse.current` over parallel arrays.

    All arguments broadcast: one pulse over many offsets, or one
    offset per pulse (the ensemble case, where ``tau = t - t0`` per
    batch variant).  Each element evaluates exactly the scalar
    method's expression for its selected branch, so results are
    bit-identical to the scalar piecewise evaluation; out-of-support
    elements are exactly ``0.0``.

    The struct-of-arrays case — every argument a float64 array of the
    same 1-D shape, which is what the ensemble saboteur plan passes
    per solver step — dispatches to the optional compiled kernel (see
    :mod:`repro.core.kernels`); its import-time self-check guarantees
    the jitted loop is bitwise identical to this fallback.
    """
    if _kernels.USE_NUMBA and isinstance(tau, np.ndarray) and tau.ndim == 1:
        args = (pa, rt, ft, pw, duration)
        if all(
            isinstance(a, np.ndarray)
            and a.shape == tau.shape
            and a.dtype == np.float64
            for a in args
        ) and tau.dtype == np.float64:
            out = np.empty_like(tau)
            return _kernels.trapezoid_currents_kernel(
                tau, pa, rt, ft, pw, duration, out
            )
    with np.errstate(divide="ignore", invalid="ignore"):
        rise = pa * tau / rt
        fall = pa * (1.0 - (tau - pw) / ft)
    out = np.where(
        tau < rt,
        rise,
        np.where(tau < pw, pa, np.where(ft != 0.0, fall, 0.0)),
    )
    return np.where((tau < 0) | (tau >= duration), 0.0, out)


#: The paper's Figure 6 reference pulse: a typical SEU-like strike
#: (10 mA is called "a typical amplitude value" in Section 5.2).
FIGURE6_PULSE = TrapezoidPulse(pa="10mA", rt="100ps", ft="300ps", pw="500ps")

#: The four Figure 8 parameter sets (PA, RT, FT, PW).
FIGURE8_PULSES = (
    TrapezoidPulse(pa="2mA", rt="100ps", ft="100ps", pw="300ps"),
    TrapezoidPulse(pa="8mA", rt="100ps", ft="100ps", pw="300ps"),
    TrapezoidPulse(pa="10mA", rt="40ps", ft="40ps", pw="120ps"),
    TrapezoidPulse(pa="10mA", rt="180ps", ft="180ps", pw="540ps"),
)
