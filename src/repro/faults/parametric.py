"""Parametric fault model for analog behavioural blocks.

The state of the art the paper improves upon: references such as [10]
inject faults in analog behavioural descriptions "by modifying the
equations describing the behavior, i.e. by injecting parametric
faults".  Such faults represent process variation or aging — *not*
transients — and the paper keeps them available for the cases where
they are significant (Section 4.1).  This model changes a named
attribute of a behavioural block (e.g. ``kvco`` of the VCO, ``gain``
of an op-amp), permanently or over a time window.
"""

from __future__ import annotations

from ..core.errors import FaultModelError
from ..core.units import format_quantity, parse_quantity
from .models import FaultModel


class ParametricFault(FaultModel):
    """A deviation of one behavioural-model parameter.

    Exactly one of ``factor`` (multiplicative) or ``delta`` (additive)
    must be given.

    :param component: hierarchical path of the target block.
    :param attribute: name of the numeric attribute to modify.
    :param factor: multiply the nominal value by this.
    :param delta: add this to the nominal value.
    :param t_start: activation time (default 0: present from power-up,
        like a process defect).
    :param t_end: optional restoration time (None = permanent).
    """

    family = "parametric"

    def __init__(self, component, attribute, factor=None, delta=None,
                 t_start=0.0, t_end=None):
        if not component or not attribute:
            raise FaultModelError("component and attribute are required")
        if (factor is None) == (delta is None):
            raise FaultModelError("give exactly one of factor or delta")
        self.component = component
        self.attribute = attribute
        self.factor = float(factor) if factor is not None else None
        self.delta = float(delta) if delta is not None else None
        self.t_start = parse_quantity(t_start, expect_unit="s")
        self.t_end = parse_quantity(t_end, expect_unit="s") if t_end is not None else None
        if self.t_start < 0:
            raise FaultModelError("t_start must be >= 0")
        if self.t_end is not None and self.t_end <= self.t_start:
            raise FaultModelError("t_end must exceed t_start")

    def faulty_value(self, nominal):
        """The parameter value while the fault is active."""
        if self.factor is not None:
            return nominal * self.factor
        return nominal + self.delta

    def describe(self):
        change = (
            f"x{self.factor:g}" if self.factor is not None else f"{self.delta:+g}"
        )
        window = f"@ {format_quantity(self.t_start, 's')}"
        if self.t_end is not None:
            window += f"..{format_quantity(self.t_end, 's')}"
        return f"parametric {self.component}.{self.attribute} {change} {window}"

    def __repr__(self):
        return (
            f"ParametricFault({self.component!r}, {self.attribute!r}, "
            f"factor={self.factor!r}, delta={self.delta!r}, "
            f"t_start={self.t_start!r}, t_end={self.t_end!r})"
        )
