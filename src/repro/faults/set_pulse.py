"""Digital single-event-transient pulse model.

A SET in combinational logic is "a voltage variation that may propagate
through the gates until it is eventually captured (or not) in a
flip-flop" (Section 2).  At the functional level this is a temporary
value corruption of a wire: the signal is pinned to the disturbed value
for the pulse width, then released to its driven value.  Whether the
glitch is latched depends on its alignment with the capturing clock —
the behaviour the digital campaign explores by sweeping the injection
time within a cycle.
"""

from __future__ import annotations

from ..core.errors import FaultModelError
from ..core.units import format_quantity, parse_quantity
from .models import DigitalFault


class SETPulse(DigitalFault):
    """A transient value pulse on a digital wire.

    :param target: signal name (a wire, not necessarily state).
    :param time: pulse start time in seconds.
    :param width: pulse duration in seconds.
    :param value: the disturbed level; None means "invert the value
        present at injection time" (the usual SET abstraction).
    """

    family = "set"

    def __init__(self, target, time, width, value=None):
        if not isinstance(target, str) or not target:
            raise FaultModelError(f"invalid SET target {target!r}")
        self.target = target
        self.time = parse_quantity(time, expect_unit="s")
        self.width = parse_quantity(width, expect_unit="s")
        if self.time < 0:
            raise FaultModelError(f"pulse time must be >= 0, got {self.time}")
        if self.width <= 0:
            raise FaultModelError(f"pulse width must be positive, got {self.width}")
        self.value = value

    def describe(self):
        what = "invert" if self.value is None else f"force {self.value}"
        return (
            f"SET pulse @ {format_quantity(self.time, 's')} "
            f"({format_quantity(self.width, 's')}, {what}) on {self.target}"
        )

    def __repr__(self):
        return (
            f"SETPulse({self.target!r}, {self.time!r}, {self.width!r}, "
            f"value={self.value!r})"
        )
