"""Fault models: the paper's Section 2 plus the classical alternatives."""

from .bitflip import BitFlip, MultipleBitUpset
from .current_pulse import FIGURE6_PULSE, FIGURE8_PULSES, TrapezoidPulse
from .double_exp import DoubleExponentialPulse
from .fitting import (
    fit_double_exp,
    fit_trapezoid,
    rise_fall_times,
    waveform_distance,
)
from .models import AnalogTransient, DigitalFault, FaultModel
from .parametric import ParametricFault
from .set_pulse import SETPulse
from .stuckat import StuckAt

__all__ = [
    "AnalogTransient",
    "BitFlip",
    "DigitalFault",
    "DoubleExponentialPulse",
    "FIGURE6_PULSE",
    "FIGURE8_PULSES",
    "FaultModel",
    "MultipleBitUpset",
    "ParametricFault",
    "SETPulse",
    "StuckAt",
    "TrapezoidPulse",
    "fit_double_exp",
    "fit_trapezoid",
    "rise_fall_times",
    "waveform_distance",
]
