"""Majority voters.

The combinational core of every triple-modular-redundancy scheme.  The
paper's motivation names the second use of early fault injection as
"validate the efficiency of the implemented mechanisms" — these are
those mechanisms, built from the same substrate so the same campaigns
validate them.
"""

from __future__ import annotations

from ..core.component import DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, logic, logic_buf


class MajorityVoter(DigitalComponent):
    """Bitwise 2-of-3 majority.

    Undefined inputs are out-voted when the other two agree — the
    property that makes TMR mask a single upset; two undefined or
    disagreeing inputs yield X.

    :param a, b, c: input signals.
    :param y: output signal.
    """

    def __init__(self, sim, name, a, b, c, y, delay=0.0, parent=None):
        super().__init__(sim, name, parent=parent)
        self.inputs = [a, b, c]
        self.y = y
        self.delay = delay
        self._driver = y.driver(owner=self)
        self.process(self._vote, sensitivity=self.inputs)

    def _vote(self):
        self._driver.set(majority(*(sig.value for sig in self.inputs)),
                         self.delay)


def majority(a, b, c):
    """2-of-3 majority over nine-value logic.

    Any two inputs that agree on a defined level win, regardless of
    the third; otherwise X.
    """
    levels = [logic(v).to_x01() for v in (a, b, c)]
    for first in range(3):
        for second in range(first + 1, 3):
            if (
                levels[first] is levels[second]
                and levels[first] is not Logic.X
            ):
                return levels[first]
    return Logic.X


class BusMajorityVoter(DigitalComponent):
    """Bitwise majority over three equal-width buses."""

    def __init__(self, sim, name, a, b, c, y, parent=None):
        super().__init__(sim, name, parent=parent)
        if not (len(a) == len(b) == len(c) == len(y)):
            raise ElaborationError(f"voter {name}: bus widths differ")
        self.a, self.b, self.c, self.y = a, b, c, y
        self._drivers = [sig.driver(owner=self) for sig in y.bits]
        sensitivity = list(a.bits) + list(b.bits) + list(c.bits)
        self.process(self._vote, sensitivity=sensitivity)

    def _vote(self):
        for drv, bit_a, bit_b, bit_c in zip(
            self._drivers, self.a.bits, self.b.bits, self.c.bits
        ):
            drv.set(majority(bit_a.value, bit_b.value, bit_c.value))


class DisagreementMonitor(DigitalComponent):
    """Flags whenever the three TMR copies are not unanimous.

    Real TMR systems expose this as a scrubbing/maintenance signal: the
    fault is *masked* at the voter but the error is *latent* in one
    copy until repaired.  Campaigns monitor it to count masked events.
    """

    def __init__(self, sim, name, a, b, c, mismatch, parent=None):
        super().__init__(sim, name, parent=parent)
        self.inputs = [a, b, c]
        self.mismatch = mismatch
        self._driver = mismatch.driver(owner=self)
        self._was_disagreeing = False
        self.events = 0
        self.process(self._check, sensitivity=self.inputs)

    def _check(self):
        values = [logic_buf(sig.value) for sig in self.inputs]
        disagree = not (values[0] is values[1] is values[2])
        self._driver.set(Logic.L1 if disagree else Logic.L0)
        if disagree and not self._was_disagreeing:
            self.events += 1
        self._was_disagreeing = disagree
