"""Triple-modular-redundancy wrappers for sequential elements.

Drop-in hardened replacements: same port interface as the unprotected
component, three internal state copies and a voter on the output.  All
three copies are injectable (they expose their state signals), so a
campaign can verify that single upsets are masked and find the
double-upset residual failure rate.
"""

from __future__ import annotations

from ..core.component import Component
from ..core.errors import ElaborationError
from ..core.logic import Logic
from ..digital.bus import Bus
from ..digital.counter import Counter
from ..digital.seq import DFF, Register
from .voter import BusMajorityVoter, DisagreementMonitor, MajorityVoter


class TMRDFF(Component):
    """Three D flip-flops voting on one output.

    Same interface as :class:`~repro.digital.seq.DFF` plus an optional
    ``mismatch`` monitor output.
    """

    def __init__(self, sim, name, d, clk, q, rst=None, init=Logic.U,
                 mismatch=None, parent=None):
        super().__init__(sim, name, parent=parent)
        path = self.path
        self.copies = []
        copy_outputs = []
        for k in range(3):
            qk = sim.signal(f"{path}.q{k}")
            copy_outputs.append(qk)
            self.copies.append(
                DFF(sim, f"copy{k}", d, clk, qk, rst=rst, init=init,
                    parent=self)
            )
        self.q = q
        self.voter = MajorityVoter(
            sim, "voter", *copy_outputs, q, parent=self
        )
        self.monitor = None
        if mismatch is not None:
            self.monitor = DisagreementMonitor(
                sim, "monitor", *copy_outputs, mismatch, parent=self
            )

    def state_signals(self):
        # The wrapper itself has no extra state; the copies expose
        # theirs through the hierarchy walk.
        return {}


class TMRRegister(Component):
    """Three registers voting bitwise on one output bus."""

    def __init__(self, sim, name, d, clk, q, en=None, rst=None, init=0,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if len(d) != len(q):
            raise ElaborationError(
                f"tmr register {name}: d is {len(d)} bits, q is {len(q)}"
            )
        path = self.path
        self.copies = []
        copy_buses = []
        for k in range(3):
            qk = Bus(sim, f"{path}.q{k}", len(q))
            copy_buses.append(qk)
            self.copies.append(
                Register(sim, f"copy{k}", d, clk, qk, en=en, rst=rst,
                         init=init, parent=self)
            )
        self.q = q
        self.voter = BusMajorityVoter(
            sim, "voter", *copy_buses, q, parent=self
        )


class TMRCounter(Component):
    """Three counters voting bitwise on one output bus.

    Note the classic TMR subtlety this models faithfully: the copies
    free-run, so a masked upset leaves one copy permanently out of
    step (a latent error) until something resynchronises it.  With
    ``resync=True`` each copy reloads the voted value every cycle,
    which self-heals single upsets within one clock.
    """

    def __init__(self, sim, name, clk, q, rst=None, en=None, modulo=None,
                 resync=False, parent=None):
        super().__init__(sim, name, parent=parent)
        path = self.path
        self.resync = resync
        self.copies = []
        copy_buses = []
        for k in range(3):
            qk = Bus(sim, f"{path}.q{k}", len(q))
            copy_buses.append(qk)
            self.copies.append(
                Counter(sim, f"copy{k}", clk, qk, rst=rst, en=en,
                        modulo=modulo, parent=self)
            )
        self.q = q
        self.copy_buses = copy_buses
        self.voter = BusMajorityVoter(
            sim, "voter", *copy_buses, q, parent=self
        )
        if resync:
            # Scrubbing: after each rising edge, overwrite every copy
            # with the voted word (behavioural model of feedback TMR).
            self._clk = clk
            self.process_owner = self.copies[0]
            sim.add_process(self._scrub, sensitivity=[clk])

    def _scrub(self):
        if not self._clk.rose():
            return

        def do_scrub():
            # The copies have finished counting by now (their driver
            # updates were queued before this callback); compute the
            # majority word directly from them rather than from the
            # voter output, whose own delta cascade settles later.
            from .voter import majority

            voted_bits = [
                majority(a.value, b.value, c.value)
                for a, b, c in zip(*(bus.bits for bus in self.copy_buses))
            ]
            from ..core.logic import int_from_bits
            from ..core.errors import LogicValueError

            try:
                voted = int_from_bits(voted_bits)
            except LogicValueError:
                return  # two copies corrupted identically: unrecoverable
            for bus in self.copy_buses:
                if bus.to_int_or_none() != voted:
                    bus.deposit_int(voted)

        self.sim.schedule(0.0, do_scrub)
