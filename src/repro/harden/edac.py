"""Error detection and correction for register words.

Complementary protection styles to TMR:

* :class:`ParityProtectedRegister` — single-error *detection*: one
  extra bit, an error flag, no correction.  The cheap option when a
  higher level can retry.
* :class:`HammingProtectedRegister` — single-error *correction* via a
  Hamming SEC code over the stored word: the read port transparently
  repairs any one flipped stored bit.

Both store the code bits in ordinary registers, so campaigns can flip
data *and* check bits and measure real coverage, including the
miscorrection behaviour beyond the code's guarantee.
"""

from __future__ import annotations

from functools import reduce

from ..core.component import Component, DigitalComponent
from ..core.errors import ElaborationError
from ..core.logic import Logic, logic, logic_xor
from ..digital.bus import Bus
from ..digital.seq import Register


def parity_bit_positions(data_width):
    """Positions (1-based, power of two) of Hamming check bits."""
    positions = []
    p = 1
    total = data_width
    while p <= total + len(positions):
        positions.append(p)
        p <<= 1
    return positions


def hamming_widths(data_width):
    """Number of check bits for a SEC Hamming code over data_width."""
    r = 0
    while (1 << r) < data_width + r + 1:
        r += 1
    return r


def hamming_encode(data_bits):
    """Encode LSB-first data bits into an LSB-first Hamming codeword.

    Returns the codeword as a list of ints (0/1); raises on undefined
    bits (encoding happens on the write path where data is defined).
    """
    k = len(data_bits)
    r = hamming_widths(k)
    n = k + r
    code = [0] * (n + 1)  # 1-based positions
    data_iter = iter(data_bits)
    check_positions = {1 << i for i in range(r)}
    for pos in range(1, n + 1):
        if pos not in check_positions:
            code[pos] = next(data_iter)
    for i in range(r):
        p = 1 << i
        acc = 0
        for pos in range(1, n + 1):
            if pos != p and pos & p:
                acc ^= code[pos]
        code[p] = acc
    return code[1:]


def hamming_decode(codeword):
    """Decode an LSB-first codeword; returns (data_bits, syndrome).

    A nonzero syndrome names the (1-based) flipped position, which is
    corrected before extraction.  Exactly one flipped bit is repaired;
    more violate the code's guarantee (and may miscorrect), as in
    hardware.
    """
    n = len(codeword)
    r = hamming_widths_from_n(n)
    code = [0] + list(codeword)
    syndrome = 0
    for i in range(r):
        p = 1 << i
        acc = 0
        for pos in range(1, n + 1):
            if pos & p:
                acc ^= code[pos]
        if acc:
            syndrome |= p
    if 0 < syndrome <= n:
        code[syndrome] ^= 1
    check_positions = {1 << i for i in range(r)}
    data = [code[pos] for pos in range(1, n + 1)
            if pos not in check_positions]
    return data, syndrome


def hamming_widths_from_n(n):
    """Number of check bits in an n-bit SEC codeword."""
    r = 0
    while (1 << r) <= n:
        r += 1
    return r


class ParityProtectedRegister(Component):
    """A register with one even-parity bit and an error flag.

    :param error: output asserted (combinationally from the stored
        word) when the stored parity disagrees with the stored data —
        i.e. after any odd number of upsets.
    """

    def __init__(self, sim, name, d, clk, q, error, en=None, rst=None,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        if len(d) != len(q):
            raise ElaborationError(
                f"parity register {name}: width mismatch"
            )
        path = self.path
        # Extended input: data plus computed parity.
        self._din_ext = Bus(sim, f"{path}.din_ext", len(d) + 1)
        self._q_ext = Bus(sim, f"{path}.q_ext", len(d) + 1)
        self._ext_drivers = [
            sig.driver(owner=self) for sig in self._din_ext.bits
        ]
        self.d = d
        self.q = q
        self.error = error
        self._q_drivers = [sig.driver(owner=self) for sig in q.bits]
        self._err_driver = error.driver(owner=self)
        self.register = Register(
            sim, "store", self._din_ext, clk, self._q_ext, en=en, rst=rst,
            parent=self,
        )
        DigitalComponent(sim, "encode", parent=self).process(
            self._encode, sensitivity=list(d.bits)
        )
        DigitalComponent(sim, "decode", parent=self).process(
            self._decode, sensitivity=list(self._q_ext.bits)
        )

    def _encode(self):
        bits = [logic(sig.value) for sig in self.d.bits]
        for drv, bit in zip(self._ext_drivers[:-1], bits):
            drv.set(bit)
        if all(b.is_defined() for b in bits):
            parity = reduce(logic_xor, bits)
        else:
            parity = Logic.X
        self._ext_drivers[-1].set(parity)

    def _decode(self):
        stored = [logic(sig.value) for sig in self._q_ext.bits]
        for drv, bit in zip(self._q_drivers, stored[:-1]):
            drv.set(bit)
        if all(b.is_defined() for b in stored):
            recomputed = reduce(logic_xor, stored[:-1])
            self._err_driver.set(
                Logic.L1 if recomputed is not stored[-1] else Logic.L0
            )
        else:
            self._err_driver.set(Logic.X)


class HammingProtectedRegister(Component):
    """A register storing a SEC Hamming codeword; reads self-correct.

    :param q: corrected data output bus.
    :param corrected: optional flag pulsing high while the stored word
        contains a (corrected) single-bit error.
    """

    def __init__(self, sim, name, d, clk, q, corrected=None, en=None,
                 rst=None, parent=None):
        super().__init__(sim, name, parent=parent)
        if len(d) != len(q):
            raise ElaborationError(
                f"hamming register {name}: width mismatch"
            )
        k = len(d)
        n = k + hamming_widths(k)
        path = self.path
        self._code_in = Bus(sim, f"{path}.code_in", n)
        self._code_q = Bus(sim, f"{path}.code_q", n)
        self._in_drivers = [sig.driver(owner=self) for sig in self._code_in.bits]
        self.d = d
        self.q = q
        self.corrected = corrected
        self._q_drivers = [sig.driver(owner=self) for sig in q.bits]
        self._corr_driver = (
            corrected.driver(owner=self) if corrected is not None else None
        )
        self.register = Register(
            sim, "store", self._code_in, clk, self._code_q, en=en, rst=rst,
            parent=self,
        )
        DigitalComponent(sim, "encode", parent=self).process(
            self._encode, sensitivity=list(d.bits)
        )
        DigitalComponent(sim, "decode", parent=self).process(
            self._decode, sensitivity=list(self._code_q.bits)
        )
        self.corrections = 0

    def _encode(self):
        values = [logic(sig.value) for sig in self.d.bits]
        if not all(v.is_defined() for v in values):
            for drv in self._in_drivers:
                drv.set(Logic.X)
            return
        codeword = hamming_encode([1 if v.is_high() else 0 for v in values])
        for drv, bit in zip(self._in_drivers, codeword):
            drv.set(Logic.L1 if bit else Logic.L0)

    def _decode(self):
        values = [logic(sig.value) for sig in self._code_q.bits]
        if not all(v.is_defined() for v in values):
            for drv in self._q_drivers:
                drv.set(Logic.X)
            if self._corr_driver is not None:
                self._corr_driver.set(Logic.X)
            return
        data, syndrome = hamming_decode(
            [1 if v.is_high() else 0 for v in values]
        )
        for drv, bit in zip(self._q_drivers, data):
            drv.set(Logic.L1 if bit else Logic.L0)
        if syndrome:
            self.corrections += 1
        if self._corr_driver is not None:
            self._corr_driver.set(Logic.L1 if syndrome else Logic.L0)
