"""Protection mechanisms whose efficiency the flow validates.

The paper's introduction motivates early fault injection with two
goals: "(1) identify the significant nodes that should be protected in
the circuit ... and (2) validate the efficiency of the implemented
mechanisms".  This package provides the mechanisms — TMR wrappers,
parity detection and Hamming correction — built from the same digital
substrate, so the same campaigns that found the sensitive nodes can
verify their protection.
"""

from .edac import (
    HammingProtectedRegister,
    ParityProtectedRegister,
    hamming_decode,
    hamming_encode,
    hamming_widths,
)
from .tmr import TMRCounter, TMRDFF, TMRRegister
from .voter import (
    BusMajorityVoter,
    DisagreementMonitor,
    MajorityVoter,
    majority,
)

__all__ = [
    "BusMajorityVoter",
    "DisagreementMonitor",
    "HammingProtectedRegister",
    "MajorityVoter",
    "ParityProtectedRegister",
    "TMRCounter",
    "TMRDFF",
    "TMRRegister",
    "hamming_decode",
    "hamming_encode",
    "hamming_widths",
    "majority",
]
