"""The coordinator's durable job ledger (append-only JSONL).

PR 8's coordinator kept every job, lease and merge cursor in memory:
one SIGKILL lost the campaign even though every *row* was already
crash-durable in the per-shard databases.  The ledger closes that gap
with the same flush-per-line idiom as :mod:`repro.obs.journal` — one
JSON object per line, written and fsynced before the state change it
describes is acted on, so a coordinator restarted with
``campaign serve --resume`` can rebuild its world:

* ``job_submitted`` carries the full spec (plus netlist/config and the
  shard size), so the deterministic shard planner re-plans the *same*
  shards;
* ``shard_merged`` marks shards whose rows already live in the final
  store — re-adopted idempotently, never re-run;
* ``lease_granted`` / ``lease_revoked`` reconstruct the per-shard
  lease counts so a poisoned shard cannot dodge its ``--max-leases``
  ceiling by crashing the coordinator;
* ``job_finished`` marks jobs that need nothing at all.

Ledger records are *control-plane* events only — run rows never pass
through it, so it stays tiny (a handful of lines per shard) and the
fsync per record costs nothing measurable against a campaign.
"""

from __future__ import annotations

import json
import os

from ..core.errors import ReproError

#: Version of the ledger record schema, stamped on every line.
LEDGER_SCHEMA_VERSION = 1

#: The record kinds a coordinator appends, in rough lifecycle order.
RECORD_KINDS = (
    "job_submitted",    # job, name, spec, netlist, config, shard_size,
                        # shards, sampling (None for exhaustive jobs)
    "lease_granted",    # job, shard, worker, token, count
    "lease_revoked",    # job, shard, reason
    "shard_merged",     # job, shard, rows
    "shard_failed",     # job, shard
    "stop_sampling",    # job, reason, revoked (sampling early stop)
    "job_finished",     # job, state
    "resumed",          # jobs, adopted, requeued
)


class LedgerError(ReproError):
    """Raised for invalid ledger usage or unreadable ledger files."""


class CoordinatorLedger:
    """Append-only, fsync-per-record coordinator event log.

    Construct with ``path=None`` for a disabled (no-op) ledger — the
    in-process ``run_distributed`` path, where durability across
    coordinator restarts is meaningless.
    """

    def __init__(self, path=None):
        self.path = None if path is None else str(path)
        self.enabled = self.path is not None
        self._handle = None
        self._seq = 0

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", buffering=1)
        return self._handle

    def record(self, kind, **fields):
        """Append one record and force it to disk before returning.

        :raises LedgerError: for kinds outside :data:`RECORD_KINDS`
            (schema drift dies at the write site, not during a resume
            months later).
        """
        if not self.enabled:
            return
        if kind not in RECORD_KINDS:
            raise LedgerError(
                f"unknown ledger record kind {kind!r};"
                f" expected one of {RECORD_KINDS}"
            )
        record = {"v": LEDGER_SCHEMA_VERSION, "seq": self._seq, "rec": kind}
        record.update(fields)
        self._seq += 1
        handle = self._open()
        handle.write(json.dumps(record, default=str) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def close(self):
        """Close the sink (idempotent); the ledger stays enabled."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None


def read_ledger(path):
    """Yield parsed records from a ledger file, oldest first.

    Tolerates the one artifact a crash can leave: a truncated final
    line is skipped.  A malformed line *followed by* complete records
    means the file is not a ledger — that raises.

    :raises LedgerError: on malformed non-final lines or a missing
        file.
    """
    try:
        handle = open(path)
    except OSError as exc:
        raise LedgerError(f"cannot read ledger {path}: {exc}") from exc
    with handle:
        pending_error = None
        for line in handle:
            if pending_error is not None:
                raise LedgerError(pending_error)
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                pending_error = (
                    f"malformed ledger line in {path}: {line[:80]!r}"
                )


class LedgerJob:
    """One job's replayed state: what the ledger proves happened."""

    def __init__(self, record):
        self.job_id = int(record["job"])
        self.name = record.get("name")
        self.spec = record["spec"]
        self.netlist = record.get("netlist")
        self.config = record.get("config") or {}
        self.shard_size = int(record["shard_size"])
        self.shards = int(record.get("shards") or 0)
        self.sampling = record.get("sampling")
        self.merged = set()
        self.failed = set()
        self.lease_counts = {}
        self.live_leases = {}     # shard_id -> grants not yet revoked
        self.finished = None      # terminal state string, or None


def replay_ledger(path):
    """Fold a ledger file into per-job state, keyed by job id.

    Returns ``{job_id: LedgerJob}``.  Leases that were granted but
    neither revoked nor merged when the coordinator died are *live at
    crash*: they are subtracted from the replayed lease counts, so a
    shard interrupted by a coordinator crash is not charged a strike
    toward its ``max_leases`` ceiling.

    :raises LedgerError: on unreadable or malformed ledgers.
    """
    jobs = {}
    for record in read_ledger(path):
        kind = record.get("rec")
        if kind == "job_submitted":
            try:
                job = LedgerJob(record)
            except (KeyError, TypeError, ValueError) as exc:
                raise LedgerError(
                    f"malformed job_submitted record in {path}: {exc}"
                ) from exc
            jobs[job.job_id] = job
            continue
        if kind == "resumed" or "job" not in record:
            continue
        job = jobs.get(int(record["job"]))
        if job is None:
            continue  # a record for a job submitted before log rotation
        shard = record.get("shard")
        shard = None if shard is None else int(shard)
        if kind == "lease_granted":
            job.lease_counts[shard] = max(
                job.lease_counts.get(shard, 0), int(record.get("count", 1))
            )
            job.live_leases[shard] = job.live_leases.get(shard, 0) + 1
        elif kind == "lease_revoked":
            if job.live_leases.get(shard):
                job.live_leases[shard] -= 1
        elif kind == "shard_merged":
            job.merged.add(shard)
            job.live_leases.pop(shard, None)
        elif kind == "shard_failed":
            job.failed.add(shard)
        elif kind == "job_finished":
            job.finished = record.get("state", "complete")
    for job in jobs.values():
        for shard, live in job.live_leases.items():
            if live > 0 and shard not in job.merged:
                job.lease_counts[shard] = max(
                    0, job.lease_counts.get(shard, 0) - live
                )
    return jobs
