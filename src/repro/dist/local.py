"""Single-host distributed execution: coordinator + forked workers.

The loopback deployment of ``repro.dist`` — the same coordinator,
wire protocol and merge machinery as a multi-host fleet, with the
workers forked locally so they inherit the design factory directly
(no netlist file needed).  This is what ``benchmarks/bench_dist.py``
measures and what the integration tests kill workers under; it is
also a genuinely useful way to use all cores of one machine on a
large campaign, because each worker runs its *own* golden and warm
checkpoints and the campaign's faults split across them.
"""

from __future__ import annotations

import logging
import multiprocessing
import os

from ..obs import journal as _journal
from ..store.store import CampaignStore
from .coordinator import Coordinator, CoordinatorError
from .worker import run_worker

LOGGER = logging.getLogger("repro.dist")


def _fork_context():
    """The ``fork`` start method, or None where unsupported.

    Local workers inherit the design factory by fork — ``spawn``
    cannot ship an arbitrary closure, so platforms without ``fork``
    must run workers as separate processes against a netlist file.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def _worker_main(address, factory, name, worker_kwargs):
    """Forked worker body: detach inherited telemetry, serve leases."""
    # The fork duplicated the parent's open journal handle; writing
    # from two processes would interleave sequence numbers.  Closing
    # the child's duplicate leaves the parent's stream untouched.
    _journal.JOURNAL.close()
    try:
        run_worker(address, factory=factory, name=name, **worker_kwargs)
    except Exception:
        LOGGER.exception("local worker %s crashed", name)
        os._exit(1)


def spawn_local_workers(address, count, factory, context=None,
                        **worker_kwargs):
    """Fork ``count`` worker processes dialing ``address``.

    Returns the started :class:`multiprocessing.Process` list.  Extra
    keyword arguments pass through to :func:`~.worker.run_worker`
    (reconnect/backoff knobs, ``max_shards``...).

    :raises CoordinatorError: when ``fork`` is unavailable.
    """
    context = context or _fork_context()
    if context is None:
        raise CoordinatorError(
            "local distributed workers need the 'fork' start method "
            "(unavailable on this platform); run 'campaign worker' "
            "processes against a netlist instead"
        )
    processes = []
    for rank in range(count):
        process = context.Process(
            target=_worker_main,
            args=(address, factory, f"local-{rank}", worker_kwargs),
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes


def run_distributed(factory, spec, workers=2, shard_size=None,
                    store_path=None, lease_timeout_s=None, config=None,
                    netlist=None, timeout=None, sampling=None):
    """Run one campaign across forked local workers; returns the result.

    The in-process twin of ``campaign serve`` + N×``campaign worker``:
    plans shards, starts a loopback coordinator, forks ``workers``
    processes that each execute shards through the ordinary campaign
    runner, merges their streamed rows deterministically and loads the
    final :class:`~repro.campaign.results.CampaignResult` back from
    the merged store.

    :param shard_size: faults per shard; default one shard per worker
        for exhaustive jobs.  Sampled jobs default to
        :data:`~repro.dist.shards.DEFAULT_SHARD_SIZE` — the shard size
        *is* the sampler's chunk size, and convergence is only
        evaluated at chunk boundaries.
    :param store_path: final store location (required — the merged
        database is the product).
    :param config: execution kwargs applied on every worker
        (``warm_start``, ``batch``, ``timeout``...).
    :param timeout: seconds to wait for the job before aborting.
    :param sampling: optional adaptive-sampling config dict (see
        :meth:`~repro.dist.coordinator.Coordinator.submit`).
    :raises CoordinatorError: on missing store path, fork
        unavailability, or job timeout/abort.
    """
    from .shards import DEFAULT_SHARD_SIZE

    if store_path is None:
        raise CoordinatorError("run_distributed requires a store_path")
    context = _fork_context()
    if context is None:
        raise CoordinatorError(
            "run_distributed needs the 'fork' start method"
        )
    if shard_size is None:
        if sampling is not None:
            shard_size = DEFAULT_SHARD_SIZE
        else:
            shard_size = max(1, -(-len(spec.faults) // workers))
    kwargs = {"shard_size": shard_size}
    if lease_timeout_s is not None:
        kwargs["lease_timeout_s"] = lease_timeout_s
    coordinator = Coordinator(store_path, **kwargs)
    coordinator.drain_when_idle(True)
    processes = []
    try:
        job_id = coordinator.submit(
            spec, netlist=netlist, config=config, sampling=sampling,
        )
        coordinator.start()
        processes = spawn_local_workers(
            coordinator.address, workers, factory, context=context
        )
        status = coordinator.wait(job_id, timeout=timeout)
        if status["state"] == "running":
            raise CoordinatorError(
                f"distributed campaign timed out after {timeout}s "
                f"({status['merged']}/{status['shards']} shards merged)"
            )
        if status["state"] != "complete":
            raise CoordinatorError(
                f"distributed campaign ended in state {status['state']!r} "
                f"(failed shards: {status.get('failed')})"
            )
    finally:
        coordinator.stop()
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
    with CampaignStore(store_path) as store:
        return store.load_result(spec.name)
