"""Shard planning: a campaign spec -> self-contained work units.

A shard is the unit of distribution: a contiguous slice of the
campaign's fault dictionary packaged with everything a remote worker
needs to execute it — a complete sub-spec (JSON, via
:func:`~repro.store.serialize.spec_to_dict`), the **global** fault
indices the slice covers, the per-fault content digests
(:func:`~repro.store.serialize.fault_key`) that row deduplication
keys on, and optionally the netlist and execution configuration.

The plan is deterministic: contiguous slices in fault order, every
shard but the last exactly ``shard_size`` faults.  Determinism
matters twice over — the same spec always shards identically (so a
coordinator restart re-plans the same shards and re-attaches to their
databases), and the merged store is row-identical to a serial run
because every row's global index survives the round trip through the
shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError
from ..store.serialize import fault_key, spec_from_dict, spec_to_dict

#: Default faults per shard.  Small enough that a lost worker forfeits
#: little work, large enough that the per-shard golden run amortises.
DEFAULT_SHARD_SIZE = 25


class ShardError(ReproError):
    """Raised for invalid shard plans or malformed shard payloads."""


@dataclass
class Shard:
    """One serializable unit of campaign work.

    :ivar shard_id: position in the plan (0-based, contiguous).
    :ivar campaign: the *parent* campaign's name.
    :ivar total: the parent campaign's total fault count.
    :ivar indices: global fault indices this shard covers.
    :ivar fault_keys: content digest of each fault, aligned with
        ``indices`` (the dedup/verification identity of every row).
    :ivar spec: the shard's sub-spec as a JSON-ready dict — a complete
        :class:`~repro.campaign.spec.CampaignSpec` whose fault list is
        exactly this shard's slice and whose name is
        ``{campaign}@shard{NNNN}``.
    :ivar netlist: optional netlist dict
        (:meth:`~repro.netlist.schema.Netlist.to_dict`) for workers
        that build the design from the wire instead of a local factory.
    :ivar config: execution keyword arguments for
        :func:`~repro.campaign.runner.run_campaign` (warm_start,
        batch, timeout...), applied identically on every worker.
    """

    shard_id: int
    campaign: str
    total: int
    indices: list
    fault_keys: list
    spec: dict
    netlist: dict = None
    config: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.indices) != len(self.fault_keys):
            raise ShardError(
                f"shard {self.shard_id}: {len(self.indices)} indices but "
                f"{len(self.fault_keys)} fault keys"
            )
        if len(self.indices) != len(self.spec.get("faults", ())):
            raise ShardError(
                f"shard {self.shard_id}: {len(self.indices)} indices but "
                f"{len(self.spec.get('faults', ()))} spec faults"
            )

    @property
    def size(self):
        """Number of faults in this shard."""
        return len(self.indices)

    def campaign_spec(self):
        """The shard's executable :class:`CampaignSpec` instance."""
        return spec_from_dict(self.spec)

    def to_dict(self):
        """JSON-ready rendering (the ``lease`` frame's payload)."""
        return {
            "shard_id": self.shard_id,
            "campaign": self.campaign,
            "total": self.total,
            "indices": list(self.indices),
            "fault_keys": list(self.fault_keys),
            "spec": self.spec,
            "netlist": self.netlist,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a shard from :meth:`to_dict` output.

        :raises ShardError: on malformed payloads.
        """
        try:
            return cls(
                shard_id=int(data["shard_id"]),
                campaign=data["campaign"],
                total=int(data["total"]),
                indices=[int(i) for i in data["indices"]],
                fault_keys=list(data["fault_keys"]),
                spec=data["spec"],
                netlist=data.get("netlist"),
                config=dict(data.get("config") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(f"malformed shard payload: {exc}") from exc


def shard_name(campaign, shard_id):
    """The sub-spec name of one shard (also its store campaign name)."""
    return f"{campaign}@shard{shard_id:04d}"


def plan_chunk_shard(base, keys, shard_id, indices, netlist=None,
                     config=None):
    """One shard over an arbitrary set of global fault indices.

    The adaptive sampler's unit of distribution: chunk ``k`` of a
    sampled job becomes shard ``k``, covering whatever non-contiguous
    indices the stratified draw produced.  ``base`` and ``keys`` are
    the full campaign's ``spec_to_dict`` rendering and per-fault
    digests, computed once per job — chunk shards are planned one at a
    time as the sampler draws them, so the per-plan work must be O(chunk).

    :param base: the parent campaign spec as a dict
        (:func:`~repro.store.serialize.spec_to_dict`).
    :param keys: per-fault content digests aligned with
        ``base["faults"]``.
    :param shard_id: the chunk's sequential ident (also the shard id).
    :param indices: global fault indices the chunk drew, in draw order.
    :raises ShardError: for an empty chunk or out-of-range indices.
    """
    faults = base["faults"]
    if not indices:
        raise ShardError(f"chunk shard {shard_id} has no faults")
    if any(i < 0 or i >= len(faults) for i in indices):
        raise ShardError(
            f"chunk shard {shard_id} draws indices outside the "
            f"campaign's {len(faults)} faults"
        )
    sub_spec = dict(base)
    sub_spec["name"] = shard_name(base["name"], shard_id)
    sub_spec["faults"] = [faults[i] for i in indices]
    return Shard(
        shard_id=shard_id,
        campaign=base["name"],
        total=len(faults),
        indices=list(indices),
        fault_keys=[keys[i] for i in indices],
        spec=sub_spec,
        netlist=netlist,
        config=dict(config or {}),
    )


def plan_shards(spec, shard_size=DEFAULT_SHARD_SIZE, netlist=None,
                config=None):
    """Slice a campaign spec into a deterministic list of shards.

    Contiguous fault-order slices: shard 0 gets faults
    ``[0, shard_size)``, shard 1 the next slice, and so on.  Contiguity
    is deliberate — fault lists are usually generated in injection-time
    order, so a contiguous slice needs few golden checkpoints and
    batches well on the worker.

    :param spec: a :class:`~repro.campaign.spec.CampaignSpec`.
    :param shard_size: faults per shard (the last may be smaller).
    :param netlist: optional netlist dict attached to every shard.
    :param config: optional execution config attached to every shard.
    :raises ShardError: for an empty spec or non-positive size.
    """
    if shard_size < 1:
        raise ShardError(f"shard_size must be >= 1, got {shard_size}")
    total = len(spec.faults)
    if total == 0:
        raise ShardError(f"campaign {spec.name!r} has no faults to shard")
    base = spec_to_dict(spec)
    keys = [fault_key(fault) for fault in spec.faults]
    shards = []
    for shard_id, start in enumerate(range(0, total, shard_size)):
        stop = min(start + shard_size, total)
        sub_spec = dict(base)
        sub_spec["name"] = shard_name(spec.name, shard_id)
        sub_spec["faults"] = base["faults"][start:stop]
        shards.append(Shard(
            shard_id=shard_id,
            campaign=spec.name,
            total=total,
            indices=list(range(start, stop)),
            fault_keys=keys[start:stop],
            spec=sub_spec,
            netlist=netlist,
            config=dict(config or {}),
        ))
    return shards
