"""The distributed campaign wire protocol (versioned, line-delimited JSON).

One frame per line, UTF-8 JSON, newline-terminated — the same
line-atomic property the event journal relies on, here applied to a
TCP stream: a frame either parses whole or is still buffered.  Every
frame carries ``frame`` (its type) and ``proto`` is negotiated once in
the ``hello``/``welcome`` exchange.

Frame flow (worker side)::

    worker -> coordinator   hello {role: "worker", name, pid, host}
    coordinator -> worker   welcome {proto}
    worker -> coordinator   lease_request {}
    coordinator -> worker   lease {shard: {...}, token, lease_timeout_s}
                            | drain {}          (no work left: disconnect)
    worker -> coordinator   heartbeat {token, pid, phase, done, total}
    worker -> coordinator   rows {token, rows: [row, ...]}
    worker -> coordinator   complete {token, execution, golden}
                            | error {token, message}
    coordinator -> worker   shutdown {}         (campaign over)

Clients (``campaign submit``) speak the same framing::

    client -> coordinator   hello {role: "client", name}
    client -> coordinator   submit {spec, netlist?, config?}
    coordinator -> client   job {job, name, shards, total}
    client -> coordinator   status_request {job}
    coordinator -> client   job_status {job, state, completed, errors, ...}

Shard leases are **at-least-once**: a worker that stops heartbeating
loses its lease and the shard is re-dispatched, so the same row may
arrive twice (from the zombie and from the replacement).  Rows are
therefore idempotent — keyed by global fault index, verified by fault
content digest — and the coordinator's merge drops duplicates.  Late
frames carrying an expired ``token`` are discarded outright.
"""

from __future__ import annotations

import json
import socket

from ..core.errors import ReproError

#: Version of the wire protocol.  A coordinator refuses hellos from a
#: different major version instead of mis-parsing them.
PROTOCOL_VERSION = 1

#: Ceiling on one frame's wire size.  Generous — a lease frame carries
#: a whole sub-spec plus optionally a netlist — but finite, so one
#: runaway (or hostile) line cannot balloon a peer's receive buffer.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Frame type -> required payload fields (beyond the envelope).
FRAME_TYPES = {
    # session establishment (both directions)
    "hello": ("role",),
    "welcome": (),
    # worker <-> coordinator
    "lease_request": (),
    "lease": ("shard", "token"),
    "drain": (),
    "heartbeat": ("token",),
    "rows": ("token", "rows"),
    "complete": ("token",),
    "error": ("token", "message"),
    "shutdown": (),
    "bye": (),
    # client <-> coordinator (the async job API)
    "submit": ("spec",),
    "job": ("job",),
    "status_request": ("job",),
    "job_status": ("job", "state"),
}

#: Hello roles the coordinator accepts.
ROLES = ("worker", "client")


class ProtocolError(ReproError):
    """Raised for malformed, unknown or out-of-order frames."""


def make_frame(frame_type, **fields):
    """Build and validate one frame dict.

    :raises ProtocolError: for unknown types or missing required
        fields — catching drift at the send site, not on a remote
        host minutes later.
    """
    try:
        required = FRAME_TYPES[frame_type]
    except KeyError:
        raise ProtocolError(
            f"unknown frame type {frame_type!r};"
            f" expected one of {tuple(FRAME_TYPES)}"
        ) from None
    missing = [name for name in required if name not in fields]
    if missing:
        raise ProtocolError(
            f"frame {frame_type!r} is missing required fields {missing}"
        )
    frame = {"frame": frame_type}
    frame.update(fields)
    return frame


def encode_frame(frame):
    """One frame dict -> its newline-terminated wire bytes."""
    if "frame" not in frame:
        raise ProtocolError(f"not a frame (no 'frame' field): {frame!r}")
    return (json.dumps(frame, separators=(",", ":"), default=str)
            + "\n").encode("utf-8")


def validate_frame(frame):
    """Check an inbound frame's type and required fields.

    :raises ProtocolError: on violations; returns the frame otherwise.
    """
    frame_type = frame.get("frame")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type!r}")
    missing = [
        name for name in FRAME_TYPES[frame_type] if name not in frame
    ]
    if missing:
        raise ProtocolError(
            f"frame {frame_type!r} is missing required fields {missing}"
        )
    return frame


class FrameBuffer:
    """Incremental decoder: feed received chunks, pop whole frames.

    TCP delivers byte streams, not messages; the buffer accumulates
    chunks and yields every complete (newline-terminated) frame, so a
    frame split across ``recv`` calls — or several frames coalesced
    into one — both decode correctly.

    Two defenses guard the decoder itself:

    * a per-frame **size cap** (``max_frame_bytes``): a line that grows
      past it — even before its newline arrives — is rejected instead
      of buffering without bound;
    * a **tolerant** mode (the coordinator's): a malformed or oversized
      line is *skipped* and counted in :attr:`rejected` (messages via
      :meth:`take_rejects`), and decoding continues with the next line,
      so one bad frame from one peer can never poison the frames behind
      it or force a disconnect.  The default strict mode raises — a
      worker or client talking to a garbled coordinator should fail
      loudly.
    """

    def __init__(self, max_frame_bytes=MAX_FRAME_BYTES, tolerant=False):
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes
        self.tolerant = tolerant
        self.rejected = 0
        self._rejects = []
        self._discarding = False

    def _reject(self, message):
        self.rejected += 1
        if self.tolerant:
            self._rejects.append(message)
            return
        raise ProtocolError(message)

    def take_rejects(self):
        """Reject messages accumulated since the last call (tolerant)."""
        rejects, self._rejects = self._rejects, []
        return rejects

    def feed(self, chunk):
        """Append received bytes; returns the complete frames decoded.

        :raises ProtocolError: in strict mode, on lines that are not
            valid frames or exceed the size cap.
        """
        self._buffer.extend(chunk)
        frames = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > self.max_frame_bytes:
                    # The line is already over budget with no end in
                    # sight: reject now and discard until its newline.
                    size = len(self._buffer)
                    self._buffer.clear()
                    if not self._discarding:
                        self._discarding = True
                        self._reject(
                            f"frame exceeds {self.max_frame_bytes} byte "
                            f"cap ({size}+ bytes buffered)"
                        )
                break
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if self._discarding:
                # Tail of an already-rejected oversized line.
                self._discarding = False
                continue
            if not line.strip():
                continue
            if len(line) > self.max_frame_bytes:
                self._reject(
                    f"frame exceeds {self.max_frame_bytes} byte cap "
                    f"({len(line)} bytes)"
                )
                continue
            try:
                frame = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._reject(f"malformed frame line: {line[:80]!r}")
                continue
            if not isinstance(frame, dict):
                self._reject(f"frame is not a JSON object: {line[:80]!r}")
                continue
            try:
                frames.append(validate_frame(frame))
            except ProtocolError as exc:
                self._reject(str(exc))
                continue
        return frames

    def pending(self):
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


class FrameConnection:
    """A blocking frame transport over one connected socket.

    The worker- and client-side convenience: thread-safe sends are the
    *caller's* concern (wrap :meth:`send` in a lock when a heartbeat
    thread shares the socket); receives buffer partial lines
    internally.
    """

    def __init__(self, sock):
        self.sock = sock
        self._frames = FrameBuffer()
        self._inbox = []
        self.eof = False

    def send(self, frame_type, **fields):
        """Encode and send one frame."""
        self.sock.sendall(encode_frame(make_frame(frame_type, **fields)))

    def recv(self, timeout=None):
        """Block for the next frame; ``None`` on EOF or timeout.

        The two Nones are distinguishable after the fact: EOF (or a
        socket error) also sets :attr:`eof`, which a reconnecting
        caller checks to tell "nothing arrived yet" from "the
        connection is gone".
        """
        if self._inbox:
            return self._inbox.pop(0)
        self.sock.settimeout(timeout)
        while True:
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                return None
            except OSError:
                self.eof = True
                return None
            if not chunk:
                self.eof = True
                return None
            frames = self._frames.feed(chunk)
            if frames:
                self._inbox.extend(frames[1:])
                return frames[0]

    def close(self):
        """Close the underlying socket (idempotent)."""
        try:
            self.sock.close()
        except OSError:
            pass


def connect(host, port, timeout=10.0):
    """Dial a coordinator; returns a :class:`FrameConnection`.

    :raises ProtocolError: when the endpoint is unreachable.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ProtocolError(
            f"cannot connect to coordinator at {host}:{port}: {exc}"
        ) from exc
    sock.settimeout(None)
    return FrameConnection(sock)


def parse_address(text, default_port=7410):
    """``"host:port"`` (or bare ``"host"``) -> ``(host, port)``."""
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        try:
            return host or "127.0.0.1", int(port_text)
        except ValueError as exc:
            raise ProtocolError(f"bad port in address {text!r}") from exc
    return text or "127.0.0.1", default_port
