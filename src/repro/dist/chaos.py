"""A deterministic, seeded chaos proxy for the distributed transport.

A fault-injection tool should be able to inject faults into *itself*:
:class:`ChaosProxy` is a TCP relay placed between workers and the
coordinator that perturbs the byte stream the way real networks and
real outages do —

* **delay** — a forwarded chunk sleeps before delivery (reordering
  pressure on the framing layer);
* **drop** — the connection is closed at a chunk boundary (worker
  reconnect paths);
* **reset** — the close is a hard RST instead of a FIN (``SO_LINGER``
  zero), the error path ``ECONNRESET`` exercises;
* **truncate** — a chunk is cut mid-frame and the connection dropped,
  leaving a half-written line in the peer's :class:`FrameBuffer`;
* **partition** — the proxy stalls every live connection and refuses
  new ones for a window (lease expiry, backoff growth).

Decisions come from per-connection, per-direction ``random.Random``
streams derived from one seed, so a chaos schedule is reproducible
run to run regardless of thread interleaving.  The proxy never
*corrupts* bytes it forwards — corruption testing belongs to the
frame-rejection unit tests — it only delays, cuts and kills, which is
exactly the failure model the protocol claims to survive.
"""

from __future__ import annotations

import logging
import random
import socket
import struct
import threading
from dataclasses import dataclass
from time import monotonic

LOGGER = logging.getLogger("repro.dist.chaos")


@dataclass
class ChaosConfig:
    """Per-chunk misbehavior probabilities and magnitudes.

    All probabilities are evaluated independently per forwarded chunk
    (drop/truncate are mutually exclusive; truncate wins).  The
    defaults are a no-op proxy — turn knobs up per test.
    """

    delay_p: float = 0.0        #: probability a chunk is delayed
    delay_s: float = 0.05       #: max per-chunk delay (uniform 0..max)
    drop_p: float = 0.0         #: probability the connection drops
    reset_p: float = 0.0        #: P(drop is an RST | drop)
    truncate_p: float = 0.0     #: probability a chunk is cut, then dropped
    seed: int = 0               #: root of every decision stream


class ChaosProxy:
    """A seeded TCP relay between one upstream and many downstreams.

    :param upstream: the real endpoint, ``(host, port)``.
    :param config: a :class:`ChaosConfig` (default: forward faithfully).
    :param host: listen address for victims to dial.
    :param port: listen port (0 = ephemeral; read :attr:`address`).
    """

    def __init__(self, upstream, config=None, host="127.0.0.1", port=0):
        self.upstream = tuple(upstream)
        self.config = config or ChaosConfig()
        self.stats = {
            "connections": 0, "delays": 0, "drops": 0,
            "resets": 0, "truncations": 0, "refused": 0,
        }
        self._stats_lock = threading.Lock()
        self._stop = threading.Event()
        self._partition_until = 0.0
        self._conn_id = 0
        self._pairs = []          # live (downstream, upstream) socket pairs
        self._pairs_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(32)
        self.address = self._listener.getsockname()[:2]
        self._accept_thread = None

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Start accepting victim connections; returns the proxy."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self):
        """Close the listener and every live relay (idempotent)."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pairs_lock:
            pairs, self._pairs = self._pairs, []
        for pair in pairs:
            self._kill_pair(pair, reset=False)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *_exc):
        self.stop()
        return False

    # -- chaos controls --------------------------------------------------------

    def partition(self, duration_s):
        """Stall all forwarding and refuse new dials for ``duration_s``."""
        self._partition_until = monotonic() + duration_s

    def partitioned(self):
        """True while a partition window is open."""
        return monotonic() < self._partition_until

    def kill_connections(self, reset=False):
        """Drop every live relay now (a mass disconnect event)."""
        with self._pairs_lock:
            pairs, self._pairs = self._pairs, []
        for pair in pairs:
            self._kill_pair(pair, reset=reset)
        self._count("drops", len(pairs))

    # -- relay machinery -------------------------------------------------------

    def _count(self, key, n=1):
        with self._stats_lock:
            self.stats[key] += n

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                downstream, _addr = self._listener.accept()
            except OSError:
                return
            if self.partitioned():
                self._count("refused")
                self._close(downstream, reset=True)
                continue
            try:
                up = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                # Upstream down (a killed coordinator): the victim sees
                # an immediate close and enters its backoff loop.
                self._count("refused")
                self._close(downstream, reset=False)
                continue
            # The dial timeout must not linger: an idle relay (a
            # parked worker waiting for work) would otherwise hit a
            # recv timeout after 5s and be killed by accident.
            up.settimeout(None)
            self._conn_id += 1
            self._count("connections")
            pair = (downstream, up)
            with self._pairs_lock:
                self._pairs.append(pair)
            for direction, src, dst in (
                ("c2s", downstream, up), ("s2c", up, downstream)
            ):
                rng = random.Random(
                    f"{self.config.seed}:{self._conn_id}:{direction}"
                )
                threading.Thread(
                    target=self._pump, args=(pair, src, dst, rng),
                    daemon=True,
                ).start()

    def _pump(self, pair, src, dst, rng):
        """Forward one direction chunk by chunk, misbehaving on cue."""
        cfg = self.config
        try:
            while not self._stop.is_set():
                while self.partitioned() and not self._stop.is_set():
                    self._stop.wait(0.01)
                data = src.recv(65536)
                if not data:
                    break
                if cfg.delay_p and rng.random() < cfg.delay_p:
                    self._count("delays")
                    self._stop.wait(rng.uniform(0.0, cfg.delay_s))
                if cfg.truncate_p and rng.random() < cfg.truncate_p \
                        and len(data) > 1:
                    cut = rng.randrange(1, len(data))
                    self._count("truncations")
                    try:
                        dst.sendall(data[:cut])
                    except OSError:
                        pass
                    self._drop_pair(pair, rng)
                    return
                if cfg.drop_p and rng.random() < cfg.drop_p:
                    self._drop_pair(pair, rng)
                    return
                dst.sendall(data)
        except OSError:
            pass
        finally:
            self._retire_pair(pair, reset=False)

    def _drop_pair(self, pair, rng):
        reset = rng.random() < self.config.reset_p
        self._count("drops")
        if reset:
            self._count("resets")
        self._retire_pair(pair, reset=reset)

    def _retire_pair(self, pair, reset):
        with self._pairs_lock:
            if pair in self._pairs:
                self._pairs.remove(pair)
            else:
                return
        self._kill_pair(pair, reset=reset)

    def _kill_pair(self, pair, reset):
        for sock in pair:
            self._close(sock, reset=reset)

    @staticmethod
    def _close(sock, reset):
        try:
            if reset:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            sock.close()
        except OSError:
            pass
