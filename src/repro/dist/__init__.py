"""Distributed fault-injection campaigns: shard, dispatch, merge.

``repro.dist`` scales a campaign past one process: the fault
dictionary is sliced into self-contained :class:`~.shards.Shard` work
units, a :class:`~.coordinator.Coordinator` leases them to worker
daemons over a line-delimited JSON socket protocol, each worker runs
its shard through the **ordinary campaign runner** (warm starts and
batching included) streaming run rows back as they land, and
completed shards merge deterministically into one final
:class:`~repro.store.CampaignStore` — row-identical to a serial run
regardless of worker count or arrival order.

Three entry points:

* :func:`~.local.run_distributed` — in-process loopback (coordinator
  thread + forked workers), the library API;
* ``repro campaign serve`` / ``worker`` / ``submit`` — the CLI
  deployment for real fleets (see ``docs/distributed.md``);
* :class:`~.coordinator.Coordinator` + :func:`~.worker.run_worker`
  directly, for embedding.

Fault tolerance is at-least-once with idempotent rows: dead workers
(socket EOF or heartbeat silence past the lease timeout) get their
shards re-leased, and duplicate rows from the two executions dedup by
global fault index with content-digest verification.  Crash tolerance
goes further (see ``docs/distributed.md``, "Failure model"): the
coordinator journals every scheduling decision to a durable
:class:`~.ledger.CoordinatorLedger` and can
:meth:`~.coordinator.Coordinator.resume_from_ledger` after a kill;
workers reconnect with capped exponential backoff and drain buffered
rows; and a seeded :class:`~.chaos.ChaosProxy` exists to prove all of
it under injected network faults.
"""

from .chaos import ChaosConfig, ChaosProxy
from .coordinator import Coordinator, CoordinatorError
from .ledger import (
    CoordinatorLedger,
    LedgerError,
    read_ledger,
    replay_ledger,
)
from .local import run_distributed, spawn_local_workers
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameBuffer,
    FrameConnection,
    ProtocolError,
    connect,
    parse_address,
)
from .shards import DEFAULT_SHARD_SIZE, Shard, ShardError, plan_shards
from .worker import (
    CoordinatorLost,
    RowStreamStore,
    WorkerShutdown,
    execute_shard,
    run_worker,
)

__all__ = [
    "ChaosConfig",
    "ChaosProxy",
    "Coordinator",
    "CoordinatorError",
    "CoordinatorLedger",
    "CoordinatorLost",
    "DEFAULT_SHARD_SIZE",
    "FrameBuffer",
    "FrameConnection",
    "LedgerError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RowStreamStore",
    "Shard",
    "ShardError",
    "WorkerShutdown",
    "connect",
    "execute_shard",
    "parse_address",
    "plan_shards",
    "read_ledger",
    "replay_ledger",
    "run_distributed",
    "run_worker",
    "spawn_local_workers",
]
