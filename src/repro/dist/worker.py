"""The distributed campaign worker daemon.

A worker dials the coordinator, pulls shard leases and executes each
through the **ordinary campaign runner** — warm starts, batching,
supervision and retry all behave exactly as they do locally, because
the shard's sub-spec *is* a campaign spec.  What differs is the store:
a :class:`RowStreamStore` ships every completed run row over the
socket as it lands instead of writing SQLite, so the coordinator's
per-shard database grows while the shard is still running and a
worker killed mid-shard forfeits only the rows it had not yet
streamed.

The worker is built to outlive its transport:

* every socket failure feeds a **reconnect loop** with capped
  exponential backoff plus jitter instead of killing the process;
* rows that cannot be sent during an outage land in a **bounded
  buffer** and drain after reconnect — the coordinator holds the
  lease orphaned for a reconnect grace, and global-index dedup makes
  any redelivery safe;
* **SIGTERM** requests a graceful exit: the in-flight fault finishes,
  its row is flushed, the lease is released with an ``error`` frame
  (so the shard requeues promptly) and the worker says ``bye``.

Designs reach the worker one of two ways:

* a local **factory** (``--netlist`` on the CLI, or a Python callable
  for in-process workers) — the common case for fleet deployments
  where every host has the design files;
* a netlist dict **in the lease** (the submit client attached it) —
  zero-install workers that build the design from the wire.

Each worker runs its own golden simulation per shard and reports the
golden probe digests with its ``complete`` frame; the coordinator
cross-checks digests across workers, so a worker with a diverging
toolchain or design file is detected, not silently merged.
"""

from __future__ import annotations

import logging
import os
import random
import signal
import socket as _socket
import threading
from collections import deque
from time import perf_counter

from ..campaign.runner import run_campaign
from ..campaign.supervisor import WORKER_PHASE
from ..core.errors import ReproError
from ..store.backend import StoreBackend
from ..store.serialize import error_to_row, probes_digest, result_to_row
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    connect,
    parse_address,
)
from .shards import Shard

LOGGER = logging.getLogger("repro.dist")

#: Default seconds between worker heartbeat frames.
DEFAULT_HEARTBEAT_S = 1.0

#: Default consecutive reconnect attempts before the worker gives up.
DEFAULT_MAX_RECONNECTS = 8

#: Default first-retry backoff; doubles per attempt up to the cap.
DEFAULT_BACKOFF_S = 0.5

#: Default backoff ceiling.
DEFAULT_BACKOFF_MAX_S = 15.0

#: Default bound on rows buffered while the coordinator is unreachable.
DEFAULT_ROW_BUFFER = 512


class WorkerShutdown(ReproError):
    """Raised inside a shard run when a graceful shutdown is requested."""


class CoordinatorLost(ProtocolError):
    """Raised when every reconnect attempt at the coordinator failed."""


class CoordinatorLink:
    """The worker's one connection, wrapped in reconnect machinery.

    Owns the socket, a send lock (the heartbeat thread shares the
    wire), the backoff policy and a bounded buffer of undeliverable
    ``rows`` frames.  Send semantics by frame class:

    * ``rows`` — *best effort now, durable later*: a failed send
      buffers the frame (bounded, oldest dropped first — dedup by
      global fault index makes a drop equivalent to an unstreamed
      row) and returns; buffered rows drain ahead of the next
      successful send;
    * ``heartbeat`` — droppable: a missed beat on a dead socket is
      exactly what the coordinator's liveness clocks exist to absorb;
    * everything else (``lease_request``, ``complete``, ``error``,
      ``bye``) — *must arrive*: a failed send triggers a blocking
      reconnect with capped exponential backoff plus jitter.

    :param stop: a :class:`threading.Event` that aborts backoff waits
        (graceful shutdown while disconnected).
    :param rng: randomness source for jitter (tests pass a seeded
        :class:`random.Random`).
    """

    def __init__(self, host, port, ident, connect_timeout=10.0,
                 reconnect=True, max_reconnects=DEFAULT_MAX_RECONNECTS,
                 backoff_s=DEFAULT_BACKOFF_S,
                 backoff_max_s=DEFAULT_BACKOFF_MAX_S,
                 row_buffer=DEFAULT_ROW_BUFFER, stop=None, rng=None):
        self.host = host
        self.port = port
        self.ident = ident
        self.connect_timeout = connect_timeout
        self.reconnect = reconnect
        self.max_reconnects = max_reconnects
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.stop = stop or threading.Event()
        self.reconnects = 0
        self.dropped_rows = 0
        self._rng = rng or random
        self._lock = threading.Lock()
        self._conn = None
        self._pending = deque(maxlen=row_buffer)

    # -- connection lifecycle ----------------------------------------------

    def _dial_locked(self):
        """One dial + hello/welcome; raises ProtocolError on failure."""
        conn = connect(self.host, self.port, timeout=self.connect_timeout)
        try:
            conn.send("hello", role="worker", name=self.ident,
                      pid=os.getpid(), host=_socket.gethostname(),
                      proto=PROTOCOL_VERSION)
            welcome = conn.recv(timeout=self.connect_timeout)
        except OSError as exc:
            conn.close()
            raise ProtocolError(
                f"coordinator at {self.host}:{self.port} dropped the "
                f"hello: {exc}"
            ) from exc
        if welcome is None or welcome.get("frame") != "welcome":
            conn.close()
            raise ProtocolError(
                f"coordinator at {self.host}:{self.port} did not "
                f"welcome us (got {welcome!r})"
            )
        self._conn = conn

    def _backoff_delay(self, attempt):
        """Capped exponential backoff with half jitter."""
        ceiling = min(self.backoff_max_s, self.backoff_s * (2 ** attempt))
        return ceiling / 2 + self._rng.uniform(0.0, ceiling / 2)

    def _reconnect_locked(self):
        """Blocking reconnect loop; raises :class:`CoordinatorLost`."""
        attempt = 0
        while not self.stop.is_set():
            if (self.max_reconnects is not None
                    and attempt >= self.max_reconnects):
                raise CoordinatorLost(
                    f"coordinator at {self.host}:{self.port} unreachable "
                    f"after {attempt} reconnect attempts"
                )
            delay = self._backoff_delay(attempt)
            LOGGER.warning(
                "worker %s reconnecting to %s:%s in %.2fs (attempt %d)",
                self.ident, self.host, self.port, delay, attempt + 1,
            )
            if self.stop.wait(delay):
                break
            attempt += 1
            try:
                self._dial_locked()
            except ProtocolError as exc:
                LOGGER.warning("reconnect attempt %d failed: %s",
                               attempt, exc)
                continue
            self.reconnects += 1
            LOGGER.info(
                "worker %s reconnected to %s:%s (attempt %d)",
                self.ident, self.host, self.port, attempt,
            )
            return
        raise WorkerShutdown("shutdown requested while disconnected")

    def connect(self):
        """Initial dial.  With reconnect enabled, failures back off."""
        with self._lock:
            try:
                self._dial_locked()
            except ProtocolError:
                if not self.reconnect:
                    raise
                LOGGER.warning(
                    "worker %s initial dial to %s:%s failed; retrying",
                    self.ident, self.host, self.port,
                )
                self._reconnect_locked()

    def close(self):
        """Close the socket (idempotent)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    @property
    def connected(self):
        return self._conn is not None

    @property
    def buffered_rows(self):
        """Rows frames currently waiting for a live socket."""
        return len(self._pending)

    # -- sending --------------------------------------------------------------

    def _teardown_locked(self, exc):
        LOGGER.warning(
            "worker %s lost the coordinator socket: %s", self.ident, exc
        )
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _drain_locked(self):
        """Flush buffered rows frames ahead of whatever sends next."""
        while self._pending:
            frame_type, fields = self._pending[0]
            self._conn.send(frame_type, **fields)
            self._pending.popleft()

    def _buffer_locked(self, frame_type, fields):
        if len(self._pending) == self._pending.maxlen:
            self.dropped_rows += 1
        self._pending.append((frame_type, fields))

    def send(self, frame_type, **fields):
        """Send one frame per the class semantics above.

        Returns True when the frame reached the socket, False when it
        was buffered (rows) or dropped (heartbeat).

        :raises CoordinatorLost: control frame + reconnect exhausted.
        :raises WorkerShutdown: stop requested mid-backoff.
        """
        with self._lock:
            if self._conn is not None:
                try:
                    self._drain_locked()
                    self._conn.send(frame_type, **fields)
                    return True
                except OSError as exc:
                    self._teardown_locked(exc)
            if frame_type == "rows":
                self._buffer_locked(frame_type, fields)
                return False
            if frame_type == "heartbeat":
                return False
            if not self.reconnect:
                raise CoordinatorLost(
                    f"coordinator connection lost and reconnect is "
                    f"disabled (sending {frame_type!r})"
                )
            self._reconnect_locked()
            self._drain_locked()
            self._conn.send(frame_type, **fields)
            return True

    def send_best_effort(self, frame_type, **fields):
        """Send without reconnecting; swallow (but log) any failure."""
        with self._lock:
            if self._conn is None:
                return False
            try:
                self._conn.send(frame_type, **fields)
                return True
            except OSError as exc:
                self._teardown_locked(exc)
                return False

    # -- receiving --------------------------------------------------------------

    def recv(self, timeout=None):
        """Next inbound frame; None on timeout.

        EOF (the coordinator died or kicked us) triggers the reconnect
        loop and returns None — the caller re-issues whatever request
        was in flight, which is safe because every worker request is
        idempotent (a duplicate ``lease_request`` just parks).
        """
        conn = self._conn
        if conn is None:
            with self._lock:
                if self._conn is None:
                    if not self.reconnect:
                        raise CoordinatorLost(
                            "coordinator connection lost and reconnect "
                            "is disabled"
                        )
                    self._reconnect_locked()
                conn = self._conn
        frame = conn.recv(timeout=timeout)
        if frame is None and conn.eof:
            with self._lock:
                if self._conn is conn:
                    self._teardown_locked("EOF")
            return None
        return frame


class RowStreamStore(StoreBackend):
    """A store backend that streams run rows over the wire.

    Bridges the runner's local-index world to the campaign's global
    one: the shard sub-spec's faults are indexed ``0..n-1``, so every
    recorded run is translated back to its **global** fault index and
    content key (from the shard plan) before it leaves the process.
    Rows are sent as they land — one ``rows`` frame per terminal
    outcome — so the coordinator's shard database is current to within
    one run at any kill point.

    ``stop`` (optional) is the graceful-shutdown hook: it is checked
    *after* each row ships, so a SIGTERM lets the in-flight fault
    finish and flush before :class:`WorkerShutdown` unwinds the run.
    """

    def __init__(self, shard, send, stop=None):
        """:param send: ``send(frame_type, **fields)`` (lock-guarded)."""
        self.shard = shard
        self._send = send
        self._stop = stop
        self.golden = None
        self.execution = None
        self.rows_sent = 0
        self.done = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Nothing to release: the socket belongs to the worker loop."""

    def _check_stop(self):
        if self._stop is not None and self._stop.is_set():
            raise WorkerShutdown(
                f"graceful shutdown after fault {self.done} of shard "
                f"{self.shard.shard_id}"
            )

    # -- campaign registration ---------------------------------------------

    def open_campaign(self, spec, resume=False):
        """The shard id doubles as the campaign handle."""
        return self.shard.shard_id

    def check_golden(self, campaign_id, probes):
        """Capture this worker's golden digests for the complete frame."""
        self.golden = probes_digest(probes)

    def pending_indices(self, campaign_id, total, include_quarantined=False):
        """A streamed shard never resumes locally: everything pends."""
        return list(range(total))

    # -- run recording --------------------------------------------------------

    def _ship(self, row):
        self._send("rows", token=None, rows=[row])
        self.rows_sent += 1
        self.done += 1
        self._check_stop()

    def _globalize(self, index):
        """Local sub-spec index -> (global fault index, fault key)."""
        return self.shard.indices[index], self.shard.fault_keys[index]

    def record_run(self, campaign_id, index, fault_result,
                   wall_s=None, kernel_events=None, attempts=1,
                   stratum=None):
        """Translate one completed run to a row frame and send it.

        ``stratum`` is ignored: sampled-campaign shards are planned
        by the coordinator, which attaches each row's stratum from its
        own strata map at ingest.
        """
        global_idx, key = self._globalize(index)
        self._ship(result_to_row(
            global_idx, key, fault_result, wall_s=wall_s,
            kernel_events=kernel_events, attempts=attempts,
        ))

    def record_runs(self, campaign_id, rows):
        """Batch outcomes ship as one frame (batched campaigns)."""
        payload = []
        for row in rows:
            index, fault_result, wall_s, kernel_events, attempts = row[:5]
            global_idx, key = self._globalize(index)
            payload.append(result_to_row(
                global_idx, key, fault_result, wall_s=wall_s,
                kernel_events=kernel_events, attempts=attempts,
            ))
        if payload:
            self._send("rows", token=None, rows=payload)
            self.rows_sent += len(payload)
            self.done += len(payload)
            self._check_stop()

    def record_error(self, campaign_id, index, message, wall_s=None,
                     status="error", attempts=1, quarantined=False,
                     postmortem=None, stratum=None):
        """Failed runs ship too — they are terminal outcomes.

        ``postmortem`` is a worker-local path; it travels as an opaque
        string (the artifact itself stays on the worker host).
        """
        global_idx, key = self._globalize(index)
        self._ship(error_to_row(
            global_idx, key, message, status=status, wall_s=wall_s,
            attempts=attempts, quarantined=quarantined,
            postmortem=postmortem,
        ))

    def record_execution(self, campaign_id, execution, status="complete"):
        """Capture the shard's execution stats for the complete frame."""
        self.execution = dict(execution)
        self.execution["status"] = status


def _netlist_factory(netlist_dict):
    """A design factory built from a netlist shipped in the lease."""
    from ..netlist import Netlist, design_factory

    return design_factory(Netlist.from_dict(netlist_dict))


def worker_name():
    """This process's worker identity: ``host:pid``."""
    return f"{_socket.gethostname()}:{os.getpid()}"


def execute_shard(shard, factory=None, send=lambda *_a, **_k: None,
                  sink_box=None, stop=None):
    """Run one shard through the campaign runner, streaming rows.

    Factory resolution order: the explicit ``factory`` argument, then
    a netlist carried by the shard itself.  Returns the
    :class:`RowStreamStore` holding the execution stats and golden
    digests.

    :param sink_box: optional dict the sink is published into under
        ``"sink"`` before the run starts (heartbeat progress hook).
    :param stop: optional event requesting graceful shutdown between
        faults.
    :raises ProtocolError: when no design source is available.
    :raises WorkerShutdown: when ``stop`` is set mid-shard (the
        in-flight fault's row has already shipped).
    """
    if factory is None:
        if shard.netlist is None:
            raise ProtocolError(
                f"shard {shard.shard_id} carries no netlist and the "
                "worker has no local design factory"
            )
        factory = _netlist_factory(shard.netlist)
    sink = RowStreamStore(shard, send, stop=stop)
    if sink_box is not None:
        sink_box["sink"] = sink
    config = dict(shard.config)
    config.setdefault("on_error", "collect")
    run_campaign(factory, shard.campaign_spec(), store=sink, **config)
    return sink


def _install_sigterm(stop):
    """Route SIGTERM to the stop event (main thread only).

    Returns the previous handler, or None when installation was not
    possible (``run_worker`` called from a non-main thread — tests,
    embedders — where the caller owns signal policy).
    """
    try:
        return signal.signal(
            signal.SIGTERM, lambda _sig, _frm: stop.set()
        )
    except ValueError:
        return None


def run_worker(address, factory=None, name=None, max_shards=None,
               heartbeat_s=DEFAULT_HEARTBEAT_S, connect_timeout=10.0,
               reconnect=True, max_reconnects=DEFAULT_MAX_RECONNECTS,
               backoff_s=DEFAULT_BACKOFF_S,
               backoff_max_s=DEFAULT_BACKOFF_MAX_S,
               row_buffer=DEFAULT_ROW_BUFFER, stop=None, rng=None):
    """Worker daemon main loop: lease, execute, stream, repeat.

    Connects to ``address`` (``"host:port"`` or a ``(host, port)``
    tuple), then loops lease requests until the coordinator drains or
    shuts it down.  Each leased shard runs under a heartbeat thread
    that reports the worker's pid, current run phase (from the
    supervisor's :data:`WORKER_PHASE`) and progress, so the
    coordinator can distinguish a slow shard from a dead worker.

    Socket failures at any point (dial, lease wait, row streaming)
    enter a capped-exponential-backoff reconnect loop rather than
    killing the worker; rows that could not be streamed during an
    outage drain after reconnect.  SIGTERM (when callable from the
    main thread) requests a graceful exit: the in-flight fault
    finishes and flushes, the lease is released, the worker says
    ``bye``.

    Returns the number of shards completed.

    :param factory: optional local design factory; otherwise shards
        must carry their netlist.
    :param max_shards: stop after this many shards (tests).
    :param reconnect: False restores fail-fast sockets (one strike).
    :param max_reconnects: consecutive failed dials before giving up
        (None: keep trying forever).
    :param backoff_s / backoff_max_s: reconnect backoff base/ceiling.
    :param row_buffer: rows buffered while disconnected (oldest
        dropped beyond this; dedup makes the drop safe).
    :param stop: optional external shutdown event (otherwise created,
        and wired to SIGTERM when possible).
    :param rng: randomness for backoff jitter (tests seed it).
    :raises CoordinatorLost: when the coordinator stays unreachable
        past ``max_reconnects``.
    """
    if isinstance(address, str):
        address = parse_address(address)
    host, port = address
    ident = name or worker_name()
    stop = stop or threading.Event()
    previous_handler = _install_sigterm(stop)
    link = CoordinatorLink(
        host, port, ident, connect_timeout=connect_timeout,
        reconnect=reconnect, max_reconnects=max_reconnects,
        backoff_s=backoff_s, backoff_max_s=backoff_max_s,
        row_buffer=row_buffer, stop=stop, rng=rng,
    )
    link.connect()
    completed = 0
    requested = False   # a lease_request is parked at the coordinator
    try:
        while not stop.is_set() and (
                max_shards is None or completed < max_shards):
            if not requested:
                link.send("lease_request")
                requested = True
            frame = link.recv(timeout=0.5)
            if frame is None:
                # Timeout (poll the stop event again) or EOF; after an
                # EOF the parked request died with the socket.
                if not link.connected:
                    requested = False
                continue
            if frame["frame"] in ("drain", "shutdown"):
                break
            if frame["frame"] == "error":
                LOGGER.error(
                    "coordinator rejected us: %s", frame.get("message")
                )
                requested = False
                continue
            if frame["frame"] != "lease":
                raise ProtocolError(
                    f"expected a lease, got {frame['frame']!r}"
                )
            requested = False
            shard = Shard.from_dict(frame["shard"])
            token = frame["token"]
            LOGGER.info(
                "worker %s leased shard %d (%d faults, token %s)",
                ident, shard.shard_id, shard.size, token,
            )
            if _run_leased_shard(shard, token, factory, link,
                                 heartbeat_s, stop):
                completed += 1
        if not link.send_best_effort("bye"):
            LOGGER.warning(
                "worker %s could not say bye (coordinator gone)", ident
            )
    except WorkerShutdown:
        LOGGER.info("worker %s stopping on shutdown request", ident)
        link.send_best_effort("bye")
    finally:
        link.close()
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
    return completed


def _run_leased_shard(shard, token, factory, link, heartbeat_s, stop):
    """Execute one leased shard under a heartbeat thread.

    Returns True when the shard completed (its ``complete`` frame was
    handed to the link), False when it was aborted and its lease
    released with an ``error`` frame.
    """
    beat_stop = threading.Event()
    sink_box = {}

    def _heartbeat_loop():
        while not beat_stop.wait(heartbeat_s):
            sink = sink_box.get("sink")
            try:
                link.send(
                    "heartbeat", token=token, pid=os.getpid(),
                    phase=WORKER_PHASE["phase"],
                    done=sink.done if sink is not None else 0,
                    total=shard.size,
                )
            except (ProtocolError, OSError) as exc:
                # The link buffers/drops on a dead socket, so landing
                # here means the heartbeat machinery itself broke;
                # say so instead of dying silently — the main loop's
                # own sends decide whether to reconnect or exit.
                LOGGER.warning(
                    "heartbeat for shard %d stopped: %s",
                    shard.shard_id, exc,
                )
                return

    beat = threading.Thread(target=_heartbeat_loop, daemon=True)
    beat.start()
    wall_start = perf_counter()
    try:
        def tokenized_send(frame_type, **fields):
            if "token" in fields:
                fields["token"] = token
            link.send(frame_type, **fields)

        sink = execute_shard(shard, factory=factory, send=tokenized_send,
                             sink_box=sink_box, stop=stop)
    except WorkerShutdown:
        beat_stop.set()
        beat.join(timeout=2.0)
        sink = sink_box.get("sink")
        done = sink.done if sink is not None else 0
        LOGGER.info(
            "shard %d released after %d faults (graceful shutdown)",
            shard.shard_id, done,
        )
        link.send_best_effort(
            "error", token=token,
            message=f"worker shutting down (SIGTERM) after "
                    f"{done}/{shard.size} faults",
        )
        raise
    except Exception as exc:
        LOGGER.exception("shard %d failed on this worker", shard.shard_id)
        beat_stop.set()
        beat.join(timeout=2.0)
        link.send("error", token=token,
                  message=f"{type(exc).__name__}: {exc}")
        return False
    beat_stop.set()
    beat.join(timeout=2.0)
    link.send(
        "complete", token=token, rows=sink.rows_sent,
        execution=sink.execution, golden=sink.golden,
        wall_s=round(perf_counter() - wall_start, 6),
    )
    return True
