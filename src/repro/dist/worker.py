"""The distributed campaign worker daemon.

A worker dials the coordinator, pulls shard leases and executes each
through the **ordinary campaign runner** — warm starts, batching,
supervision and retry all behave exactly as they do locally, because
the shard's sub-spec *is* a campaign spec.  What differs is the store:
a :class:`RowStreamStore` ships every completed run row over the
socket as it lands instead of writing SQLite, so the coordinator's
per-shard database grows while the shard is still running and a
worker killed mid-shard forfeits only the rows it had not yet
streamed.

Designs reach the worker one of two ways:

* a local **factory** (``--netlist`` on the CLI, or a Python callable
  for in-process workers) — the common case for fleet deployments
  where every host has the design files;
* a netlist dict **in the lease** (the submit client attached it) —
  zero-install workers that build the design from the wire.

Each worker runs its own golden simulation per shard and reports the
golden probe digests with its ``complete`` frame; the coordinator
cross-checks digests across workers, so a worker with a diverging
toolchain or design file is detected, not silently merged.
"""

from __future__ import annotations

import logging
import os
import socket as _socket
import threading
from time import perf_counter

from ..campaign.runner import run_campaign
from ..campaign.supervisor import WORKER_PHASE
from ..store.backend import StoreBackend
from ..store.serialize import error_to_row, probes_digest, result_to_row
from .protocol import (
    PROTOCOL_VERSION,
    FrameConnection,
    ProtocolError,
    connect,
    parse_address,
)
from .shards import Shard

LOGGER = logging.getLogger("repro.dist")

#: Default seconds between worker heartbeat frames.
DEFAULT_HEARTBEAT_S = 1.0


class RowStreamStore(StoreBackend):
    """A store backend that streams run rows over the wire.

    Bridges the runner's local-index world to the campaign's global
    one: the shard sub-spec's faults are indexed ``0..n-1``, so every
    recorded run is translated back to its **global** fault index and
    content key (from the shard plan) before it leaves the process.
    Rows are sent as they land — one ``rows`` frame per terminal
    outcome — so the coordinator's shard database is current to within
    one run at any kill point.
    """

    def __init__(self, shard, send):
        """:param send: ``send(frame_type, **fields)`` (lock-guarded)."""
        self.shard = shard
        self._send = send
        self.golden = None
        self.execution = None
        self.rows_sent = 0
        self.done = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Nothing to release: the socket belongs to the worker loop."""

    # -- campaign registration ---------------------------------------------

    def open_campaign(self, spec, resume=False):
        """The shard id doubles as the campaign handle."""
        return self.shard.shard_id

    def check_golden(self, campaign_id, probes):
        """Capture this worker's golden digests for the complete frame."""
        self.golden = probes_digest(probes)

    def pending_indices(self, campaign_id, total, include_quarantined=False):
        """A streamed shard never resumes locally: everything pends."""
        return list(range(total))

    # -- run recording --------------------------------------------------------

    def _ship(self, row):
        self._send("rows", token=None, rows=[row])
        self.rows_sent += 1
        self.done += 1

    def _globalize(self, index):
        """Local sub-spec index -> (global fault index, fault key)."""
        return self.shard.indices[index], self.shard.fault_keys[index]

    def record_run(self, campaign_id, index, fault_result,
                   wall_s=None, kernel_events=None, attempts=1):
        """Translate one completed run to a row frame and send it."""
        global_idx, key = self._globalize(index)
        self._ship(result_to_row(
            global_idx, key, fault_result, wall_s=wall_s,
            kernel_events=kernel_events, attempts=attempts,
        ))

    def record_runs(self, campaign_id, rows):
        """Batch outcomes ship as one frame (batched campaigns)."""
        payload = []
        for index, fault_result, wall_s, kernel_events, attempts in rows:
            global_idx, key = self._globalize(index)
            payload.append(result_to_row(
                global_idx, key, fault_result, wall_s=wall_s,
                kernel_events=kernel_events, attempts=attempts,
            ))
        if payload:
            self._send("rows", token=None, rows=payload)
            self.rows_sent += len(payload)
            self.done += len(payload)

    def record_error(self, campaign_id, index, message, wall_s=None,
                     status="error", attempts=1, quarantined=False,
                     postmortem=None):
        """Failed runs ship too — they are terminal outcomes.

        ``postmortem`` is a worker-local path; it travels as an opaque
        string (the artifact itself stays on the worker host).
        """
        global_idx, key = self._globalize(index)
        self._ship(error_to_row(
            global_idx, key, message, status=status, wall_s=wall_s,
            attempts=attempts, quarantined=quarantined,
            postmortem=postmortem,
        ))

    def record_execution(self, campaign_id, execution, status="complete"):
        """Capture the shard's execution stats for the complete frame."""
        self.execution = dict(execution)
        self.execution["status"] = status


def _netlist_factory(netlist_dict):
    """A design factory built from a netlist shipped in the lease."""
    from ..netlist import Netlist, design_factory

    return design_factory(Netlist.from_dict(netlist_dict))


def worker_name():
    """This process's worker identity: ``host:pid``."""
    return f"{_socket.gethostname()}:{os.getpid()}"


def execute_shard(shard, factory=None, send=lambda *_a, **_k: None,
                  sink_box=None):
    """Run one shard through the campaign runner, streaming rows.

    Factory resolution order: the explicit ``factory`` argument, then
    a netlist carried by the shard itself.  Returns the
    :class:`RowStreamStore` holding the execution stats and golden
    digests.

    :param sink_box: optional dict the sink is published into under
        ``"sink"`` before the run starts (heartbeat progress hook).
    :raises ProtocolError: when no design source is available.
    """
    if factory is None:
        if shard.netlist is None:
            raise ProtocolError(
                f"shard {shard.shard_id} carries no netlist and the "
                "worker has no local design factory"
            )
        factory = _netlist_factory(shard.netlist)
    sink = RowStreamStore(shard, send)
    if sink_box is not None:
        sink_box["sink"] = sink
    config = dict(shard.config)
    config.setdefault("on_error", "collect")
    run_campaign(factory, shard.campaign_spec(), store=sink, **config)
    return sink


def run_worker(address, factory=None, name=None, max_shards=None,
               heartbeat_s=DEFAULT_HEARTBEAT_S, connect_timeout=10.0):
    """Worker daemon main loop: lease, execute, stream, repeat.

    Connects to ``address`` (``"host:port"`` or a ``(host, port)``
    tuple), then loops lease requests until the coordinator drains or
    shuts it down.  Each leased shard runs under a heartbeat thread
    that reports the worker's pid, current run phase (from the
    supervisor's :data:`WORKER_PHASE`) and progress, so the
    coordinator can distinguish a slow shard from a dead worker.

    Returns the number of shards completed.

    :param factory: optional local design factory; otherwise shards
        must carry their netlist.
    :param max_shards: stop after this many shards (tests).
    """
    if isinstance(address, str):
        address = parse_address(address)
    host, port = address
    conn = connect(host, port, timeout=connect_timeout)
    ident = name or worker_name()
    send_lock = threading.Lock()

    def send(frame_type, **fields):
        with send_lock:
            conn.send(frame_type, **fields)

    send("hello", role="worker", name=ident, pid=os.getpid(),
         host=_socket.gethostname(), proto=PROTOCOL_VERSION)
    welcome = conn.recv(timeout=connect_timeout)
    if welcome is None or welcome.get("frame") != "welcome":
        conn.close()
        raise ProtocolError(
            f"coordinator at {host}:{port} did not welcome us "
            f"(got {welcome!r})"
        )

    completed = 0
    try:
        while max_shards is None or completed < max_shards:
            send("lease_request")
            frame = conn.recv(timeout=None)
            if frame is None or frame["frame"] in ("drain", "shutdown"):
                break
            if frame["frame"] != "lease":
                raise ProtocolError(
                    f"expected a lease, got {frame['frame']!r}"
                )
            shard = Shard.from_dict(frame["shard"])
            token = frame["token"]
            LOGGER.info(
                "worker %s leased shard %d (%d faults, token %s)",
                ident, shard.shard_id, shard.size, token,
            )
            _run_leased_shard(shard, token, factory, send, heartbeat_s)
            completed += 1
        try:
            send("bye")
        except OSError:
            pass
    finally:
        conn.close()
    return completed


def _run_leased_shard(shard, token, factory, send, heartbeat_s):
    """Execute one leased shard under a heartbeat thread."""
    stop = threading.Event()
    sink_box = {}

    def _heartbeat_loop():
        while not stop.wait(heartbeat_s):
            sink = sink_box.get("sink")
            try:
                send(
                    "heartbeat", token=token, pid=os.getpid(),
                    phase=WORKER_PHASE["phase"],
                    done=sink.done if sink is not None else 0,
                    total=shard.size,
                )
            except OSError:
                return

    beat = threading.Thread(target=_heartbeat_loop, daemon=True)
    beat.start()
    wall_start = perf_counter()
    try:
        def tokenized_send(frame_type, **fields):
            if "token" in fields:
                fields["token"] = token
            send(frame_type, **fields)

        sink = execute_shard(shard, factory=factory, send=tokenized_send,
                             sink_box=sink_box)
    except Exception as exc:
        LOGGER.exception("shard %d failed on this worker", shard.shard_id)
        stop.set()
        beat.join(timeout=2.0)
        send("error", token=token,
             message=f"{type(exc).__name__}: {exc}")
        return
    stop.set()
    beat.join(timeout=2.0)
    send(
        "complete", token=token, rows=sink.rows_sent,
        execution=sink.execution, golden=sink.golden,
        wall_s=round(perf_counter() - wall_start, 6),
    )
