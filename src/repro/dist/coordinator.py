"""The distributed campaign coordinator.

One single-threaded ``selectors`` event loop owns everything: the
listening socket, every worker and client connection, the shard
queue, lease bookkeeping and all database writes.  Single-threaded by
design — SQLite wants one writer, lease state wants no races, and a
fault-injection coordinator spends its life waiting on sockets, not
computing.

Jobs move through a strict lifecycle::

    submit (API or in-process) -> shards queued -> leases granted
        -> rows ingested into per-shard databases (crash-durable)
        -> shard complete -> merged into the final store
        -> all shards merged -> job complete (execution row written)

Fault tolerance is lease-based, **at-least-once**:

* every lease carries a token; frames with a stale token (a zombie
  worker streaming after reassignment) are logged and dropped;
* a worker's death is observed two ways — socket EOF (a SIGKILLed
  process closes its socket immediately) and heartbeat silence
  (:attr:`Coordinator.lease_timeout_s`, for wedged-but-alive workers)
  — and either way its shards requeue for the next lease request;
* re-executed shards re-stream rows already ingested from the dead
  worker's partial run; the per-shard database's first-writer-wins
  insert makes re-ingest idempotent, so the merged store is identical
  to a serial run.

Golden consistency across hosts is verified, not assumed: the first
completing worker's golden probe digests are recorded in the final
store, and every later shard's digests must match or the job aborts
(:class:`~repro.store.store.StoreError` semantics identical to a
local resume against a drifted golden).
"""

from __future__ import annotations

import logging
import os
import selectors
import socket
import threading
from collections import deque
from time import monotonic

from ..campaign.sampling import (
    StratifiedSampler,
    row_outcome,
    stored_outcomes,
)
from ..core.errors import ReproError
from ..obs import journal as _journal
from ..store.serialize import fault_key, spec_from_dict, spec_to_dict
from ..store.sharded import ShardedCampaignStore
from ..store.store import CampaignStore, StoreError
from .ledger import CoordinatorLedger, replay_ledger
from .protocol import (
    PROTOCOL_VERSION,
    FrameBuffer,
    ProtocolError,
    encode_frame,
    make_frame,
)
from .shards import DEFAULT_SHARD_SIZE, plan_chunk_shard, plan_shards

LOGGER = logging.getLogger("repro.dist")

#: Default seconds of heartbeat silence before a lease is revoked.
DEFAULT_LEASE_TIMEOUT_S = 15.0

#: Default ceiling on leases per shard before it is declared failed
#: (guards against a poisoned shard crashing every worker in turn).
DEFAULT_MAX_LEASES = 3

#: Default seconds an EOF'd worker's leases survive awaiting its
#: reconnect before they requeue (socket blips should not forfeit a
#: half-streamed shard).
DEFAULT_RECONNECT_GRACE_S = 10.0

#: Default seconds a connected-but-silent peer may go without
#: completing its hello before it is reaped.
DEFAULT_HELLO_TIMEOUT_S = 30.0

#: Malformed frames tolerated from one peer before it is disconnected.
MAX_FRAME_REJECTS = 8


class CoordinatorError(ReproError):
    """Raised for invalid coordinator usage or aborted jobs."""


class _Peer:
    """One connected socket: a worker, a client, or not-yet-hello'd."""

    def __init__(self, sock, addr):
        self.sock = sock
        self.addr = addr
        # Tolerant framing: one garbled line from one peer is rejected
        # and journaled, never allowed to kill the selector loop or
        # the well-formed frames queued behind it.
        self.buffer = FrameBuffer(tolerant=True)
        self.role = None
        self.name = f"{addr[0]}:{addr[1]}"
        self.pid = None
        self.waiting = False   # parked lease_request (no work yet)
        self.connected_at = monotonic()
        self.last_activity = monotonic()


class _Lease:
    """One granted shard lease.

    ``peer`` is None while the lease is *orphaned*: its holder's
    socket dropped, and the lease waits ``reconnect_grace_s`` for the
    same worker (by name) to reconnect and re-adopt it before the
    shard requeues.
    """

    def __init__(self, job, shard, token, peer):
        self.job = job
        self.shard = shard
        self.token = token
        self.peer = peer
        self.worker_name = peer.name
        self.granted_at = monotonic()
        self.last_heartbeat = monotonic()
        self.orphaned_at = None


class _Job:
    """One submitted campaign: its shards, queue and progress.

    Exhaustive jobs carry a static shard *list* planned at submit.
    Sampled jobs (``sampler`` is set) carry a shard *dict* that grows
    as the sampler draws chunks — shard ``k`` is chunk ``k`` — plus
    the merge-ordering state that keeps convergence decisions
    identical to a single-host run: completions buffer in ``ready``
    until every earlier chunk has merged.
    """

    def __init__(self, job_id, name, shards, campaign_id, total=None,
                 sampler=None, sampling=None, plan=None):
        self.job_id = job_id
        self.name = name
        self.shards = shards
        self.campaign_id = campaign_id
        self.sampler = sampler
        self.sampling = sampling  # submitted sampling config (or None)
        self.plan = plan          # (base_spec, fault_keys, netlist, config)
        self.workers = set()      # names of workers that merged shards
        self.queue = deque(
            () if sampler is not None else range(len(shards))
        )
        self.active = {}          # shard_id -> _Lease
        self.merged = set()       # shard ids merged into the final store
        self.failed = set()       # shard ids past the lease ceiling
        self.lease_counts = (
            {} if sampler is not None
            else {s.shard_id: 0 for s in shards}
        )
        self.seen_rows = set()    # global fault indices already ingested
        self.golden = None        # first worker's golden digests
        self.shard_goldens = {}   # shard_id -> that shard's golden digests
        self.executions = []      # per-shard execution stats
        self.chunks = {}          # chunk ident -> SampleChunk in flight
        self.ready = {}           # shard_id -> (worker, frame) to merge
        self.abandoned = set()    # chunk shards dropped by the early stop
        self.merge_cursor = 0     # next chunk ident to finish, in order
        self.stop_recorded = False
        self._total = total
        self.state = "running"
        self.done = threading.Event()
        self.wall_start = monotonic()

    @property
    def total(self):
        if self._total is not None:
            return self._total
        return self.shards[0].total if self.shards else 0

    def status(self):
        """JSON-ready progress snapshot (the ``job_status`` payload)."""
        status = {
            "job": self.job_id,
            "name": self.name,
            "state": self.state,
            "shards": len(self.shards),
            "queued": len(self.queue),
            "active": sorted(self.active),
            "merged": len(self.merged),
            "failed": sorted(self.failed),
            "total": self.total,
            "rows": len(self.seen_rows),
        }
        if self.sampler is not None:
            status["sampled"] = True
            status["trials"] = self.sampler.trials
            status["half_width"] = self.sampler.half_width()
            status["stopped"] = self.sampler.reason
        return status


class Coordinator:
    """Shard dispatcher, result ingestor and merge engine.

    :param store_path: the final campaign store (created at first
        submit; ``campaign watch`` can tail it as shards merge).
    :param host: listen address (default loopback).
    :param port: listen port (0 = ephemeral; read :attr:`address`).
    :param shard_size: faults per shard for submitted jobs.
    :param lease_timeout_s: heartbeat silence before lease revocation.
    :param max_leases: lease attempts per shard before it fails.
    :param shard_dir: directory for per-shard databases (default:
        ``<store_path>.shards/``).
    :param ledger_path: append-only job ledger enabling
        :meth:`resume_from_ledger` after a coordinator crash (None:
        no ledger, in-memory state only).
    :param reconnect_grace_s: seconds an EOF'd worker's leases wait
        for the same worker to reconnect before requeueing (0
        restores immediate revocation).
    :param lease_wall_s: optional wall-clock ceiling per lease — a
        shard still leased after this many seconds requeues even if
        its worker keeps heartbeating (None: heartbeats alone govern).
    :param hello_timeout_s: seconds a connected socket may sit without
        completing its hello before it is reaped.
    :param client_idle_s: optional idle ceiling for hello'd clients
        (workers are never idle-reaped: a parked lease request is
        legitimately silent).
    """

    def __init__(self, store_path, host="127.0.0.1", port=0,
                 shard_size=DEFAULT_SHARD_SIZE,
                 lease_timeout_s=DEFAULT_LEASE_TIMEOUT_S,
                 max_leases=DEFAULT_MAX_LEASES, shard_dir=None,
                 ledger_path=None,
                 reconnect_grace_s=DEFAULT_RECONNECT_GRACE_S,
                 lease_wall_s=None,
                 hello_timeout_s=DEFAULT_HELLO_TIMEOUT_S,
                 client_idle_s=None):
        self.store_path = str(store_path)
        self.shard_size = shard_size
        self.lease_timeout_s = lease_timeout_s
        self.max_leases = max_leases
        self.reconnect_grace_s = reconnect_grace_s
        self.lease_wall_s = lease_wall_s
        self.hello_timeout_s = hello_timeout_s
        self.client_idle_s = client_idle_s
        self.shard_dir = (
            str(shard_dir) if shard_dir is not None
            else self.store_path + ".shards"
        )
        self._ledger = CoordinatorLedger(ledger_path)
        self._lock = threading.RLock()
        self._selector = selectors.DefaultSelector()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((host, port))
        self._listener.listen(32)
        self._listener.setblocking(False)
        self.address = self._listener.getsockname()[:2]
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._peers = {}          # socket -> _Peer
        self._jobs = {}           # job_id -> _Job
        self._next_job = 1
        self._leases = {}         # token -> _Lease
        self._seen_workers = set()  # worker names ever hello'd
        self._stop = threading.Event()
        self._drain_when_idle = False
        self._store = None        # final CampaignStore, opened lazily
        self._sharded = ShardedCampaignStore(self.shard_dir)
        self._thread = None

    # -- stores ---------------------------------------------------------------

    def _final_store(self):
        if self._store is None:
            self._store = CampaignStore(self.store_path)
        return self._store

    # -- job submission --------------------------------------------------------

    def submit(self, spec, netlist=None, config=None, sampling=None):
        """Plan and queue one campaign; returns its job id.

        Thread-safe: callable from outside the event loop (the
        in-process path ``run_distributed`` uses) as well as from a
        client ``submit`` frame inside it.  Registers the campaign in
        the final store immediately — its spec and fault list exist
        before any worker runs, exactly as in a serial campaign.

        :param sampling: optional adaptive-sampling configuration dict
            (``margin`` required; ``confidence``, ``seed``, ``strata``
            optional).  A sampled job has no static shard plan: the
            coordinator's stratified sampler draws chunks of
            ``shard_size`` faults, each chunk runs as one shard, and
            the job stops — revoking outstanding leases — the moment
            the pooled Wilson interval closes to the margin.  The
            sampling config stays coordinator-side; workers execute
            plain exhaustive shards.
        """
        with self._lock:
            store = self._final_store()
            sampler = None
            plan = None
            if sampling is not None:
                sampling = dict(sampling)
                sampler = self._build_sampler(spec, sampling)
                shards = {}
                plan = (
                    spec_to_dict(spec),
                    [fault_key(fault) for fault in spec.faults],
                    netlist,
                    dict(config or {}),
                )
            else:
                shards = plan_shards(
                    spec, shard_size=self.shard_size, netlist=netlist,
                    config=config,
                )
            campaign_id = store.open_campaign(spec, resume=False)
            if sampler is not None:
                store.record_sampling(
                    campaign_id, sampler.seed, sampler.margin,
                    sampler.confidence, sampler.strata_mode,
                    sampler.chunk,
                )
            if _journal.JOURNAL.enabled:
                store.record_journal(
                    campaign_id, _journal.JOURNAL.path,
                    _journal.JOURNAL.session_offset,
                )
            job_id = self._next_job
            self._next_job += 1
            job = _Job(
                job_id, spec.name, shards, campaign_id,
                total=len(spec.faults), sampler=sampler,
                sampling=sampling, plan=plan,
            )
            self._jobs[job_id] = job
            # Durability point: the ledger line lands (fsynced) before
            # any lease is granted, so a crash at any later moment can
            # re-plan the identical shards from the recorded spec (a
            # sampled job's chunks re-draw identically from the
            # recorded sampling config).
            self._ledger.record(
                "job_submitted", job=job_id, name=spec.name,
                spec=spec_to_dict(spec), netlist=netlist, config=config,
                shard_size=self.shard_size, shards=len(shards),
                sampling=sampling,
            )
            if sampler is None:
                for shard in shards:
                    store.record_shard(
                        campaign_id, shard.shard_id, "queued",
                        n_faults=shard.size, leases=0,
                    )
            _journal.emit(
                "job_submitted", job=job_id, name=spec.name,
                total=len(spec.faults), shards=len(shards),
            )
            _journal.emit(
                "campaign_started", name=spec.name,
                total=len(spec.faults), pending=len(spec.faults),
                mode="distributed", workers=0,
            )
            LOGGER.info(
                "job %d submitted: campaign %r, %d faults%s",
                job_id, spec.name, len(spec.faults),
                (" sampled adaptively" if sampler is not None
                 else f" in {len(shards)} shards"),
            )
            self._feed_waiting_workers()
            return job_id

    def _build_sampler(self, spec, sampling, stored=None, chunk=None):
        """A job's :class:`StratifiedSampler` from its config dict.

        The chunk size is the coordinator's ``shard_size`` — one chunk
        is one shard — so a distributed sampled campaign is
        row-identical to a single-host run with ``chunk=shard_size``.
        """
        try:
            margin = sampling["margin"]
        except KeyError:
            raise CoordinatorError(
                "sampled jobs need a 'margin' in their sampling config"
            ) from None
        return StratifiedSampler(
            spec.faults,
            margin=margin,
            confidence=sampling.get("confidence", 0.95),
            seed=sampling.get("seed", 0),
            strata=sampling.get("strata", "site-phase"),
            chunk=self.shard_size if chunk is None else chunk,
            stored=stored,
        )

    def _resume_sampled_job(self, store, entry, job_id, spec,
                            campaign_id):
        """Rebuild one sampled job from its ledger entry.

        The sampler replays the final store's rows — chunks merged
        strictly in order before the crash, so the store is a
        prefix-consistent state of the draw sequence — and re-draws
        the identical chunks.  Chunk shards re-plan lazily at lease
        time; shard databases completed before the crash adopt there
        instead of re-running.  Returns the requeued shard count.
        """
        sampler = self._build_sampler(
            spec, entry.sampling,
            stored=stored_outcomes(store.run_rows(campaign_id)),
            chunk=entry.shard_size,
        )
        store.record_sampling(
            campaign_id, sampler.seed, sampler.margin,
            sampler.confidence, sampler.strata_mode, sampler.chunk,
        )
        job = _Job(
            job_id, spec.name, {}, campaign_id, total=len(spec.faults),
            sampler=sampler, sampling=entry.sampling,
            plan=(
                spec_to_dict(spec),
                [fault_key(fault) for fault in spec.faults],
                entry.netlist, dict(entry.config or {}),
            ),
        )
        job.failed = set(entry.failed)
        job.lease_counts.update(entry.lease_counts)
        job.seen_rows.update(store.completed_indices(campaign_id))
        self._jobs[job_id] = job
        # Drive the replay now: fully stored chunks finish inline
        # (possibly re-deriving a pre-crash convergence), and the
        # first chunk that still needs simulation queues for the next
        # lease request.
        shard = self._next_sample_shard(job)
        if shard is not None:
            job.queue.append(shard.shard_id)
        LOGGER.info(
            "job %d (%s) resumed sampled: %d outcomes replayed, %s",
            job_id, spec.name, sampler.simulated,
            f"stopped ({sampler.reason})" if sampler.stopped
            else "continuing",
        )
        self._maybe_finish(job)
        return len(job.queue)

    def submit_dict(self, spec_dict, netlist=None, config=None,
                    sampling=None):
        """Submit from JSON payloads (the ``submit`` frame path)."""
        return self.submit(
            spec_from_dict(spec_dict), netlist=netlist, config=config,
            sampling=sampling,
        )

    def resume_from_ledger(self, ledger_path=None):
        """Rebuild coordinator state after a crash; returns resumed job ids.

        Replays the job ledger and, for every job not recorded
        finished:

        * re-plans the identical shards from the recorded spec (the
          plan is deterministic);
        * re-attaches to the final store's campaign (``resume``
          semantics — the fault digest must match);
        * **adopts** every shard whose per-shard database already holds
          a row for each of its faults — merged idempotently into the
          final store, never re-run — including shards that completed
          after the last ledger line landed;
        * requeues the rest for the next lease request, crediting back
          leases that were live at the crash (a coordinator death is
          not the shard's strike);
        * rebuilds the seen-row set from the final store and the shard
          databases, so journal dedup and progress counts carry over.

        Call before :meth:`serve`/:meth:`start`; dials from workers
        queue in the listen backlog until the loop runs.

        :raises CoordinatorError: when no ledger path is available.
        :raises LedgerError: on unreadable or malformed ledgers.
        """
        path = ledger_path or self._ledger.path
        if path is None:
            raise CoordinatorError(
                "resume_from_ledger needs a ledger path (construct the "
                "coordinator with ledger_path=, or pass one here)"
            )
        entries = replay_ledger(path)
        resumed, adopted_total, requeued_total = [], 0, 0
        with self._lock:
            store = self._final_store()
            for job_id in sorted(entries):
                entry = entries[job_id]
                self._next_job = max(self._next_job, job_id + 1)
                if entry.finished is not None:
                    LOGGER.info(
                        "job %d (%s) already %s; nothing to resume",
                        job_id, entry.name, entry.finished,
                    )
                    continue
                spec = spec_from_dict(entry.spec)
                campaign_id = store.open_campaign(spec, resume=True)
                if entry.sampling is not None:
                    requeued_total += self._resume_sampled_job(
                        store, entry, job_id, spec, campaign_id,
                    )
                    resumed.append(job_id)
                    continue
                shards = plan_shards(
                    spec, shard_size=entry.shard_size,
                    netlist=entry.netlist, config=entry.config,
                )
                job = _Job(job_id, spec.name, shards, campaign_id)
                for shard_id, count in entry.lease_counts.items():
                    if shard_id in job.lease_counts:
                        job.lease_counts[shard_id] = count
                job.failed = set(entry.failed)
                job.seen_rows.update(store.completed_indices(campaign_id))
                adopted = []
                for shard in shards:
                    shard_id = shard.shard_id
                    if shard_id in job.failed:
                        continue
                    have = set()
                    if os.path.exists(self._sharded.shard_path(shard_id)):
                        have = {
                            int(row["idx"])
                            for row in self._sharded.shard_run_rows(shard)
                        }
                        job.seen_rows.update(have)
                    if (shard_id in entry.merged
                            or (have and set(shard.indices) <= have)):
                        merged = self._sharded.merge_into(
                            store, campaign_id, shard, worker="resume",
                            leases=job.lease_counts[shard_id] or None,
                        )
                        job.merged.add(shard_id)
                        adopted.append(shard_id)
                        _journal.emit(
                            "shard_completed", job=job_id, shard=shard_id,
                            worker="resume", rows=len(have), merged=merged,
                        )
                job.queue = deque(
                    shard.shard_id for shard in shards
                    if shard.shard_id not in job.merged
                    and shard.shard_id not in job.failed
                )
                for shard_id in job.queue:
                    store.record_shard(campaign_id, shard_id, "queued")
                self._jobs[job_id] = job
                resumed.append(job_id)
                adopted_total += len(adopted)
                requeued_total += len(job.queue)
                LOGGER.info(
                    "job %d (%s) resumed: %d shards adopted from disk, "
                    "%d requeued, %d failed",
                    job_id, spec.name, len(adopted), len(job.queue),
                    len(job.failed),
                )
                self._maybe_finish(job)
            if not self._ledger.enabled:
                # Resuming from an explicit path keeps appending to it,
                # so a second crash is as recoverable as the first.
                self._ledger = CoordinatorLedger(path)
            self._ledger.record(
                "resumed", jobs=resumed, adopted=adopted_total,
                requeued=requeued_total,
            )
            _journal.emit(
                "coordinator_resumed", jobs=len(resumed),
                adopted=adopted_total, requeued=requeued_total,
                ledger=str(path),
            )
            self._feed_waiting_workers()
        return resumed

    def job_status(self, job_id):
        """Progress snapshot of one job (thread-safe)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return {"job": job_id, "state": "unknown"}
            return job.status()

    def wait(self, job_id, timeout=None):
        """Block until a job reaches a terminal state; returns it."""
        job = self._jobs.get(job_id)
        if job is None:
            raise CoordinatorError(f"unknown job {job_id}")
        job.done.wait(timeout)
        return self.job_status(job_id)

    # -- event loop ------------------------------------------------------------

    def serve(self, poll_s=0.2):
        """Run the event loop until :meth:`stop` (blocking)."""
        try:
            while not self._stop.is_set():
                for key, _events in self._selector.select(poll_s):
                    if key.data is None:
                        self._accept()
                    else:
                        self._service_peer(key.data)
                with self._lock:
                    self._expire_leases()
                    self._reap_idle_peers()
                    self._maybe_drain()
        finally:
            self._shutdown_sockets()

    def start(self):
        """Run :meth:`serve` in a background thread (tests, embedding)."""
        self._thread = threading.Thread(target=self.serve, daemon=True)
        self._thread.start()
        return self._thread

    def stop(self):
        """Stop the loop and close every socket and database."""
        self._stop.set()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            self._sharded.close()
            if self._store is not None:
                self._store.close()
                self._store = None
            self._ledger.close()

    def drain_when_idle(self, enable=True):
        """Tell idle workers to disconnect once no work remains.

        The one-shot mode (``run_distributed``, ``campaign serve``
        with an immediate job): when every job is terminal, waiting
        workers get ``drain`` instead of parking forever.
        """
        with self._lock:
            self._drain_when_idle = enable

    # -- socket plumbing ---------------------------------------------------------

    def _accept(self):
        try:
            sock, addr = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        peer = _Peer(sock, addr)
        self._peers[sock] = peer
        self._selector.register(sock, selectors.EVENT_READ, peer)

    def _service_peer(self, peer):
        try:
            chunk = peer.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            chunk = b""
        if not chunk:
            self._disconnect(peer, reason="eof")
            return
        peer.last_activity = monotonic()
        # The buffer is tolerant: malformed or oversized lines come
        # back as rejects, never as an exception that could take the
        # selector loop (or this peer's later valid frames) with them.
        frames = peer.buffer.feed(chunk)
        for message in peer.buffer.take_rejects():
            LOGGER.warning("rejecting frame from %s: %s", peer.name,
                           message)
            _journal.emit("frame_rejected", peer=peer.name,
                          reason=message[:200])
        if peer.buffer.rejected > MAX_FRAME_REJECTS:
            LOGGER.warning(
                "dropping %s: %d malformed frames", peer.name,
                peer.buffer.rejected,
            )
            self._disconnect(peer, reason="protocol")
            return
        for frame in frames:
            with self._lock:
                try:
                    self._dispatch(peer, frame)
                except ProtocolError as exc:
                    LOGGER.warning(
                        "protocol error from %s: %s", peer.name, exc
                    )
                    self._send(peer, "error", token=None,
                               message=str(exc))
                except Exception:
                    # A coordinator bug must not kill the event loop
                    # serving every other worker; log it, tell the
                    # peer, carry on.
                    LOGGER.exception(
                        "internal error handling %r frame from %s",
                        frame.get("frame"), peer.name,
                    )
                    self._send(peer, "error", token=None,
                               message="internal coordinator error")

    def _send(self, peer, frame_type, **fields):
        try:
            peer.sock.sendall(encode_frame(make_frame(frame_type, **fields)))
        except OSError:
            self._disconnect(peer, reason="send-failure")

    def _disconnect(self, peer, reason=""):
        """Drop one peer.

        A worker's leases are **orphaned** rather than revoked when the
        drop looks like a network event (EOF, send failure) and a
        reconnect grace is configured: the same worker re-adopting its
        token within the grace keeps streaming as if nothing happened.
        Protocol kicks and clean goodbyes revoke immediately.
        """
        try:
            self._selector.unregister(peer.sock)
        except (KeyError, ValueError):
            pass
        try:
            peer.sock.close()
        except OSError:
            pass
        self._peers.pop(peer.sock, None)
        with self._lock:
            tokens = [
                token for token, lease in self._leases.items()
                if lease.peer is peer
            ]
            reconnectable = (
                peer.role == "worker"
                and self.reconnect_grace_s > 0
                and reason in ("eof", "send-failure")
            )
            for token in tokens:
                lease = self._leases[token]
                if reconnectable:
                    lease.peer = None
                    lease.orphaned_at = monotonic()
                    LOGGER.info(
                        "lease %s orphaned for %.1fs awaiting reconnect"
                        " of %s", token, self.reconnect_grace_s,
                        lease.worker_name,
                    )
                else:
                    self._revoke(lease, reason=f"disconnect:{reason}")
            # A clean goodbye is not a death; EOF with leases in
            # flight (or mid-protocol) is.
            if (peer.role == "worker" and peer.pid is not None
                    and (tokens or reason not in ("bye",))):
                _journal.emit(
                    "worker_died", pid=peer.pid, index=None,
                    exitcode=None, killed=None,
                )

    def _reap_idle_peers(self):
        """Close sockets that never hello'd or clients gone idle.

        Half-open connections (a SYN-scan, a crashed client, a NAT
        timeout) otherwise accumulate forever in the selector.
        Workers are exempt once hello'd — a parked lease request is
        legitimately silent for as long as the queue is empty.
        """
        now = monotonic()
        for peer in list(self._peers.values()):
            if peer.role is None:
                if now - peer.connected_at > self.hello_timeout_s:
                    LOGGER.info("reaping %s: no hello in %.0fs",
                                peer.name, self.hello_timeout_s)
                    self._disconnect(peer, reason="hello-timeout")
            elif peer.role == "client" and self.client_idle_s:
                if now - peer.last_activity > self.client_idle_s:
                    LOGGER.info("reaping idle client %s", peer.name)
                    self._disconnect(peer, reason="idle")

    def _shutdown_sockets(self):
        for peer in list(self._peers.values()):
            try:
                peer.sock.close()
            except OSError:
                pass
        self._peers.clear()
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._selector.close()

    # -- frame dispatch ----------------------------------------------------------

    def _dispatch(self, peer, frame):
        kind = frame["frame"]
        if kind == "hello":
            self._on_hello(peer, frame)
        elif peer.role is None:
            raise ProtocolError(f"{kind!r} before hello")
        elif kind == "lease_request":
            self._on_lease_request(peer)
        elif kind == "heartbeat":
            self._on_heartbeat(peer, frame)
        elif kind == "rows":
            self._on_rows(peer, frame)
        elif kind == "complete":
            self._on_complete(peer, frame)
        elif kind == "error":
            self._on_worker_error(peer, frame)
        elif kind == "submit":
            self._on_submit(peer, frame)
        elif kind == "status_request":
            self._on_status_request(peer, frame)
        elif kind == "bye":
            self._disconnect(peer, reason="bye")
        else:
            raise ProtocolError(f"unexpected frame {kind!r}")

    def _on_hello(self, peer, frame):
        role = frame.get("role")
        if role not in ("worker", "client"):
            raise ProtocolError(f"unknown role {role!r}")
        proto = frame.get("proto", PROTOCOL_VERSION)
        if proto != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: coordinator speaks "
                f"{PROTOCOL_VERSION}, peer speaks {proto}"
            )
        peer.role = role
        peer.name = frame.get("name") or peer.name
        peer.pid = frame.get("pid")
        if role == "worker":
            if peer.name in self._seen_workers:
                _journal.emit(
                    "worker_reconnected", worker=peer.name, job=None,
                    shard=None, token=None,
                )
                LOGGER.info("worker %s reconnected", peer.name)
            self._seen_workers.add(peer.name)
        self._send(peer, "welcome", proto=PROTOCOL_VERSION)
        LOGGER.info("%s %s connected", role, peer.name)

    # -- leasing -----------------------------------------------------------------

    def _next_shard(self):
        """The next (job, shard) to lease, FIFO across jobs.

        Requeued shards (a revoked lease) go first; a sampled job with
        an empty queue asks its sampler for the next chunk.  A sampled
        job whose current round is fully leased yields nothing until
        an in-order merge lets the sampler plan the next round.
        """
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            if job.state != "running":
                continue
            if job.queue:
                return job, job.shards[job.queue.popleft()]
            if job.sampler is not None:
                shard = self._next_sample_shard(job)
                if shard is not None:
                    return job, shard
        return None, None

    def _next_sample_shard(self, job):
        """Plan the next chunk shard of a sampled job, or None.

        None while the sampler is waiting on in-flight chunks (the
        round barrier) and forever once it stopped.  Chunks that need
        no simulation — every outcome replayed from the store, a
        pre-crash shard database adopted whole, or a shard past its
        lease ceiling — finish inline and the loop tries the next
        chunk, so a lease request always gets real work when any
        exists.
        """
        base, keys, netlist, config = job.plan
        while job.state == "running" and not job.sampler.finished:
            chunk = job.sampler.next_chunk()
            if chunk is None:
                break
            job.chunks[chunk.ident] = chunk
            if not chunk.pending or chunk.ident in job.failed:
                self._advance_sampled(job)
                continue
            # The shard covers the chunk's full draw (not just the
            # un-replayed subset): shard identity then survives a
            # crash between a partial merge and its ledger line, and
            # the final store's first-writer-wins insert drops any
            # re-streamed duplicates.
            shard = plan_chunk_shard(
                base, keys, chunk.ident, chunk.indices,
                netlist=netlist, config=config,
            )
            job.shards[shard.shard_id] = shard
            job.lease_counts.setdefault(shard.shard_id, 0)
            if self._adopt_sample_shard(job, shard):
                continue
            self._final_store().record_shard(
                job.campaign_id, shard.shard_id, "queued",
                n_faults=shard.size, leases=0,
            )
            return shard
        if job.sampler.stopped:
            # Stops decided at plan time (population exhausted before
            # any chunk could be drawn) never pass through a
            # finish_chunk, so close out the job here.
            self._stop_sampling(job)
            self._maybe_finish(job)
        return None

    def _adopt_sample_shard(self, job, shard):
        """Merge a chunk shard whose database already holds every row.

        The crash-recovery path: a worker completed the shard but the
        coordinator died before merging it.  Returns True when the
        shard was adopted (no lease needed).
        """
        if not os.path.exists(self._sharded.shard_path(shard.shard_id)):
            return False
        have = {
            int(row["idx"])
            for row in self._sharded.shard_run_rows(shard)
        }
        if not set(shard.indices) <= have:
            return False
        job.ready[shard.shard_id] = ("resume", None)
        self._advance_sampled(job)
        return True

    def _advance_sampled(self, job):
        """Merge ready chunks strictly in chunk order and evaluate.

        The sampler's convergence decision after chunk ``k`` depends
        on every outcome of chunks ``<= k``, so out-of-order
        completions buffer in ``job.ready`` until their turn — that
        discipline is what makes the merged store row-identical to a
        single-host sampled run.  Called whenever a chunk may have
        become finishable: a completion arrived, a chunk was fully
        replayed, a shard failed its lease ceiling.
        """
        sampler = job.sampler
        while job.state == "running" and not sampler.stopped:
            chunk = job.chunks.get(job.merge_cursor)
            if chunk is None:
                return
            shard_id = chunk.ident
            if chunk.pending:
                if shard_id in job.failed:
                    # Past the lease ceiling: these faults can never
                    # be simulated.  Record them as failed runs
                    # (excluded from trials) so the pipeline is not
                    # deadlocked behind a chunk that will never
                    # arrive.
                    for index in chunk.pending:
                        sampler.record(index, None)
                elif shard_id in job.ready:
                    worker, frame = job.ready.pop(shard_id)
                    if not self._merge_sample_shard(
                        job, shard_id, worker, frame
                    ):
                        return  # job aborted on golden divergence
                else:
                    return  # next chunk in order still in flight
            stopped = sampler.finish_chunk(chunk)
            del job.chunks[job.merge_cursor]
            job.merge_cursor += 1
            if stopped:
                self._stop_sampling(job)
                self._maybe_finish(job)
                return

    def _merge_sample_shard(self, job, shard_id, worker, frame):
        """Golden-check and merge one chunk shard; feed the sampler.

        Returns False when the job aborted (golden divergence).
        """
        store = self._final_store()
        shard = job.shards[shard_id]
        golden = (frame or {}).get("golden")
        if golden:
            if not self._check_shard_golden(job, shard_id, golden,
                                            worker):
                return False
            store.record_golden_digests(job.campaign_id, golden)
        merged = self._sharded.merge_into(
            store, job.campaign_id, shard, worker=worker,
            leases=job.lease_counts.get(shard_id) or None,
        )
        job.merged.add(shard_id)
        if worker != "resume":
            job.workers.add(worker)
        for row in self._sharded.shard_run_rows(shard):
            job.sampler.record(int(row["idx"]), row_outcome(row))
            job.seen_rows.add(int(row["idx"]))
        # Recorded *after* the merge commit, exactly as for static
        # shards: a crash in between re-merges idempotently.
        self._ledger.record(
            "shard_merged", job=job.job_id, shard=shard_id, rows=merged,
        )
        if frame and frame.get("execution"):
            job.executions.append(frame["execution"])
        _journal.emit(
            "shard_completed", job=job.job_id, shard=shard_id,
            worker=worker, rows=len(shard.indices), merged=merged,
        )
        LOGGER.info(
            "chunk %d of job %d merged from %s (%d rows)",
            shard_id, job.job_id, worker, merged,
        )
        return True

    def _check_shard_golden(self, job, shard_id, golden, worker_name):
        """Per-shard golden digest comparison; aborts on divergence.

        Digests are compared per shard only — an adaptive analog
        solver's step sequence legitimately depends on where the
        runner pauses for the shard's own fault times, so traces are
        not comparable across shards.  Returns False after aborting.
        """
        seen = job.shard_goldens.get(shard_id)
        if seen is not None and seen != golden:
            changed = sorted(
                name for name in set(seen) | set(golden)
                if seen.get(name) != golden.get(name)
            )
            self._abort_job(
                job,
                f"golden divergence on worker {worker_name}: shard "
                f"{shard_id} re-ran with different golden "
                f"traces ({', '.join(changed)}); the design or "
                "its parameters changed — refusing to mix results",
            )
            return False
        job.shard_goldens[shard_id] = golden
        return True

    def _stop_sampling(self, job):
        """Early-stop bookkeeping once the sampler's interval closed.

        Outstanding leases are revoked and their chunks abandoned —
        rows already streamed stay in the shard databases but are
        never merged, so the final store is row-identical to a
        single-host run that stopped at the same chunk.  The faults
        sampling saved get their ``skipped`` rows in one transaction.
        """
        if job.stop_recorded:
            return
        job.stop_recorded = True
        sampler = job.sampler
        store = self._final_store()
        abandoned = set()
        for shard_id, lease in list(job.active.items()):
            self._leases.pop(lease.token, None)
            del job.active[shard_id]
            abandoned.add(shard_id)
            self._ledger.record(
                "lease_revoked", job=job.job_id, shard=shard_id,
                reason="sampling-converged",
            )
        abandoned.update(job.queue)
        job.queue.clear()
        abandoned.update(job.ready)
        job.ready.clear()
        job.chunks.clear()
        for shard_id in sorted(abandoned):
            job.abandoned.add(shard_id)
            store.record_shard(
                job.campaign_id, shard_id, "abandoned",
            )
        self._ledger.record(
            "stop_sampling", job=job.job_id, reason=sampler.reason,
            revoked=sorted(abandoned),
        )
        estimate, (low, high) = sampler.pooled()
        _journal.emit(
            "stop_sampling", job=job.job_id, reason=sampler.reason,
            revoked=len(abandoned),
        )
        _journal.emit(
            "sampling_stopped", reason=sampler.reason,
            trials=sampler.trials, estimate=estimate,
            half_width=(high - low) / 2.0,
            skipped=sampler.population - sampler.simulated,
        )
        store.record_skipped(
            job.campaign_id,
            [
                (index, sampler.stratum_of(index))
                for index in sampler.skipped_indices()
            ],
        )
        LOGGER.info(
            "job %d sampling stopped (%s): %d trials, estimate "
            "%.4f ± %.4f, %d leases/chunks abandoned",
            job.job_id, sampler.reason, sampler.trials, estimate,
            (high - low) / 2.0, len(abandoned),
        )

    def _on_lease_request(self, peer):
        if peer.role != "worker":
            raise ProtocolError("only workers request leases")
        job, shard = self._next_shard()
        if shard is None:
            if self._drain_when_idle and self._all_terminal():
                self._send(peer, "drain")
            else:
                peer.waiting = True
            return
        self._grant(job, shard, peer)

    def _grant(self, job, shard, peer):
        job.lease_counts[shard.shard_id] += 1
        count = job.lease_counts[shard.shard_id]
        token = f"{job.job_id}:{shard.shard_id}:{count}"
        lease = _Lease(job, shard, token, peer)
        job.active[shard.shard_id] = lease
        self._leases[token] = lease
        peer.waiting = False
        self._ledger.record(
            "lease_granted", job=job.job_id, shard=shard.shard_id,
            worker=peer.name, token=token, count=count,
        )
        self._final_store().record_shard(
            job.campaign_id, shard.shard_id, "leased", worker=peer.name,
            leases=count,
        )
        _journal.emit(
            "shard_leased", job=job.job_id, shard=shard.shard_id,
            worker=peer.name, size=shard.size, lease=count,
        )
        self._send(peer, "lease", shard=shard.to_dict(), token=token,
                   lease_timeout_s=self.lease_timeout_s)
        LOGGER.info(
            "shard %d of job %d leased to %s (attempt %d)",
            shard.shard_id, job.job_id, peer.name, count,
        )

    def _feed_waiting_workers(self):
        """Grant parked lease requests after new work arrives."""
        for peer in list(self._peers.values()):
            if not peer.waiting:
                continue
            job, shard = self._next_shard()
            if shard is None:
                return
            self._grant(job, shard, peer)

    def _lease_for(self, frame, expect_peer=None):
        """The live lease a frame's token names, or None (stale).

        An orphaned lease (its holder's socket dropped within the
        reconnect grace) is **re-adopted** when the same worker — by
        name — presents its token again: buffered rows it could not
        send during the outage drain into the same lease as if the
        connection never blinked.
        """
        lease = self._leases.get(frame.get("token"))
        if lease is None:
            LOGGER.info(
                "dropping %s frame with stale token %r",
                frame["frame"], frame.get("token"),
            )
            return None
        if expect_peer is not None and lease.peer is not expect_peer:
            if (expect_peer.role == "worker"
                    and expect_peer.name == lease.worker_name):
                # Either the lease is orphaned, or the worker redialed
                # before we noticed its old socket die (the common
                # race: its FIN is still in flight while the fresh
                # connection already carries frames).  Same worker by
                # name, same token: the newest connection wins.
                lease.peer = expect_peer
                lease.orphaned_at = None
                lease.last_heartbeat = monotonic()
                _journal.emit(
                    "worker_reconnected", worker=expect_peer.name,
                    job=lease.job.job_id, shard=lease.shard.shard_id,
                    token=lease.token,
                )
                LOGGER.info(
                    "worker %s re-adopted lease %s on shard %d",
                    expect_peer.name, lease.token, lease.shard.shard_id,
                )
                return lease
            holder = ("<orphaned>" if lease.peer is None
                      else lease.peer.name)
            LOGGER.warning(
                "token %r used by %s but leased to %s; dropping",
                frame.get("token"), expect_peer.name, holder,
            )
            return None
        return lease

    def _revoke(self, lease, reason):
        """Requeue (or fail) one lease's shard after its holder died."""
        job, shard = lease.job, lease.shard
        self._leases.pop(lease.token, None)
        if job.active.get(shard.shard_id) is lease:
            del job.active[shard.shard_id]
        if shard.shard_id in job.merged:
            return  # completed before the revocation landed
        self._ledger.record(
            "lease_revoked", job=job.job_id, shard=shard.shard_id,
            reason=reason,
        )
        if job.lease_counts[shard.shard_id] >= self.max_leases:
            job.failed.add(shard.shard_id)
            self._ledger.record(
                "shard_failed", job=job.job_id, shard=shard.shard_id,
            )
            self._final_store().record_shard(
                job.campaign_id, shard.shard_id, "failed",
                worker=lease.worker_name,
                leases=job.lease_counts[shard.shard_id],
            )
            LOGGER.error(
                "shard %d of job %d failed %d leases; giving up",
                shard.shard_id, job.job_id, self.max_leases,
            )
            if job.sampler is not None:
                # The failed chunk's faults count as failed runs so
                # later chunks are not deadlocked behind it.
                self._advance_sampled(job)
            self._maybe_finish(job)
        else:
            job.queue.append(shard.shard_id)
            self._final_store().record_shard(
                job.campaign_id, shard.shard_id, "queued",
            )
        _journal.emit(
            "shard_reassigned", job=job.job_id, shard=shard.shard_id,
            worker=lease.worker_name, reason=reason,
        )
        LOGGER.warning(
            "lease on shard %d of job %d revoked (%s)",
            shard.shard_id, job.job_id, reason,
        )
        self._feed_waiting_workers()

    def _expire_leases(self):
        """Revoke leases that outlived their liveness evidence.

        Three independent clocks:

        * **reconnect grace** — an orphaned lease whose worker never
          came back;
        * **heartbeat silence** — a connected worker that stopped
          reporting (wedged, not dead: the socket is still open);
        * **wall deadline** — optional absolute ceiling per lease,
          catching workers that heartbeat forever without finishing.
        """
        now = monotonic()
        for token in list(self._leases):
            lease = self._leases.get(token)
            if lease is None:
                continue
            reason = None
            if lease.peer is None:
                if now - lease.orphaned_at > self.reconnect_grace_s:
                    reason = "reconnect-grace"
            elif now - lease.last_heartbeat > self.lease_timeout_s:
                reason = "heartbeat-silence"
            if (reason is None and self.lease_wall_s is not None
                    and now - lease.granted_at > self.lease_wall_s):
                reason = "wall-deadline"
            if reason is None:
                continue
            _journal.emit(
                "lease_expired", job=lease.job.job_id,
                shard=lease.shard.shard_id, worker=lease.worker_name,
                reason=reason,
            )
            if (reason == "heartbeat-silence" and lease.peer is not None
                    and lease.peer.pid is not None):
                _journal.emit(
                    "worker_died", pid=lease.peer.pid, index=None,
                    exitcode=None, killed=None,
                )
            self._revoke(lease, reason=reason)

    # -- ingest ------------------------------------------------------------------

    def _on_heartbeat(self, peer, frame):
        lease = self._lease_for(frame, expect_peer=peer)
        if lease is None:
            return
        lease.last_heartbeat = monotonic()
        _journal.emit(
            "worker_heartbeat", pid=frame.get("pid"),
            index=frame.get("done"), phase=frame.get("phase"),
        )

    def _on_rows(self, peer, frame):
        lease = self._lease_for(frame, expect_peer=peer)
        if lease is None:
            return
        lease.last_heartbeat = monotonic()
        job, shard = lease.job, lease.shard
        for row in frame["rows"]:
            if job.sampler is not None:
                # Workers run plain exhaustive shards and know nothing
                # of strata; the coordinator owns the stratification
                # and stamps each row at ingest.
                row = dict(row)
                row["stratum"] = job.sampler.stratum_of(int(row["idx"]))
            try:
                self._sharded.ingest_row(shard, row)
            except StoreError as exc:
                raise ProtocolError(str(exc)) from exc
            index = int(row["idx"])
            if index not in job.seen_rows:
                job.seen_rows.add(index)
                _journal.emit(
                    "run_finished", index=index, status=row.get("status"),
                    label=row.get("label"), wall_s=row.get("wall_s"),
                    attempts=row.get("attempts", 1),
                )

    def _on_complete(self, peer, frame):
        lease = self._lease_for(frame, expect_peer=peer)
        if lease is None:
            return
        job, shard = lease.job, lease.shard
        if shard.shard_id not in job.merged:
            # A completion claim is merged on evidence, not trust: the
            # shard database must hold every row.  Rows can be lost in
            # flight — sendall() into a connection a fault (or a chaos
            # proxy) already cut succeeds locally, so the worker has
            # nothing left to re-send — and a complete that outlives
            # its rows must requeue the shard, not merge a hole.
            have = {
                int(row["idx"])
                for row in self._sharded.shard_run_rows(shard)
            }
            missing = sorted(set(shard.indices) - have)
            if missing:
                LOGGER.warning(
                    "shard %d of job %d completed by %s but rows %s "
                    "never arrived; requeueing",
                    shard.shard_id, job.job_id, peer.name, missing,
                )
                self._revoke(lease, reason=f"rows-missing: {missing}")
                return
        self._leases.pop(lease.token, None)
        if job.active.get(shard.shard_id) is lease:
            del job.active[shard.shard_id]
        if shard.shard_id in job.merged:
            return  # the other holder of a reassigned shard got here first
        if job.sampler is not None:
            if shard.shard_id in job.abandoned:
                return  # completed after the early stop; never merged
            # Chunk shards merge strictly in chunk order — buffer
            # out-of-order completions until their turn, then let the
            # sampler evaluate and possibly plan the next round.
            job.ready[shard.shard_id] = (peer.name, frame)
            self._advance_sampled(job)
            self._feed_waiting_workers()
            self._maybe_finish(job)
            return
        store = self._final_store()
        golden = frame.get("golden")
        if golden:
            # Golden digests are compared **per shard**: the mixing
            # boundary is the shard database (rows from different
            # lease attempts of the same shard dedup into one row
            # set), so every attempt at one shard must have executed
            # the same golden.
            if not self._check_shard_golden(
                job, shard.shard_id, golden, peer.name
            ):
                return
            store.record_golden_digests(job.campaign_id, golden)
        merged = self._sharded.merge_into(
            store, job.campaign_id, shard, worker=peer.name,
            leases=job.lease_counts[shard.shard_id],
        )
        job.merged.add(shard.shard_id)
        job.workers.add(peer.name)
        # Recorded *after* the merge commit: a crash in between leaves
        # the ledger unaware, and the resume re-merges the shard's
        # database idempotently instead of re-running it.
        self._ledger.record(
            "shard_merged", job=job.job_id, shard=shard.shard_id,
            rows=merged,
        )
        if frame.get("execution"):
            job.executions.append(frame["execution"])
        _journal.emit(
            "shard_completed", job=job.job_id, shard=shard.shard_id,
            worker=peer.name, rows=frame.get("rows"), merged=merged,
        )
        LOGGER.info(
            "shard %d of job %d complete on %s (%d rows merged)",
            shard.shard_id, job.job_id, peer.name, merged,
        )
        self._maybe_finish(job)

    def _on_worker_error(self, peer, frame):
        lease = self._lease_for(frame, expect_peer=peer)
        if lease is None:
            return
        LOGGER.error(
            "worker %s failed shard %d of job %d: %s",
            peer.name, lease.shard.shard_id, lease.job.job_id,
            frame.get("message"),
        )
        self._revoke(lease, reason=f"worker-error: {frame.get('message')}")

    # -- job completion ----------------------------------------------------------

    def _maybe_finish(self, job):
        if job.state != "running":
            return
        if job.sampler is not None:
            # A sampled job is done when its sampler stopped and no
            # chunk is still leased or buffered awaiting merge.
            if not (job.sampler.stopped and not job.active
                    and not job.queue and not job.ready):
                return
        else:
            terminal = len(job.merged) + len(job.failed)
            if terminal < len(job.shards):
                return
        store = self._final_store()
        execution = self._combined_execution(job)
        status = "complete" if not job.failed else "errors"
        store.record_execution(job.campaign_id, execution, status=status)
        job.state = "complete" if not job.failed else "errors"
        self._ledger.record("job_finished", job=job.job_id,
                            state=job.state)
        _journal.emit(
            "campaign_finished", name=job.name, execution=execution,
        )
        job.done.set()
        LOGGER.info(
            "job %d (%s) finished: %d/%d shards merged, state %s",
            job.job_id, job.name, len(job.merged), len(job.shards),
            job.state,
        )
        self._maybe_drain()

    def _combined_execution(self, job):
        """Aggregate the workers' per-shard execution stats."""
        execution = {
            "mode": "distributed",
            "workers": len(job.workers),
            "shards": len(job.shards),
            "shards_merged": len(job.merged),
            "shards_failed": len(job.failed),
            "completed": len(job.seen_rows),
            "wall_s": round(monotonic() - job.wall_start, 6),
        }
        for key in ("golden_events", "fault_events", "kernel_events",
                    "errors", "retries", "timeouts", "diverged",
                    "crashed", "quarantined", "checkpoints"):
            execution[key] = sum(
                int(exe.get(key) or 0) for exe in job.executions
            )
        if job.sampler is not None:
            execution["mode"] = "sampled-distributed"
            execution["completed"] = job.sampler.simulated
            execution["sampling"] = job.sampler.summary()
        return execution

    def _abort_job(self, job, message):
        job.state = "aborted"
        self._ledger.record("job_finished", job=job.job_id,
                            state="aborted")
        self._final_store().record_execution(
            job.campaign_id,
            {"mode": "distributed", "error": message},
            status="errors",
        )
        LOGGER.error("job %d aborted: %s", job.job_id, message)
        job.done.set()
        self._maybe_drain()

    def _all_terminal(self):
        return all(
            job.state != "running" for job in self._jobs.values()
        )

    def _maybe_drain(self):
        if not self._drain_when_idle or not self._all_terminal():
            return
        for peer in list(self._peers.values()):
            if peer.role == "worker" and peer.waiting:
                self._send(peer, "drain")
                peer.waiting = False

    # -- client API --------------------------------------------------------------

    def _on_submit(self, peer, frame):
        if peer.role != "client":
            raise ProtocolError("only clients submit jobs")
        job_id = self.submit_dict(
            frame["spec"], netlist=frame.get("netlist"),
            config=frame.get("config"),
            sampling=frame.get("sampling"),
        )
        job = self._jobs[job_id]
        self._send(
            peer, "job", job=job_id, name=job.name,
            shards=len(job.shards), total=job.total,
        )

    def _on_status_request(self, peer, frame):
        status = self.job_status(int(frame["job"]))
        self._send(peer, "job_status", **status)
