"""JSON serialization of campaign specs, faults and classifications.

The persistent campaign store (and the CLI fault-file format) need a
stable, human-readable descriptor for every fault model.  This module
owns the bidirectional mapping:

* :func:`fault_to_dict` / :func:`fault_from_dict` — fault instance
  <-> JSON descriptor (the same schema the CLI fault files use);
* :func:`spec_to_dict` / :func:`spec_from_dict` — a complete
  :class:`~repro.campaign.spec.CampaignSpec` <-> JSON;
* :func:`fault_key` / :func:`faults_digest` — content digests used by
  campaign resume to verify that a stored fault list matches the one
  being rerun;
* :func:`trace_digest` — a digest of one golden trace, stored so a
  resumed campaign can prove the regenerated golden run is identical
  to the one the stored classifications were computed against.

Times are stored as raw float seconds: JSON round-trips Python floats
exactly, so a descriptor written by one session re-creates a fault
whose ``describe()`` line is byte-identical in the next.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from ..core.errors import ReproError
from ..faults import (
    BitFlip,
    DoubleExponentialPulse,
    MultipleBitUpset,
    ParametricFault,
    SETPulse,
    StuckAt,
    TrapezoidPulse,
)
from ..injection import CurrentInjection


class SerializationError(ReproError):
    """Raised for descriptors or faults that cannot be (de)serialized."""


def _logic_char(value):
    """Render a logic value as its character (None passes through)."""
    if value is None:
        return None
    return getattr(value, "char", str(value))


def fault_to_dict(fault):
    """The JSON descriptor of one fault-model instance.

    Inverse of :func:`fault_from_dict`; the schema matches the CLI
    fault-file format documented in :mod:`repro.cli`.

    :raises SerializationError: for unsupported fault types.
    """
    if isinstance(fault, BitFlip):
        return {"kind": "bitflip", "target": fault.target, "time": fault.time}
    if isinstance(fault, MultipleBitUpset):
        return {
            "kind": "mbu",
            "targets": list(fault.targets()),
            "time": fault.time,
        }
    if isinstance(fault, SETPulse):
        return {
            "kind": "set",
            "target": fault.target,
            "time": fault.time,
            "width": fault.width,
            "value": _logic_char(fault.value),
        }
    if isinstance(fault, StuckAt):
        return {
            "kind": "stuck",
            "target": fault.target,
            "value": fault.value.char,
            "t_start": fault.t_start,
            "t_end": fault.t_end,
        }
    if isinstance(fault, CurrentInjection):
        transient = fault.transient
        if isinstance(transient, TrapezoidPulse):
            pulse = {
                "pa": transient.pa,
                "rt": transient.rt,
                "ft": transient.ft,
                "pw": transient.pw,
            }
        elif isinstance(transient, DoubleExponentialPulse):
            pulse = {
                "i0": transient.i0,
                "tau_r": transient.tau_r,
                "tau_f": transient.tau_f,
            }
        else:
            raise SerializationError(
                f"cannot serialize analog transient {transient!r}"
            )
        return {
            "kind": "current",
            "node": fault.node,
            "time": fault.time,
            "pulse": pulse,
        }
    if isinstance(fault, ParametricFault):
        return {
            "kind": "parametric",
            "component": fault.component,
            "attribute": fault.attribute,
            "factor": fault.factor,
            "delta": fault.delta,
            "t_start": fault.t_start,
            "t_end": fault.t_end,
        }
    raise SerializationError(f"cannot serialize fault {fault!r}")


def fault_from_dict(data):
    """Build a fault-model instance from a JSON descriptor.

    Inverse of :func:`fault_to_dict`; also the parser behind CLI fault
    files, so descriptors accept ``"35ns"``-style quantity strings as
    well as raw float seconds.

    :raises SerializationError: for unknown kinds or malformed
        descriptors.
    """
    kind = data.get("kind")
    try:
        if kind == "bitflip":
            return BitFlip(data["target"], data["time"])
        if kind == "mbu":
            return MultipleBitUpset(data["targets"], data["time"])
        if kind == "set":
            return SETPulse(data["target"], data["time"], data["width"],
                            value=data.get("value"))
        if kind == "stuck":
            return StuckAt(data["target"], data["value"],
                           t_start=data.get("t_start") or 0.0,
                           t_end=data.get("t_end"))
        if kind == "current":
            pulse = data["pulse"]
            if "tau_r" in pulse:
                transient = DoubleExponentialPulse(
                    pulse["i0"], pulse["tau_r"], pulse["tau_f"]
                )
            else:
                transient = TrapezoidPulse(
                    pulse["pa"], pulse["rt"], pulse["ft"], pulse["pw"]
                )
            return CurrentInjection(transient, data["node"], data["time"])
        if kind == "parametric":
            return ParametricFault(
                data["component"], data["attribute"],
                factor=data.get("factor"), delta=data.get("delta"),
                t_start=data.get("t_start") or 0.0, t_end=data.get("t_end"),
            )
    except KeyError as exc:
        raise SerializationError(
            f"fault descriptor {data!r} is missing key {exc}"
        ) from exc
    raise SerializationError(f"unknown fault kind {kind!r}")


def fault_key(fault):
    """A stable content digest of one fault (resume identity)."""
    descriptor = fault_to_dict(fault)
    canonical = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode()).hexdigest()


def faults_digest(faults):
    """One digest over a whole fault list, order-sensitive."""
    digest = hashlib.sha1()
    for fault in faults:
        digest.update(fault_key(fault).encode())
    return digest.hexdigest()


def spec_to_dict(spec):
    """JSON-ready rendering of a :class:`CampaignSpec`."""
    return {
        "name": spec.name,
        "faults": [fault_to_dict(fault) for fault in spec.faults],
        "t_end": spec.t_end,
        "outputs": list(spec.outputs),
        "tolerances": dict(spec.tolerances),
        "time_tolerances": dict(spec.time_tolerances),
        "analog_tolerance": spec.analog_tolerance,
        "compare_from": spec.compare_from,
        "metadata": dict(spec.metadata),
    }


def spec_from_dict(data):
    """Rebuild a :class:`CampaignSpec` from :func:`spec_to_dict` output."""
    from ..campaign.spec import CampaignSpec

    return CampaignSpec(
        name=data["name"],
        faults=[fault_from_dict(entry) for entry in data["faults"]],
        t_end=data["t_end"],
        outputs=data["outputs"],
        tolerances=data.get("tolerances") or {},
        time_tolerances=data.get("time_tolerances") or {},
        analog_tolerance=data.get("analog_tolerance", 0.01),
        compare_from=data.get("compare_from"),
        metadata=data.get("metadata") or {},
    )


def classification_to_dict(classification):
    """JSON-ready rendering of a run :class:`Classification`."""
    return {
        "label": classification.label,
        "first_output_divergence": classification.first_output_divergence,
        "output_mismatch_time": classification.output_mismatch_time,
        "diverged_outputs": list(classification.diverged_outputs),
        "diverged_internal": list(classification.diverged_internal),
        "latent_traces": list(classification.latent_traces),
    }


def comparisons_to_dict(comparisons):
    """JSON-ready rendering of a per-trace comparison map.

    Analog comparisons carry numpy scalars (np.bool_/np.float64);
    coerce to plain Python so json.dumps never chokes on them.
    """
    def _opt_float(value):
        return None if value is None else float(value)

    return {
        name: {
            "match": bool(cmp_result.match),
            "first_divergence": _opt_float(cmp_result.first_divergence),
            "last_divergence": _opt_float(cmp_result.last_divergence),
            "mismatch_time": _opt_float(cmp_result.mismatch_time),
            "max_deviation": _opt_float(cmp_result.max_deviation),
            "final_match": bool(cmp_result.final_match),
        }
        for name, cmp_result in comparisons.items()
    }


#: The canonical per-run **row** schema shared by the campaign store,
#: the per-shard databases and the distributed wire protocol: one
#: JSON-ready dict per terminal run outcome.  ``idx`` is always the
#: *global* fault index and ``key`` the fault's content digest
#: (:func:`fault_key`), which is what shard-reassignment deduplication
#: keys on.
ROW_FIELDS = (
    "idx", "key", "status", "label", "classification", "comparisons",
    "metrics", "error", "wall_s", "kernel_events", "attempts",
    "quarantined", "postmortem", "stratum",
)


def result_to_row(index, key, fault_result, wall_s=None,
                  kernel_events=None, attempts=1, stratum=None):
    """Render one successful :class:`FaultResult` as a run-row dict."""
    return {
        "idx": int(index),
        "key": key,
        "status": "ok",
        "label": fault_result.label,
        "classification": classification_to_dict(
            fault_result.classification
        ),
        "comparisons": comparisons_to_dict(fault_result.comparisons),
        "metrics": dict(fault_result.metrics),
        "error": None,
        "wall_s": wall_s,
        "kernel_events": kernel_events,
        "attempts": attempts,
        "quarantined": 0,
        "postmortem": None,
        "stratum": stratum,
    }


def error_to_row(index, key, message, status="error", wall_s=None,
                 attempts=1, quarantined=False, postmortem=None,
                 stratum=None):
    """Render one failed run as a run-row dict."""
    return {
        "idx": int(index),
        "key": key,
        "status": status,
        "label": None,
        "classification": None,
        "comparisons": None,
        "metrics": None,
        "error": message,
        "wall_s": wall_s,
        "kernel_events": None,
        "attempts": attempts,
        "quarantined": 1 if quarantined else 0,
        "postmortem": None if postmortem is None else str(postmortem),
        "stratum": stratum,
    }


def skipped_to_row(index, key, stratum=None):
    """Render a fault skipped by sampling early stop as a run-row dict.

    Carries no classification or error: the fault was never simulated
    because the campaign's estimate converged first.
    """
    return {
        "idx": int(index),
        "key": key,
        "status": "skipped",
        "label": None,
        "classification": None,
        "comparisons": None,
        "metrics": None,
        "error": None,
        "wall_s": None,
        "kernel_events": None,
        "attempts": 0,
        "quarantined": 0,
        "postmortem": None,
        "stratum": stratum,
    }


def trace_digest(trace):
    """A content digest of one trace's samples.

    Digital traces store logic objects; those hash through their
    string rendering, analog traces through their raw float bytes —
    both deterministic across processes.
    """
    digest = hashlib.sha1()
    digest.update(np.asarray(trace._times, dtype=float).tobytes())
    try:
        digest.update(np.asarray(trace._values, dtype=float).tobytes())
    except (TypeError, ValueError):
        digest.update("\x00".join(str(v) for v in trace._values).encode())
    return digest.hexdigest()


def probes_digest(probes):
    """Mapping probe name -> :func:`trace_digest` for a probe set."""
    return {name: trace_digest(trace) for name, trace in sorted(probes.items())}
