"""Persistent campaign results: the fault-injection database.

``repro.store`` turns a campaign from an in-memory artifact into a
durable one: a :class:`CampaignStore` (one SQLite file) records the
spec, the fault list and one row per completed run as the campaign
executes, making campaigns **resumable** (interrupt at any point,
re-run with ``resume=True`` and only the remaining faults execute)
and **queryable** (reports and fault dictionaries regenerate from the
database without re-simulating)::

    from repro.store import CampaignStore

    with CampaignStore("campaign.db") as store:
        run_campaign(factory, spec, store=store)          # records as it goes
    with CampaignStore("campaign.db") as store:
        result = store.load_result()                       # no simulation
        print(full_report(result))

See ``docs/observability.md`` for the schema and resume semantics.
"""

from .backend import StoreBackend
from .serialize import (
    ROW_FIELDS,
    SerializationError,
    classification_to_dict,
    comparisons_to_dict,
    error_to_row,
    fault_from_dict,
    fault_key,
    fault_to_dict,
    faults_digest,
    probes_digest,
    result_to_row,
    spec_from_dict,
    spec_to_dict,
    trace_digest,
)
from .sharded import ShardedCampaignStore
from .store import SCHEMA_VERSION, CampaignStore, StoreError

__all__ = [
    "CampaignStore",
    "ROW_FIELDS",
    "SCHEMA_VERSION",
    "SerializationError",
    "ShardedCampaignStore",
    "StoreBackend",
    "StoreError",
    "classification_to_dict",
    "comparisons_to_dict",
    "error_to_row",
    "fault_from_dict",
    "fault_key",
    "fault_to_dict",
    "faults_digest",
    "probes_digest",
    "result_to_row",
    "spec_from_dict",
    "spec_to_dict",
    "trace_digest",
]
