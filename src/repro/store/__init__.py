"""Persistent campaign results: the fault-injection database.

``repro.store`` turns a campaign from an in-memory artifact into a
durable one: a :class:`CampaignStore` (one SQLite file) records the
spec, the fault list and one row per completed run as the campaign
executes, making campaigns **resumable** (interrupt at any point,
re-run with ``resume=True`` and only the remaining faults execute)
and **queryable** (reports and fault dictionaries regenerate from the
database without re-simulating)::

    from repro.store import CampaignStore

    with CampaignStore("campaign.db") as store:
        run_campaign(factory, spec, store=store)          # records as it goes
    with CampaignStore("campaign.db") as store:
        result = store.load_result()                       # no simulation
        print(full_report(result))

See ``docs/observability.md`` for the schema and resume semantics.
"""

from .serialize import (
    SerializationError,
    fault_from_dict,
    fault_key,
    fault_to_dict,
    faults_digest,
    probes_digest,
    spec_from_dict,
    spec_to_dict,
    trace_digest,
)
from .store import SCHEMA_VERSION, CampaignStore, StoreError

__all__ = [
    "CampaignStore",
    "SCHEMA_VERSION",
    "SerializationError",
    "StoreError",
    "fault_from_dict",
    "fault_key",
    "fault_to_dict",
    "faults_digest",
    "probes_digest",
    "spec_from_dict",
    "spec_to_dict",
    "trace_digest",
]
