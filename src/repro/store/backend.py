"""The campaign-store backend interface.

The campaign runner was written against one concrete store — a single
SQLite file — but a distributed campaign needs *several* kinds of
sink behind the same method surface: per-shard databases merged at
shard completion (so N writers never contend on one file), and a
socket-streaming sink that ships rows to a remote coordinator instead
of touching disk at all.  :class:`StoreBackend` names that surface:
exactly the methods :meth:`~repro.campaign.runner.CampaignRunner.run`
calls on its ``store`` argument.

:class:`~repro.store.store.CampaignStore` (SQLite) is the reference
implementation; :class:`~repro.store.sharded.ShardedCampaignStore`
(one database per shard plus a deterministic merge) and
:class:`~repro.dist.worker.RowStreamStore` (wire-protocol streaming)
are the others.  The telemetry hooks (:meth:`record_journal`,
:meth:`record_worker`) default to no-ops so lightweight backends only
implement what they persist.
"""

from __future__ import annotations

import abc


class StoreBackend(abc.ABC):
    """Abstract campaign results sink.

    The contract mirrors the runner's store interactions one-to-one:
    registration (:meth:`open_campaign`, :meth:`check_golden`), resume
    queries (:meth:`pending_indices`, :meth:`load_runs`,
    :meth:`load_errors`), per-run recording (:meth:`record_run`,
    :meth:`record_runs`, :meth:`record_error`), the final execution
    record (:meth:`record_execution`) and the optional telemetry hooks.
    All backends are context managers with an idempotent
    :meth:`close`.
    """

    # -- lifecycle ---------------------------------------------------------

    @abc.abstractmethod
    def close(self):
        """Release any underlying resources (idempotent)."""

    def __enter__(self):
        """Context-manager entry: returns the backend itself."""
        return self

    def __exit__(self, *_exc):
        """Context-manager exit: closes the backend."""
        self.close()
        return False

    # -- campaign registration ---------------------------------------------

    @abc.abstractmethod
    def open_campaign(self, spec, resume=False):
        """Register ``spec`` (or re-attach to it); returns a campaign id."""

    @abc.abstractmethod
    def check_golden(self, campaign_id, probes):
        """Record or verify the golden-run trace digests."""

    # -- resume queries ------------------------------------------------------

    @abc.abstractmethod
    def pending_indices(self, campaign_id, total, include_quarantined=False):
        """Fault indices still to run, in campaign order."""

    def load_runs(self, campaign_id, faults):
        """Previously completed runs as ``{index: FaultResult}``.

        Only resume-capable backends hold history; the default is
        empty (nothing to merge).
        """
        return {}

    def load_errors(self, campaign_id, faults):
        """Previously failed runs as ``[CampaignRunError]`` (default [])."""
        return []

    # -- run recording --------------------------------------------------------

    @abc.abstractmethod
    def record_run(self, campaign_id, index, fault_result,
                   wall_s=None, kernel_events=None, attempts=1,
                   stratum=None):
        """Persist one completed faulty run.

        ``stratum`` is the sampling stratum label for adaptively
        sampled campaigns (None otherwise); backends that do not
        persist strata may ignore it.
        """

    def record_runs(self, campaign_id, rows):
        """Persist many completed runs (one batch).

        Backends with cheaper bulk writes override this; the default
        just loops :meth:`record_run`.

        :param rows: iterable of ``(index, fault_result, wall_s,
            kernel_events, attempts)`` tuples, optionally extended
            with a sixth ``stratum`` element.
        """
        for row in rows:
            index, fault_result, wall_s, kernel_events, attempts = row[:5]
            stratum = row[5] if len(row) > 5 else None
            self.record_run(campaign_id, index, fault_result,
                            wall_s=wall_s, kernel_events=kernel_events,
                            attempts=attempts, stratum=stratum)

    @abc.abstractmethod
    def record_error(self, campaign_id, index, message, wall_s=None,
                     status="error", attempts=1, quarantined=False,
                     postmortem=None, stratum=None):
        """Persist one failed faulty run."""

    @abc.abstractmethod
    def record_execution(self, campaign_id, execution, status="complete"):
        """Store the final execution-stats dict and campaign status."""

    # -- telemetry hooks (optional) -------------------------------------------

    def record_journal(self, campaign_id, path, offset=0):
        """Record where the campaign's journal stream lives (no-op)."""

    def record_worker(self, campaign_id, pid, state, fault_idx=None,
                      phase=None, exitcode=None):
        """Upsert one supervised worker's liveness row (no-op)."""
