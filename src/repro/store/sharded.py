"""Per-shard campaign databases and their deterministic merge.

A single SQLite file has a single writer; a distributed campaign has
N of them.  Instead of funnelling every remote row through one
connection, the coordinator gives **each shard its own database
file** (``shard_0000.db``, ``shard_0001.db``, ...) — one writer per
file, zero contention — and *merges* completed shards into the final
:class:`~repro.store.store.CampaignStore` as they finish.

The merge is deterministic by construction:

* run rows are keyed by their **global** fault index (the shard
  planner records global indices in the shard's fault table, so a
  shard database is self-describing);
* each row carries the fault's content digest
  (:func:`~repro.store.serialize.fault_key`) and the merge verifies
  it against the campaign spec — a row can never land on the wrong
  fault;
* duplicate rows — the legitimate product of at-least-once shard
  reassignment — are dropped by the final store's first-writer-wins
  insert (:meth:`CampaignStore.record_row`);
* reads come back ordered by fault index.

So the merged store's run rows are identical to a serial run's
regardless of worker count, shard size or arrival order.
"""

from __future__ import annotations

import hashlib
import json
import os

from .serialize import fault_from_dict
from .store import CampaignStore, StoreError, _now


class ShardedCampaignStore:
    """One :class:`CampaignStore` file per shard under ``directory``.

    The distributed complement of the single-file store: the
    coordinator ingests streamed rows into the owning shard's database
    (crash-durable — a coordinator restart re-merges completed shard
    files instead of re-running their faults) and calls
    :meth:`merge_into` when a shard completes.

    :param directory: created on first use; holds ``shard_NNNN.db``.
    """

    def __init__(self, directory):
        self.directory = str(directory)
        self._stores = {}          # shard_id -> open CampaignStore
        self._campaign_ids = {}    # (shard_id, sub-spec name) -> id

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Close every open shard database (idempotent)."""
        for store in self._stores.values():
            store.close()
        self._stores.clear()
        self._campaign_ids.clear()

    def __enter__(self):
        """Context-manager entry: returns the sharded store itself."""
        return self

    def __exit__(self, *_exc):
        """Context-manager exit: closes every shard database."""
        self.close()
        return False

    # -- shard databases ------------------------------------------------------

    def shard_path(self, shard_id):
        """The database file path of one shard."""
        return os.path.join(self.directory, f"shard_{shard_id:04d}.db")

    def shard_store(self, shard):
        """Open (and register) the database of one shard.

        Returns ``(store, campaign_id)``.  First open inserts the
        shard's campaign row (its sub-spec) and fault list **at global
        indices**; reopening — a coordinator restart, or re-ingest
        after reassignment — re-attaches to the existing rows.

        The database connection is cached per shard id (one writer
        per file), while the campaign id is cached per ``(shard id,
        sub-spec name)`` — two concurrent jobs that happen to share a
        shard id share the file but register distinct campaigns in it.
        """
        shard_id = shard.shard_id
        key = (shard_id, shard.spec["name"])
        if key in self._campaign_ids:
            return self._stores[shard_id], self._campaign_ids[key]
        if shard_id in self._stores:
            store = self._stores[shard_id]
        else:
            os.makedirs(self.directory, exist_ok=True)
            store = CampaignStore(self.shard_path(shard_id))
            self._stores[shard_id] = store
        campaign_id = self._register(store, shard)
        self._campaign_ids[key] = campaign_id
        return store, campaign_id

    @staticmethod
    def _register(store, shard):
        """Insert (or re-attach to) the shard campaign in its database."""
        name = shard.spec["name"]
        row = store._conn.execute(
            "SELECT id FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is not None:
            return row["id"]
        digest = hashlib.sha1(
            "".join(shard.fault_keys).encode()
        ).hexdigest()
        cursor = store._conn.execute(
            "INSERT INTO campaigns (name, spec_json, fault_digest, status,"
            " created_at, updated_at) VALUES (?, ?, ?, 'running', ?, ?)",
            (name, json.dumps(shard.spec), digest, _now(), _now()),
        )
        campaign_id = cursor.lastrowid
        store._conn.executemany(
            "INSERT INTO faults (campaign_id, idx, kind, key, description,"
            " descriptor_json) VALUES (?, ?, ?, ?, ?, ?)",
            [
                (campaign_id, global_idx, descriptor.get("kind", "?"),
                 key, fault_from_dict(descriptor).describe(),
                 json.dumps(descriptor))
                for global_idx, key, descriptor in zip(
                    shard.indices, shard.fault_keys, shard.spec["faults"]
                )
            ],
        )
        store._conn.commit()
        return campaign_id

    # -- ingest ---------------------------------------------------------------

    def ingest_row(self, shard, row):
        """Persist one streamed run row into its shard's database.

        Validates the row's fault ``key`` against the shard plan — a
        row claiming an index outside the shard, or a key that does
        not match the fault at that index, is a protocol violation.
        First-writer-wins on duplicates (re-streamed after a
        reassignment).

        :raises StoreError: on index/key mismatches.
        """
        index = int(row["idx"])
        try:
            position = shard.indices.index(index)
        except ValueError:
            raise StoreError(
                f"row for fault {index} does not belong to shard "
                f"{shard.shard_id} (indices {shard.indices[:4]}...)"
            ) from None
        if row.get("key") != shard.fault_keys[position]:
            raise StoreError(
                f"row for fault {index} carries fault key "
                f"{row.get('key')!r}, expected "
                f"{shard.fault_keys[position]!r}; refusing to ingest"
            )
        store, campaign_id = self.shard_store(shard)
        store.record_row(campaign_id, row, shard_id=shard.shard_id)

    def shard_run_rows(self, shard):
        """The rows one shard's database holds, in fault-index order."""
        store, campaign_id = self.shard_store(shard)
        return store.run_rows(campaign_id)

    # -- merge ----------------------------------------------------------------

    def merge_into(self, target, campaign_id, shard, worker=None,
                   leases=None):
        """Merge one completed shard into the final store.

        Reads the shard database's rows in fault-index order, verifies
        each row's fault key against the shard plan and inserts with
        first-writer-wins dedup; records the shard's lifecycle row.
        Returns the number of rows actually merged (duplicates from a
        reassigned shard count zero).
        """
        rows = self.shard_run_rows(shard)
        merged = 0
        for row in rows:
            position = shard.indices.index(int(row["idx"]))
            if row.get("key") != shard.fault_keys[position]:
                raise StoreError(
                    f"shard {shard.shard_id} row for fault {row['idx']} "
                    "does not match the campaign fault list; refusing "
                    "to merge"
                )
            before = target._conn.total_changes
            target.record_row(campaign_id, row, shard_id=shard.shard_id)
            merged += 1 if target._conn.total_changes > before else 0
        target.record_shard(
            campaign_id, shard.shard_id, "merged", worker=worker,
            n_faults=len(shard.indices), leases=leases,
        )
        return merged
