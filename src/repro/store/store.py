"""SQLite-backed persistent campaign results.

The campaign database is a first-class artifact of the flow — the
moral equivalent of DAVOS's fault-injection database: it records the
campaign specification, the full fault list, and one row per completed
faulty run (classification, per-trace comparison summaries, metrics,
timing, kernel-event counts).  Rows are committed as each run
completes, so a crashed or killed campaign loses at most the run in
flight, and a later session can

* **resume** — re-run only the faults without a successful row
  (:meth:`CampaignStore.pending_indices`), after verifying that the
  stored fault list and the regenerated golden traces match; and
* **query** — rebuild a full :class:`CampaignResult` *without
  re-simulating* (:meth:`CampaignStore.load_result`), from which the
  standard reports and fault dictionaries regenerate exactly.

Writes go through a **single writer** (the campaign parent process);
fork-parallel workers ship results back to the parent, which owns the
connection.  That keeps the store free of cross-process locking while
still recording parallel campaigns incrementally.
"""

from __future__ import annotations

import json
import sqlite3
from datetime import datetime, timezone

from ..core.errors import ReproError
from .backend import StoreBackend
from .serialize import (
    classification_to_dict,
    comparisons_to_dict,
    fault_key,
    fault_to_dict,
    faults_digest,
    probes_digest,
    spec_from_dict,
    spec_to_dict,
)

#: Schema version recorded in the ``meta`` table.
#:
#: * v1 — campaigns/faults/runs with binary ok/error run status.
#: * v2 — supervised execution: ``runs`` gains ``attempts`` and
#:   ``quarantined`` columns, and ``status`` may carry any of the
#:   terminal :data:`~repro.campaign.classify.RUN_STATUSES`
#:   (``timeout``/``diverged``/``crashed`` in addition to
#:   ``ok``/``error``).  v1 files migrate in place on open.
#: * v3 — telemetry: ``runs`` gains a ``postmortem`` column (path of
#:   the flight-recorder dump for a failed run), ``campaigns`` gains
#:   ``journal_path``/``journal_offset`` (where this campaign's event
#:   stream lives inside a possibly shared journal file), and a new
#:   ``workers`` table tracks supervised worker liveness (fed by
#:   heartbeats; surfaced by ``campaign status``/``campaign watch``).
#:   Older files migrate in place on open.
#: * v4 — distributed campaigns behind the store **backend
#:   interface** (:class:`~repro.store.backend.StoreBackend`):
#:   ``runs`` gains a ``shard_id`` column (which distributed shard
#:   produced the row; NULL for single-host campaigns), and a new
#:   ``shards`` table tracks shard lifecycle (lease count, worker,
#:   state) for campaigns executed by the :mod:`repro.dist`
#:   coordinator.  Older files migrate in place on open.
#: * v5 — adaptive sampling: ``campaigns`` gains
#:   ``sampling_seed``/``sampling_margin``/``sampling_confidence``/
#:   ``sampling_strata``/``sampling_chunk`` (the full deterministic
#:   sampling configuration, so ``--resume`` continues the same draw
#:   sequence), ``runs`` gains a ``stratum`` column, and ``status``
#:   may carry ``skipped`` — a fault an adaptively sampled campaign
#:   never simulated because its estimate converged first ("skipped
#:   by early stop", as opposed to "not sampled" = no row at all).
#:   Older files migrate in place on open.
SCHEMA_VERSION = 5

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    name           TEXT UNIQUE NOT NULL,
    spec_json      TEXT NOT NULL,
    fault_digest   TEXT NOT NULL,
    golden_json    TEXT,
    execution_json TEXT,
    status         TEXT NOT NULL DEFAULT 'running',
    created_at     TEXT NOT NULL,
    updated_at     TEXT NOT NULL,
    sampling_seed       INTEGER,
    sampling_margin     REAL,
    sampling_confidence REAL,
    sampling_strata     TEXT,
    sampling_chunk      INTEGER
);
CREATE TABLE IF NOT EXISTS faults (
    campaign_id     INTEGER NOT NULL REFERENCES campaigns(id),
    idx             INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    key             TEXT NOT NULL,
    description     TEXT NOT NULL,
    descriptor_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, idx)
);
CREATE TABLE IF NOT EXISTS runs (
    campaign_id         INTEGER NOT NULL REFERENCES campaigns(id),
    fault_idx           INTEGER NOT NULL,
    status              TEXT NOT NULL,
    label               TEXT,
    classification_json TEXT,
    comparisons_json    TEXT,
    metrics_json        TEXT,
    error               TEXT,
    wall_s              REAL,
    kernel_events       INTEGER,
    completed_at        TEXT NOT NULL,
    attempts            INTEGER,
    quarantined         INTEGER NOT NULL DEFAULT 0,
    postmortem          TEXT,
    shard_id            INTEGER,
    stratum             TEXT,
    PRIMARY KEY (campaign_id, fault_idx)
);
CREATE INDEX IF NOT EXISTS runs_by_label ON runs (campaign_id, label);
CREATE TABLE IF NOT EXISTS shards (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    shard_id    INTEGER NOT NULL,
    state       TEXT NOT NULL,
    worker      TEXT,
    n_faults    INTEGER,
    leases      INTEGER NOT NULL DEFAULT 0,
    updated_at  TEXT NOT NULL,
    PRIMARY KEY (campaign_id, shard_id)
);
CREATE TABLE IF NOT EXISTS workers (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    pid         INTEGER NOT NULL,
    state       TEXT NOT NULL,
    fault_idx   INTEGER,
    phase       TEXT,
    exitcode    INTEGER,
    spawned_at  TEXT NOT NULL,
    updated_at  TEXT NOT NULL,
    PRIMARY KEY (campaign_id, pid)
);
"""


class StoreError(ReproError):
    """Raised for campaign-store consistency or usage errors."""


def _now():
    return datetime.now(timezone.utc).isoformat()


# Shared with the per-shard databases and the distributed wire
# protocol (see repro.store.serialize); the old private names remain
# as aliases for the rest of this module.
_classification_to_dict = classification_to_dict
_comparisons_to_dict = comparisons_to_dict


class CampaignStore(StoreBackend):
    """One SQLite file holding any number of named campaigns.

    Usable as a context manager; :meth:`close` is idempotent.

    :param path: database file path (created on first open).  The
        special name ``":memory:"`` works for tests.
    """

    def __init__(self, path):
        self.path = str(path)
        # check_same_thread=False: the store itself is not thread-safe
        # (callers serialise access — the distributed coordinator opens
        # the final store at submit time and writes from its event-loop
        # thread under a lock), but it must not be thread-*pinned*.
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        # WAL lets readers (``campaign watch``/``status``) poll while
        # a writer streams rows — no more transient ``database is
        # locked`` during a live campaign — and the busy timeout makes
        # the residual write/write contention wait instead of raising.
        # Both pragmas are best-effort: ``:memory:`` databases and
        # filesystems without shared-memory support simply keep the
        # default journal mode.
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.Error:
            pass
        self._conn.execute("PRAGMA busy_timeout=5000")
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._conn.commit()

    def _migrate(self):
        """Upgrade an older database in place (additive columns only).

        ``CREATE TABLE IF NOT EXISTS`` leaves existing tables
        untouched, so newer columns are added here; existing rows read
        back with the new columns NULL (``attempts`` NULL is treated
        as 1, ``quarantined`` defaults to 0), which is exactly what
        the older campaign meant.  The ``workers`` (v3) and ``shards``
        (v4) tables are new and created by the schema script itself.
        """
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        if "attempts" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN attempts INTEGER")
        if "quarantined" not in columns:
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN quarantined INTEGER"
                " NOT NULL DEFAULT 0"
            )
        if "postmortem" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN postmortem TEXT")
        if "shard_id" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN shard_id INTEGER")
        if "stratum" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN stratum TEXT")
        campaign_columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(campaigns)")
        }
        if "journal_path" not in campaign_columns:
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN journal_path TEXT"
            )
        if "journal_offset" not in campaign_columns:
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN journal_offset INTEGER"
            )
        if "sampling_seed" not in campaign_columns:
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN sampling_seed INTEGER"
            )
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN sampling_margin REAL"
            )
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN sampling_confidence REAL"
            )
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN sampling_strata TEXT"
            )
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN sampling_chunk INTEGER"
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Close the underlying connection."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        """Context-manager entry: returns the store itself."""
        return self

    def __exit__(self, *_exc):
        """Context-manager exit: closes the connection."""
        self.close()
        return False

    # -- campaign registration ----------------------------------------------

    def open_campaign(self, spec, resume=False):
        """Register ``spec`` (or re-attach to it) and return its row id.

        A campaign is keyed by its name.  First open inserts the spec
        and fault list; re-opening requires ``resume=True`` *and* an
        identical fault list (by content digest), so results from
        different campaign definitions can never silently mix.

        :raises StoreError: on name collisions without ``resume`` or
            on fault-list mismatches.
        """
        digest = faults_digest(spec.faults)
        row = self._conn.execute(
            "SELECT id, fault_digest FROM campaigns WHERE name = ?",
            (spec.name,),
        ).fetchone()
        if row is not None:
            if not resume:
                raise StoreError(
                    f"campaign {spec.name!r} already exists in {self.path}; "
                    "pass resume=True (CLI: --resume) to continue it"
                )
            if row["fault_digest"] != digest:
                raise StoreError(
                    f"campaign {spec.name!r} in {self.path} was recorded "
                    "with a different fault list; refusing to resume"
                )
            return row["id"]

        cursor = self._conn.execute(
            "INSERT INTO campaigns (name, spec_json, fault_digest, status,"
            " created_at, updated_at) VALUES (?, ?, ?, 'running', ?, ?)",
            (spec.name, json.dumps(spec_to_dict(spec)), digest,
             _now(), _now()),
        )
        campaign_id = cursor.lastrowid
        self._conn.executemany(
            "INSERT INTO faults (campaign_id, idx, kind, key, description,"
            " descriptor_json) VALUES (?, ?, ?, ?, ?, ?)",
            [
                (campaign_id, index, descriptor.get("kind", "?"),
                 fault_key(fault), fault.describe(),
                 json.dumps(descriptor))
                for index, (fault, descriptor) in enumerate(
                    (fault, fault_to_dict(fault)) for fault in spec.faults
                )
            ],
        )
        self._conn.commit()
        return campaign_id

    def check_golden(self, campaign_id, probes):
        """Record or verify the golden-run trace digests.

        First call stores the digests; later calls (resume) compare
        and raise when the regenerated golden run differs — a changed
        design factory would otherwise corrupt the merged results.

        :raises StoreError: on digest mismatch.
        """
        self.check_golden_digests(campaign_id, probes_digest(probes))

    def record_golden_digests(self, campaign_id, digests):
        """Store golden digests without verification, first write wins.

        For recorders whose digests are not globally comparable: the
        distributed coordinator keeps the campaign row's golden as a
        reference sample (the first completed shard's), but shards
        pause their golden runs at their *own* fault times, so
        cross-shard digests legitimately differ and comparison
        happens per shard in the coordinator instead.
        """
        row = self._conn.execute(
            "SELECT golden_json FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign with id {campaign_id}")
        if row["golden_json"] is not None:
            return
        self._conn.execute(
            "UPDATE campaigns SET golden_json = ?, updated_at = ?"
            " WHERE id = ?",
            (json.dumps(digests), _now(), campaign_id),
        )
        self._conn.commit()

    def check_golden_digests(self, campaign_id, digests):
        """Record or verify golden digests that were computed elsewhere.

        The digest-level sibling of :meth:`check_golden`, for callers
        that never see the golden traces themselves and must prove a
        regenerated golden matches the stored campaign before mixing
        new rows into it.

        :raises StoreError: on digest mismatch.
        """
        row = self._conn.execute(
            "SELECT golden_json FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign with id {campaign_id}")
        if row["golden_json"] is None:
            self._conn.execute(
                "UPDATE campaigns SET golden_json = ?, updated_at = ?"
                " WHERE id = ?",
                (json.dumps(digests), _now(), campaign_id),
            )
            self._conn.commit()
            return
        stored = json.loads(row["golden_json"])
        if stored != digests:
            changed = sorted(
                name for name in set(stored) | set(digests)
                if stored.get(name) != digests.get(name)
            )
            raise StoreError(
                "golden run differs from the stored campaign "
                f"(changed traces: {', '.join(changed)}); the design or "
                "its parameters changed — refusing to mix results"
            )

    # -- run recording --------------------------------------------------------

    def completed_indices(self, campaign_id):
        """Set of fault indices with a successful run row."""
        rows = self._conn.execute(
            "SELECT fault_idx FROM runs WHERE campaign_id = ?"
            " AND status = 'ok'",
            (campaign_id,),
        ).fetchall()
        return {row["fault_idx"] for row in rows}

    def quarantined_indices(self, campaign_id):
        """Set of fault indices parked by the retry policy."""
        rows = self._conn.execute(
            "SELECT fault_idx FROM runs WHERE campaign_id = ?"
            " AND quarantined != 0",
            (campaign_id,),
        ).fetchall()
        return {row["fault_idx"] for row in rows}

    def pending_indices(self, campaign_id, total, include_quarantined=False):
        """Fault indices still to run, in campaign order.

        Failed runs count as pending — a resume retries them — with
        one exception: faults a previous execution *quarantined*
        (retries exhausted) stay parked unless ``include_quarantined``
        asks for another round.
        """
        done = self.completed_indices(campaign_id)
        if not include_quarantined:
            done = done | self.quarantined_indices(campaign_id)
        return [index for index in range(total) if index not in done]

    def record_run(self, campaign_id, index, fault_result,
                   wall_s=None, kernel_events=None, attempts=1,
                   stratum=None):
        """Persist one completed faulty run (commits immediately)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO runs (campaign_id, fault_idx, status,"
            " label, classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined, stratum)"
            " VALUES (?, ?, 'ok', ?, ?, ?, ?, NULL, ?, ?, ?, ?, 0, ?)",
            (
                campaign_id,
                index,
                fault_result.label,
                json.dumps(
                    _classification_to_dict(fault_result.classification)
                ),
                json.dumps(_comparisons_to_dict(fault_result.comparisons)),
                json.dumps(fault_result.metrics, default=str),
                wall_s,
                kernel_events,
                _now(),
                attempts,
                stratum,
            ),
        )
        self._conn.commit()

    def record_runs(self, campaign_id, rows):
        """Persist many completed runs in **one** transaction.

        The batched-campaign complement of :meth:`record_run` (which
        commits per row): an ensemble batch classifies a whole group
        of runs at once, and committing them with a single
        ``executemany`` amortises the fsync that otherwise dominates
        many-small-runs campaigns.  Crash durability is per *batch*:
        an interrupted campaign loses at most the rows of the batch in
        flight, which resume re-runs.

        :param rows: iterable of ``(index, fault_result, wall_s,
            kernel_events, attempts)`` tuples, optionally extended
            with a sixth ``stratum`` element (sampled campaigns).
        """
        payload = []
        for row in rows:
            index, fault_result, wall_s, kernel_events, attempts = row[:5]
            stratum = row[5] if len(row) > 5 else None
            payload.append((
                campaign_id,
                index,
                fault_result.label,
                json.dumps(
                    _classification_to_dict(fault_result.classification)
                ),
                json.dumps(_comparisons_to_dict(fault_result.comparisons)),
                json.dumps(fault_result.metrics, default=str),
                wall_s,
                kernel_events,
                _now(),
                attempts,
                stratum,
            ))
        if not payload:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO runs (campaign_id, fault_idx, status,"
            " label, classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined, stratum)"
            " VALUES (?, ?, 'ok', ?, ?, ?, ?, NULL, ?, ?, ?, ?, 0, ?)",
            payload,
        )
        self._conn.commit()

    def record_error(self, campaign_id, index, message, wall_s=None,
                     status="error", attempts=1, quarantined=False,
                     postmortem=None, stratum=None):
        """Persist one failed faulty run (commits immediately).

        :param status: terminal failure status — one of
            :data:`~repro.campaign.classify.FAILURE_STATUSES`.
        :param attempts: how many times the fault was attempted.
        :param quarantined: True parks the fault: resume skips it
            unless quarantined faults are explicitly re-requested.
        :param postmortem: optional path of the flight-recorder dump
            written for this failure (see :mod:`repro.obs.flightrec`).
        """
        from ..campaign.classify import FAILURE_STATUSES

        if status not in FAILURE_STATUSES:
            raise StoreError(
                f"invalid failure status {status!r};"
                f" expected one of {FAILURE_STATUSES}"
            )
        self._conn.execute(
            "INSERT OR REPLACE INTO runs (campaign_id, fault_idx, status,"
            " label, classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined, postmortem, stratum)"
            " VALUES (?, ?, ?, NULL, NULL, NULL, NULL, ?, ?, NULL, ?, ?, ?,"
            " ?, ?)",
            (campaign_id, index, status, message, wall_s, _now(),
             attempts, 1 if quarantined else 0,
             None if postmortem is None else str(postmortem), stratum),
        )
        self._conn.commit()

    def record_skipped(self, campaign_id, rows):
        """Mark faults skipped by sampling early stop, one transaction.

        Written once a sampled campaign converges: every fault the
        sampler never drew (or drew but abandoned at the stop) gets a
        ``skipped`` row, distinguishing "skipped by early stop" from
        "not sampled" (no row — the campaign was interrupted before
        converging).  First writer wins, so re-running a resumed,
        already converged campaign is idempotent.

        :param rows: iterable of ``(index, stratum)`` pairs.
        """
        payload = [
            (campaign_id, index, _now(), stratum)
            for index, stratum in rows
        ]
        if not payload:
            return
        self._conn.executemany(
            "INSERT OR IGNORE INTO runs (campaign_id, fault_idx, status,"
            " label, classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined, stratum)"
            " VALUES (?, ?, 'skipped', NULL, NULL, NULL, NULL, NULL, NULL,"
            " NULL, ?, 0, 0, ?)",
            payload,
        )
        self._conn.commit()

    def record_sampling(self, campaign_id, seed, margin, confidence,
                        strata, chunk):
        """Persist (or verify) a campaign's sampling configuration.

        The configuration *is* the draw sequence — seed, margin,
        confidence, strata mode and chunk size together determine
        every round the sampler will plan — so resuming with a
        different configuration would silently change which faults
        get simulated.  First write records; later writes verify.

        :raises StoreError: when a stored configuration differs.
        """
        stored = self.sampling_config(campaign_id)
        config = {
            "seed": int(seed),
            "margin": float(margin),
            "confidence": float(confidence),
            "strata": str(strata),
            "chunk": int(chunk),
        }
        if stored is not None:
            if stored != config:
                raise StoreError(
                    f"campaign sampling configuration changed: stored "
                    f"{stored}, requested {config}; refusing to resume "
                    "with a different draw sequence"
                )
            return
        self._conn.execute(
            "UPDATE campaigns SET sampling_seed = ?, sampling_margin = ?,"
            " sampling_confidence = ?, sampling_strata = ?,"
            " sampling_chunk = ?, updated_at = ? WHERE id = ?",
            (config["seed"], config["margin"], config["confidence"],
             config["strata"], config["chunk"], _now(), campaign_id),
        )
        self._conn.commit()

    def sampling_config(self, campaign_id):
        """The stored sampling configuration dict, or None.

        ``None`` means the campaign is (so far) exhaustive; a resumed
        campaign with a configuration continues sampled even without
        the CLI flags.
        """
        row = self._conn.execute(
            "SELECT sampling_seed, sampling_margin, sampling_confidence,"
            " sampling_strata, sampling_chunk FROM campaigns WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign with id {campaign_id}")
        if row["sampling_seed"] is None:
            return None
        return {
            "seed": row["sampling_seed"],
            "margin": row["sampling_margin"],
            "confidence": row["sampling_confidence"],
            "strata": row["sampling_strata"],
            "chunk": row["sampling_chunk"],
        }

    def record_row(self, campaign_id, row, shard_id=None, replace=False):
        """Persist one run from its **row dict** rendering.

        ``row`` follows the canonical schema of
        :data:`~repro.store.serialize.ROW_FIELDS` — what the
        distributed wire protocol streams and the per-shard databases
        hold.  The default conflict policy is *first writer wins*
        (``INSERT OR IGNORE``): shard reassignment is at-least-once,
        so the same fault may legitimately arrive twice, and ignoring
        the duplicate keeps the merged store deterministic regardless
        of arrival order.  Commits immediately.
        """
        self._conn.execute(
            "INSERT OR " + ("REPLACE" if replace else "IGNORE")
            + " INTO runs (campaign_id, fault_idx, status, label,"
            " classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined, postmortem, shard_id, stratum)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                campaign_id,
                int(row["idx"]),
                row["status"],
                row.get("label"),
                (None if row.get("classification") is None
                 else json.dumps(row["classification"])),
                (None if row.get("comparisons") is None
                 else json.dumps(row["comparisons"])),
                (None if row.get("metrics") is None
                 else json.dumps(row["metrics"], default=str)),
                row.get("error"),
                row.get("wall_s"),
                row.get("kernel_events"),
                _now(),
                row.get("attempts", 1),
                1 if row.get("quarantined") else 0,
                row.get("postmortem"),
                shard_id if shard_id is not None else row.get("shard_id"),
                row.get("stratum"),
            ),
        )
        self._conn.commit()

    def run_rows(self, campaign_id):
        """Every recorded run as a row dict, in fault-index order.

        The inverse of :meth:`record_row` (plus the fault's content
        ``key`` joined in from the fault list), used by the shard
        merge and by row-identity assertions in tests.
        """
        rows = []
        for row in self._conn.execute(
            "SELECT r.*, f.key AS fault_key FROM runs r"
            " LEFT JOIN faults f ON f.campaign_id = r.campaign_id"
            " AND f.idx = r.fault_idx"
            " WHERE r.campaign_id = ? ORDER BY r.fault_idx",
            (campaign_id,),
        ):
            rows.append({
                "idx": row["fault_idx"],
                "key": row["fault_key"],
                "status": row["status"],
                "label": row["label"],
                "classification": (
                    None if row["classification_json"] is None
                    else json.loads(row["classification_json"])
                ),
                "comparisons": (
                    None if row["comparisons_json"] is None
                    else json.loads(row["comparisons_json"])
                ),
                "metrics": (
                    None if row["metrics_json"] is None
                    else json.loads(row["metrics_json"])
                ),
                "error": row["error"],
                "wall_s": row["wall_s"],
                "kernel_events": row["kernel_events"],
                "attempts": row["attempts"],
                "quarantined": row["quarantined"],
                "postmortem": row["postmortem"],
                "shard_id": row["shard_id"],
                "stratum": row["stratum"],
            })
        return rows

    def record_shard(self, campaign_id, shard_id, state, worker=None,
                     n_faults=None, leases=None):
        """Upsert one distributed shard's lifecycle row.

        The coordinator calls this as shards move through
        ``pending`` -> ``leased`` -> ``merged`` (with ``leases``
        counting at-least-once reassignments); ``campaign status`` and
        post-mortem queries read it back via :meth:`shard_rows`.
        """
        now = _now()
        cursor = self._conn.execute(
            "UPDATE shards SET state = ?,"
            " worker = COALESCE(?, worker),"
            " n_faults = COALESCE(?, n_faults),"
            " leases = COALESCE(?, leases), updated_at = ?"
            " WHERE campaign_id = ? AND shard_id = ?",
            (state, worker, n_faults, leases, now, campaign_id, shard_id),
        )
        if cursor.rowcount == 0:
            self._conn.execute(
                "INSERT INTO shards (campaign_id, shard_id, state, worker,"
                " n_faults, leases, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (campaign_id, shard_id, state, worker, n_faults,
                 leases or 0, now),
            )
        self._conn.commit()

    def shard_rows(self, name=None):
        """Distributed shard lifecycle rows for one campaign.

        Returns a list of dicts (``shard_id``, ``state``, ``worker``,
        ``n_faults``, ``leases``, ``updated_at``) in shard order;
        empty for single-host campaigns.
        """
        campaign_id = self.campaign_id(name)
        return [
            dict(row)
            for row in self._conn.execute(
                "SELECT shard_id, state, worker, n_faults, leases,"
                " updated_at FROM shards WHERE campaign_id = ?"
                " ORDER BY shard_id",
                (campaign_id,),
            )
        ]

    def record_journal(self, campaign_id, path, offset=0):
        """Record where this campaign's journal event stream lives.

        ``offset`` is the byte position at which this execution's
        events start (non-zero when appending to a shared journal
        file), so a consumer can seek straight to them.
        """
        self._conn.execute(
            "UPDATE campaigns SET journal_path = ?, journal_offset = ?,"
            " updated_at = ? WHERE id = ?",
            (str(path), int(offset), _now(), campaign_id),
        )
        self._conn.commit()

    def record_worker(self, campaign_id, pid, state, fault_idx=None,
                      phase=None, exitcode=None):
        """Upsert one supervised worker's liveness row.

        Called by the campaign parent on worker lifecycle events
        (spawn, heartbeat, death); ``campaign status`` and ``campaign
        watch`` render the result as the workers section.
        """
        now = _now()
        cursor = self._conn.execute(
            "UPDATE workers SET state = ?, fault_idx = ?, phase = ?,"
            " exitcode = ?, updated_at = ?"
            " WHERE campaign_id = ? AND pid = ?",
            (state, fault_idx, phase, exitcode, now, campaign_id, pid),
        )
        if cursor.rowcount == 0:
            self._conn.execute(
                "INSERT INTO workers (campaign_id, pid, state, fault_idx,"
                " phase, exitcode, spawned_at, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (campaign_id, pid, state, fault_idx, phase, exitcode,
                 now, now),
            )
        self._conn.commit()

    def record_execution(self, campaign_id, execution, status="complete"):
        """Store the final execution-stats dict and campaign status."""
        self._conn.execute(
            "UPDATE campaigns SET execution_json = ?, status = ?,"
            " updated_at = ? WHERE id = ?",
            (json.dumps(execution), status, _now(), campaign_id),
        )
        self._conn.commit()

    # -- queries ---------------------------------------------------------------

    def campaign_id(self, name=None):
        """Resolve a campaign name to its row id.

        With ``name=None`` the database must hold exactly one
        campaign.

        :raises StoreError: for unknown or ambiguous names.
        """
        if name is None:
            rows = self._conn.execute(
                "SELECT id, name FROM campaigns ORDER BY id"
            ).fetchall()
            if not rows:
                raise StoreError(f"{self.path} holds no campaigns")
            if len(rows) > 1:
                names = ", ".join(row["name"] for row in rows)
                raise StoreError(
                    f"{self.path} holds several campaigns ({names}); "
                    "pick one by name"
                )
            return rows[0]["id"]
        row = self._conn.execute(
            "SELECT id FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign named {name!r} in {self.path}")
        return row["id"]

    def load_spec(self, campaign_id):
        """Rebuild the stored :class:`CampaignSpec` (real fault objects)."""
        row = self._conn.execute(
            "SELECT spec_json FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign with id {campaign_id}")
        return spec_from_dict(json.loads(row["spec_json"]))

    def load_runs(self, campaign_id, faults):
        """Completed runs as ``{index: FaultResult}`` over ``faults``.

        ``faults`` supplies the fault instances the rebuilt
        :class:`FaultResult` objects reference — pass the live spec's
        list when merging into a resumed campaign, or the stored
        spec's when loading standalone.
        """
        from ..campaign.classify import Classification
        from ..campaign.compare import TraceComparison
        from ..campaign.results import FaultResult

        results = {}
        for row in self._conn.execute(
            "SELECT * FROM runs WHERE campaign_id = ? AND status = 'ok'"
            " ORDER BY fault_idx",
            (campaign_id,),
        ):
            index = row["fault_idx"]
            if index >= len(faults):
                raise StoreError(
                    f"run row for fault {index} exceeds fault list"
                )
            classification = Classification(
                **json.loads(row["classification_json"])
            )
            comparisons = {
                name: TraceComparison(name=name, **fields)
                for name, fields in
                json.loads(row["comparisons_json"]).items()
            }
            results[index] = FaultResult(
                fault=faults[index],
                classification=classification,
                comparisons=comparisons,
                metrics=json.loads(row["metrics_json"] or "{}"),
            )
        return results

    def load_errors(self, campaign_id, faults):
        """Failed runs as a list of :class:`CampaignRunError`.

        Mirrors :meth:`load_runs` for the rows that did *not* complete
        — a resumed or loaded campaign accounts for quarantined and
        still-failing faults the same way a live one does.  Rows a
        sampled campaign *skipped* by early stop are not errors and
        are excluded.
        """
        from ..campaign.results import CampaignRunError

        errors = []
        for row in self._conn.execute(
            "SELECT * FROM runs WHERE campaign_id = ? AND status != 'ok'"
            " AND status != 'skipped' ORDER BY fault_idx",
            (campaign_id,),
        ):
            index = row["fault_idx"]
            if index >= len(faults):
                raise StoreError(
                    f"run row for fault {index} exceeds fault list"
                )
            errors.append(CampaignRunError(
                index=index,
                fault=faults[index],
                message=row["error"] or "",
                status=row["status"],
                attempts=row["attempts"] or 1,
                quarantined=bool(row["quarantined"]),
                postmortem=row["postmortem"],
            ))
        return errors

    def journal_location(self, name=None):
        """The recorded ``(journal_path, journal_offset)`` (or None)."""
        campaign_id = self.campaign_id(name)
        row = self._conn.execute(
            "SELECT journal_path, journal_offset FROM campaigns"
            " WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None or row["journal_path"] is None:
            return None
        return row["journal_path"], row["journal_offset"] or 0

    def worker_rows(self, name=None):
        """Supervised worker liveness rows for one campaign.

        Returns a list of dicts (``pid``, ``state``, ``fault_idx``,
        ``phase``, ``exitcode``, ``spawned_at``, ``updated_at``) in
        spawn order; empty for serial campaigns.
        """
        campaign_id = self.campaign_id(name)
        return [
            dict(row)
            for row in self._conn.execute(
                "SELECT pid, state, fault_idx, phase, exitcode,"
                " spawned_at, updated_at FROM workers"
                " WHERE campaign_id = ? ORDER BY spawned_at, pid",
                (campaign_id,),
            )
        ]

    def load_result(self, name=None):
        """Rebuild a full :class:`CampaignResult` without simulating.

        The result carries the stored spec (with reconstructed fault
        instances), every successful run in fault-list order, the
        stored execution stats, and empty golden probes (traces are
        not persisted — only their digests are).
        """
        from ..campaign.results import CampaignResult

        campaign_id = self.campaign_id(name)
        spec = self.load_spec(campaign_id)
        result = CampaignResult(spec)
        runs = self.load_runs(campaign_id, spec.faults)
        for index in sorted(runs):
            result.add(runs[index])
        result.errors = self.load_errors(campaign_id, spec.faults)
        row = self._conn.execute(
            "SELECT execution_json FROM campaigns WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row["execution_json"]:
            result.execution = json.loads(row["execution_json"])
        return result

    def status(self):
        """Per-campaign progress summary for every stored campaign.

        Returns a list of dicts with ``name``, ``status``, ``total``,
        ``completed``, ``errors``, ``skipped``, ``sampled``,
        ``created_at``, ``updated_at`` and ``mode`` (the recorded
        execution mode — ``cold`` / ``warm`` / ``batched``, suffixed
        with the batch mode when one was recorded; ``"?"`` until an
        execution record lands).  ``skipped`` counts faults a sampled
        campaign skipped by early stop — they are not errors.
        """
        summaries = []
        for row in self._conn.execute(
            "SELECT id, name, status, created_at, updated_at,"
            " execution_json, sampling_seed FROM campaigns ORDER BY id"
        ):
            mode = "?"
            if row["execution_json"]:
                execution = json.loads(row["execution_json"])
                mode = execution.get("mode", "?")
                batch_mode = (execution.get("batch") or {}).get("mode")
                if mode == "batched" and batch_mode:
                    mode = f"batched/{batch_mode}"
            total = self._conn.execute(
                "SELECT COUNT(*) AS n FROM faults WHERE campaign_id = ?",
                (row["id"],),
            ).fetchone()["n"]
            completed = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ?"
                " AND status = 'ok'",
                (row["id"],),
            ).fetchone()["n"]
            errors = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ?"
                " AND status != 'ok' AND status != 'skipped'",
                (row["id"],),
            ).fetchone()["n"]
            skipped = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ?"
                " AND status = 'skipped'",
                (row["id"],),
            ).fetchone()["n"]
            quarantined = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ?"
                " AND quarantined != 0",
                (row["id"],),
            ).fetchone()["n"]
            summaries.append(
                {
                    "name": row["name"],
                    "status": row["status"],
                    "mode": mode,
                    "total": total,
                    "completed": completed,
                    "errors": errors,
                    "skipped": skipped,
                    "quarantined": quarantined,
                    "sampled": row["sampling_seed"] is not None,
                    "created_at": row["created_at"],
                    "updated_at": row["updated_at"],
                }
            )
        return summaries

    def stratum_counts(self, name=None):
        """Per-stratum run tallies for a sampled campaign.

        Returns ``{stratum: {"trials", "errors", "failed",
        "skipped"}}`` straight from SQL — ``trials`` counts completed
        runs, ``errors`` the non-silent subset, ``failed`` terminal
        failures and ``skipped`` early-stop skips.  Empty for
        campaigns without stratum annotations.
        """
        campaign_id = self.campaign_id(name)
        counts = {}
        for row in self._conn.execute(
            "SELECT stratum,"
            " SUM(CASE WHEN status = 'ok' THEN 1 ELSE 0 END) AS trials,"
            " SUM(CASE WHEN status = 'ok' AND label != 'silent'"
            "     THEN 1 ELSE 0 END) AS errors,"
            " SUM(CASE WHEN status NOT IN ('ok', 'skipped')"
            "     THEN 1 ELSE 0 END) AS failed,"
            " SUM(CASE WHEN status = 'skipped' THEN 1 ELSE 0 END)"
            "     AS skipped"
            " FROM runs WHERE campaign_id = ? AND stratum IS NOT NULL"
            " GROUP BY stratum ORDER BY stratum",
            (campaign_id,),
        ):
            counts[row["stratum"]] = {
                "trials": row["trials"],
                "errors": row["errors"],
                "failed": row["failed"],
                "skipped": row["skipped"],
            }
        return counts

    def run_status_counts(self, name=None):
        """Terminal run status -> row count, straight from SQL.

        ``ok`` counts completed runs; failure statuses (``timeout``/
        ``diverged``/``crashed``/``error``) count their terminal rows.
        The live view (``campaign watch``) polls this.
        """
        campaign_id = self.campaign_id(name)
        return {
            row["status"]: row["n"]
            for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM runs"
                " WHERE campaign_id = ? GROUP BY status ORDER BY status",
                (campaign_id,),
            )
        }

    def class_counts(self, name=None):
        """Classification label -> run count, straight from SQL."""
        campaign_id = self.campaign_id(name)
        return {
            row["label"]: row["n"]
            for row in self._conn.execute(
                "SELECT label, COUNT(*) AS n FROM runs"
                " WHERE campaign_id = ? AND status = 'ok'"
                " GROUP BY label ORDER BY label",
                (campaign_id,),
            )
        }
