"""SQLite-backed persistent campaign results.

The campaign database is a first-class artifact of the flow — the
moral equivalent of DAVOS's fault-injection database: it records the
campaign specification, the full fault list, and one row per completed
faulty run (classification, per-trace comparison summaries, metrics,
timing, kernel-event counts).  Rows are committed as each run
completes, so a crashed or killed campaign loses at most the run in
flight, and a later session can

* **resume** — re-run only the faults without a successful row
  (:meth:`CampaignStore.pending_indices`), after verifying that the
  stored fault list and the regenerated golden traces match; and
* **query** — rebuild a full :class:`CampaignResult` *without
  re-simulating* (:meth:`CampaignStore.load_result`), from which the
  standard reports and fault dictionaries regenerate exactly.

Writes go through a **single writer** (the campaign parent process);
fork-parallel workers ship results back to the parent, which owns the
connection.  That keeps the store free of cross-process locking while
still recording parallel campaigns incrementally.
"""

from __future__ import annotations

import json
import sqlite3
from datetime import datetime, timezone

from ..core.errors import ReproError
from .serialize import (
    fault_key,
    fault_to_dict,
    faults_digest,
    probes_digest,
    spec_from_dict,
    spec_to_dict,
)

#: Schema version recorded in the ``meta`` table.
#:
#: * v1 — campaigns/faults/runs with binary ok/error run status.
#: * v2 — supervised execution: ``runs`` gains ``attempts`` and
#:   ``quarantined`` columns, and ``status`` may carry any of the
#:   terminal :data:`~repro.campaign.classify.RUN_STATUSES`
#:   (``timeout``/``diverged``/``crashed`` in addition to
#:   ``ok``/``error``).  v1 files migrate in place on open.
#: * v3 — telemetry: ``runs`` gains a ``postmortem`` column (path of
#:   the flight-recorder dump for a failed run), ``campaigns`` gains
#:   ``journal_path``/``journal_offset`` (where this campaign's event
#:   stream lives inside a possibly shared journal file), and a new
#:   ``workers`` table tracks supervised worker liveness (fed by
#:   heartbeats; surfaced by ``campaign status``/``campaign watch``).
#:   Older files migrate in place on open.
SCHEMA_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    name           TEXT UNIQUE NOT NULL,
    spec_json      TEXT NOT NULL,
    fault_digest   TEXT NOT NULL,
    golden_json    TEXT,
    execution_json TEXT,
    status         TEXT NOT NULL DEFAULT 'running',
    created_at     TEXT NOT NULL,
    updated_at     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS faults (
    campaign_id     INTEGER NOT NULL REFERENCES campaigns(id),
    idx             INTEGER NOT NULL,
    kind            TEXT NOT NULL,
    key             TEXT NOT NULL,
    description     TEXT NOT NULL,
    descriptor_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, idx)
);
CREATE TABLE IF NOT EXISTS runs (
    campaign_id         INTEGER NOT NULL REFERENCES campaigns(id),
    fault_idx           INTEGER NOT NULL,
    status              TEXT NOT NULL,
    label               TEXT,
    classification_json TEXT,
    comparisons_json    TEXT,
    metrics_json        TEXT,
    error               TEXT,
    wall_s              REAL,
    kernel_events       INTEGER,
    completed_at        TEXT NOT NULL,
    attempts            INTEGER,
    quarantined         INTEGER NOT NULL DEFAULT 0,
    postmortem          TEXT,
    PRIMARY KEY (campaign_id, fault_idx)
);
CREATE INDEX IF NOT EXISTS runs_by_label ON runs (campaign_id, label);
CREATE TABLE IF NOT EXISTS workers (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    pid         INTEGER NOT NULL,
    state       TEXT NOT NULL,
    fault_idx   INTEGER,
    phase       TEXT,
    exitcode    INTEGER,
    spawned_at  TEXT NOT NULL,
    updated_at  TEXT NOT NULL,
    PRIMARY KEY (campaign_id, pid)
);
"""


class StoreError(ReproError):
    """Raised for campaign-store consistency or usage errors."""


def _now():
    return datetime.now(timezone.utc).isoformat()


def _classification_to_dict(classification):
    return {
        "label": classification.label,
        "first_output_divergence": classification.first_output_divergence,
        "output_mismatch_time": classification.output_mismatch_time,
        "diverged_outputs": list(classification.diverged_outputs),
        "diverged_internal": list(classification.diverged_internal),
        "latent_traces": list(classification.latent_traces),
    }


def _comparisons_to_dict(comparisons):
    # Analog comparisons carry numpy scalars (np.bool_/np.float64);
    # coerce to plain Python so json.dumps never chokes on them.
    def _opt_float(value):
        return None if value is None else float(value)

    return {
        name: {
            "match": bool(cmp_result.match),
            "first_divergence": _opt_float(cmp_result.first_divergence),
            "last_divergence": _opt_float(cmp_result.last_divergence),
            "mismatch_time": _opt_float(cmp_result.mismatch_time),
            "max_deviation": _opt_float(cmp_result.max_deviation),
            "final_match": bool(cmp_result.final_match),
        }
        for name, cmp_result in comparisons.items()
    }


class CampaignStore:
    """One SQLite file holding any number of named campaigns.

    Usable as a context manager; :meth:`close` is idempotent.

    :param path: database file path (created on first open).  The
        special name ``":memory:"`` works for tests.
    """

    def __init__(self, path):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._conn.commit()

    def _migrate(self):
        """Upgrade an older database in place (additive columns only).

        ``CREATE TABLE IF NOT EXISTS`` leaves existing tables
        untouched, so newer columns are added here; existing rows read
        back with the new columns NULL (``attempts`` NULL is treated
        as 1, ``quarantined`` defaults to 0), which is exactly what
        the older campaign meant.  The ``workers`` table is new in v3
        and created by the schema script itself.
        """
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        if "attempts" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN attempts INTEGER")
        if "quarantined" not in columns:
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN quarantined INTEGER"
                " NOT NULL DEFAULT 0"
            )
        if "postmortem" not in columns:
            self._conn.execute("ALTER TABLE runs ADD COLUMN postmortem TEXT")
        campaign_columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(campaigns)")
        }
        if "journal_path" not in campaign_columns:
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN journal_path TEXT"
            )
        if "journal_offset" not in campaign_columns:
            self._conn.execute(
                "ALTER TABLE campaigns ADD COLUMN journal_offset INTEGER"
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Close the underlying connection."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        """Context-manager entry: returns the store itself."""
        return self

    def __exit__(self, *_exc):
        """Context-manager exit: closes the connection."""
        self.close()
        return False

    # -- campaign registration ----------------------------------------------

    def open_campaign(self, spec, resume=False):
        """Register ``spec`` (or re-attach to it) and return its row id.

        A campaign is keyed by its name.  First open inserts the spec
        and fault list; re-opening requires ``resume=True`` *and* an
        identical fault list (by content digest), so results from
        different campaign definitions can never silently mix.

        :raises StoreError: on name collisions without ``resume`` or
            on fault-list mismatches.
        """
        digest = faults_digest(spec.faults)
        row = self._conn.execute(
            "SELECT id, fault_digest FROM campaigns WHERE name = ?",
            (spec.name,),
        ).fetchone()
        if row is not None:
            if not resume:
                raise StoreError(
                    f"campaign {spec.name!r} already exists in {self.path}; "
                    "pass resume=True (CLI: --resume) to continue it"
                )
            if row["fault_digest"] != digest:
                raise StoreError(
                    f"campaign {spec.name!r} in {self.path} was recorded "
                    "with a different fault list; refusing to resume"
                )
            return row["id"]

        cursor = self._conn.execute(
            "INSERT INTO campaigns (name, spec_json, fault_digest, status,"
            " created_at, updated_at) VALUES (?, ?, ?, 'running', ?, ?)",
            (spec.name, json.dumps(spec_to_dict(spec)), digest,
             _now(), _now()),
        )
        campaign_id = cursor.lastrowid
        self._conn.executemany(
            "INSERT INTO faults (campaign_id, idx, kind, key, description,"
            " descriptor_json) VALUES (?, ?, ?, ?, ?, ?)",
            [
                (campaign_id, index, descriptor.get("kind", "?"),
                 fault_key(fault), fault.describe(),
                 json.dumps(descriptor))
                for index, (fault, descriptor) in enumerate(
                    (fault, fault_to_dict(fault)) for fault in spec.faults
                )
            ],
        )
        self._conn.commit()
        return campaign_id

    def check_golden(self, campaign_id, probes):
        """Record or verify the golden-run trace digests.

        First call stores the digests; later calls (resume) compare
        and raise when the regenerated golden run differs — a changed
        design factory would otherwise corrupt the merged results.

        :raises StoreError: on digest mismatch.
        """
        digests = probes_digest(probes)
        row = self._conn.execute(
            "SELECT golden_json FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign with id {campaign_id}")
        if row["golden_json"] is None:
            self._conn.execute(
                "UPDATE campaigns SET golden_json = ?, updated_at = ?"
                " WHERE id = ?",
                (json.dumps(digests), _now(), campaign_id),
            )
            self._conn.commit()
            return
        stored = json.loads(row["golden_json"])
        if stored != digests:
            changed = sorted(
                name for name in set(stored) | set(digests)
                if stored.get(name) != digests.get(name)
            )
            raise StoreError(
                "golden run differs from the stored campaign "
                f"(changed traces: {', '.join(changed)}); the design or "
                "its parameters changed — refusing to mix results"
            )

    # -- run recording --------------------------------------------------------

    def completed_indices(self, campaign_id):
        """Set of fault indices with a successful run row."""
        rows = self._conn.execute(
            "SELECT fault_idx FROM runs WHERE campaign_id = ?"
            " AND status = 'ok'",
            (campaign_id,),
        ).fetchall()
        return {row["fault_idx"] for row in rows}

    def quarantined_indices(self, campaign_id):
        """Set of fault indices parked by the retry policy."""
        rows = self._conn.execute(
            "SELECT fault_idx FROM runs WHERE campaign_id = ?"
            " AND quarantined != 0",
            (campaign_id,),
        ).fetchall()
        return {row["fault_idx"] for row in rows}

    def pending_indices(self, campaign_id, total, include_quarantined=False):
        """Fault indices still to run, in campaign order.

        Failed runs count as pending — a resume retries them — with
        one exception: faults a previous execution *quarantined*
        (retries exhausted) stay parked unless ``include_quarantined``
        asks for another round.
        """
        done = self.completed_indices(campaign_id)
        if not include_quarantined:
            done = done | self.quarantined_indices(campaign_id)
        return [index for index in range(total) if index not in done]

    def record_run(self, campaign_id, index, fault_result,
                   wall_s=None, kernel_events=None, attempts=1):
        """Persist one completed faulty run (commits immediately)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO runs (campaign_id, fault_idx, status,"
            " label, classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined)"
            " VALUES (?, ?, 'ok', ?, ?, ?, ?, NULL, ?, ?, ?, ?, 0)",
            (
                campaign_id,
                index,
                fault_result.label,
                json.dumps(
                    _classification_to_dict(fault_result.classification)
                ),
                json.dumps(_comparisons_to_dict(fault_result.comparisons)),
                json.dumps(fault_result.metrics, default=str),
                wall_s,
                kernel_events,
                _now(),
                attempts,
            ),
        )
        self._conn.commit()

    def record_runs(self, campaign_id, rows):
        """Persist many completed runs in **one** transaction.

        The batched-campaign complement of :meth:`record_run` (which
        commits per row): an ensemble batch classifies a whole group
        of runs at once, and committing them with a single
        ``executemany`` amortises the fsync that otherwise dominates
        many-small-runs campaigns.  Crash durability is per *batch*:
        an interrupted campaign loses at most the rows of the batch in
        flight, which resume re-runs.

        :param rows: iterable of ``(index, fault_result, wall_s,
            kernel_events, attempts)`` tuples.
        """
        payload = [
            (
                campaign_id,
                index,
                fault_result.label,
                json.dumps(
                    _classification_to_dict(fault_result.classification)
                ),
                json.dumps(_comparisons_to_dict(fault_result.comparisons)),
                json.dumps(fault_result.metrics, default=str),
                wall_s,
                kernel_events,
                _now(),
                attempts,
            )
            for index, fault_result, wall_s, kernel_events, attempts in rows
        ]
        if not payload:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO runs (campaign_id, fault_idx, status,"
            " label, classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined)"
            " VALUES (?, ?, 'ok', ?, ?, ?, ?, NULL, ?, ?, ?, ?, 0)",
            payload,
        )
        self._conn.commit()

    def record_error(self, campaign_id, index, message, wall_s=None,
                     status="error", attempts=1, quarantined=False,
                     postmortem=None):
        """Persist one failed faulty run (commits immediately).

        :param status: terminal failure status — one of
            :data:`~repro.campaign.classify.FAILURE_STATUSES`.
        :param attempts: how many times the fault was attempted.
        :param quarantined: True parks the fault: resume skips it
            unless quarantined faults are explicitly re-requested.
        :param postmortem: optional path of the flight-recorder dump
            written for this failure (see :mod:`repro.obs.flightrec`).
        """
        from ..campaign.classify import FAILURE_STATUSES

        if status not in FAILURE_STATUSES:
            raise StoreError(
                f"invalid failure status {status!r};"
                f" expected one of {FAILURE_STATUSES}"
            )
        self._conn.execute(
            "INSERT OR REPLACE INTO runs (campaign_id, fault_idx, status,"
            " label, classification_json, comparisons_json, metrics_json,"
            " error, wall_s, kernel_events, completed_at, attempts,"
            " quarantined, postmortem)"
            " VALUES (?, ?, ?, NULL, NULL, NULL, NULL, ?, ?, NULL, ?, ?, ?,"
            " ?)",
            (campaign_id, index, status, message, wall_s, _now(),
             attempts, 1 if quarantined else 0,
             None if postmortem is None else str(postmortem)),
        )
        self._conn.commit()

    def record_journal(self, campaign_id, path, offset=0):
        """Record where this campaign's journal event stream lives.

        ``offset`` is the byte position at which this execution's
        events start (non-zero when appending to a shared journal
        file), so a consumer can seek straight to them.
        """
        self._conn.execute(
            "UPDATE campaigns SET journal_path = ?, journal_offset = ?,"
            " updated_at = ? WHERE id = ?",
            (str(path), int(offset), _now(), campaign_id),
        )
        self._conn.commit()

    def record_worker(self, campaign_id, pid, state, fault_idx=None,
                      phase=None, exitcode=None):
        """Upsert one supervised worker's liveness row.

        Called by the campaign parent on worker lifecycle events
        (spawn, heartbeat, death); ``campaign status`` and ``campaign
        watch`` render the result as the workers section.
        """
        now = _now()
        cursor = self._conn.execute(
            "UPDATE workers SET state = ?, fault_idx = ?, phase = ?,"
            " exitcode = ?, updated_at = ?"
            " WHERE campaign_id = ? AND pid = ?",
            (state, fault_idx, phase, exitcode, now, campaign_id, pid),
        )
        if cursor.rowcount == 0:
            self._conn.execute(
                "INSERT INTO workers (campaign_id, pid, state, fault_idx,"
                " phase, exitcode, spawned_at, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (campaign_id, pid, state, fault_idx, phase, exitcode,
                 now, now),
            )
        self._conn.commit()

    def record_execution(self, campaign_id, execution, status="complete"):
        """Store the final execution-stats dict and campaign status."""
        self._conn.execute(
            "UPDATE campaigns SET execution_json = ?, status = ?,"
            " updated_at = ? WHERE id = ?",
            (json.dumps(execution), status, _now(), campaign_id),
        )
        self._conn.commit()

    # -- queries ---------------------------------------------------------------

    def campaign_id(self, name=None):
        """Resolve a campaign name to its row id.

        With ``name=None`` the database must hold exactly one
        campaign.

        :raises StoreError: for unknown or ambiguous names.
        """
        if name is None:
            rows = self._conn.execute(
                "SELECT id, name FROM campaigns ORDER BY id"
            ).fetchall()
            if not rows:
                raise StoreError(f"{self.path} holds no campaigns")
            if len(rows) > 1:
                names = ", ".join(row["name"] for row in rows)
                raise StoreError(
                    f"{self.path} holds several campaigns ({names}); "
                    "pick one by name"
                )
            return rows[0]["id"]
        row = self._conn.execute(
            "SELECT id FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign named {name!r} in {self.path}")
        return row["id"]

    def load_spec(self, campaign_id):
        """Rebuild the stored :class:`CampaignSpec` (real fault objects)."""
        row = self._conn.execute(
            "SELECT spec_json FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no campaign with id {campaign_id}")
        return spec_from_dict(json.loads(row["spec_json"]))

    def load_runs(self, campaign_id, faults):
        """Completed runs as ``{index: FaultResult}`` over ``faults``.

        ``faults`` supplies the fault instances the rebuilt
        :class:`FaultResult` objects reference — pass the live spec's
        list when merging into a resumed campaign, or the stored
        spec's when loading standalone.
        """
        from ..campaign.classify import Classification
        from ..campaign.compare import TraceComparison
        from ..campaign.results import FaultResult

        results = {}
        for row in self._conn.execute(
            "SELECT * FROM runs WHERE campaign_id = ? AND status = 'ok'"
            " ORDER BY fault_idx",
            (campaign_id,),
        ):
            index = row["fault_idx"]
            if index >= len(faults):
                raise StoreError(
                    f"run row for fault {index} exceeds fault list"
                )
            classification = Classification(
                **json.loads(row["classification_json"])
            )
            comparisons = {
                name: TraceComparison(name=name, **fields)
                for name, fields in
                json.loads(row["comparisons_json"]).items()
            }
            results[index] = FaultResult(
                fault=faults[index],
                classification=classification,
                comparisons=comparisons,
                metrics=json.loads(row["metrics_json"] or "{}"),
            )
        return results

    def load_errors(self, campaign_id, faults):
        """Failed runs as a list of :class:`CampaignRunError`.

        Mirrors :meth:`load_runs` for the rows that did *not* complete
        — a resumed or loaded campaign accounts for quarantined and
        still-failing faults the same way a live one does.
        """
        from ..campaign.results import CampaignRunError

        errors = []
        for row in self._conn.execute(
            "SELECT * FROM runs WHERE campaign_id = ? AND status != 'ok'"
            " ORDER BY fault_idx",
            (campaign_id,),
        ):
            index = row["fault_idx"]
            if index >= len(faults):
                raise StoreError(
                    f"run row for fault {index} exceeds fault list"
                )
            errors.append(CampaignRunError(
                index=index,
                fault=faults[index],
                message=row["error"] or "",
                status=row["status"],
                attempts=row["attempts"] or 1,
                quarantined=bool(row["quarantined"]),
                postmortem=row["postmortem"],
            ))
        return errors

    def journal_location(self, name=None):
        """The recorded ``(journal_path, journal_offset)`` (or None)."""
        campaign_id = self.campaign_id(name)
        row = self._conn.execute(
            "SELECT journal_path, journal_offset FROM campaigns"
            " WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row is None or row["journal_path"] is None:
            return None
        return row["journal_path"], row["journal_offset"] or 0

    def worker_rows(self, name=None):
        """Supervised worker liveness rows for one campaign.

        Returns a list of dicts (``pid``, ``state``, ``fault_idx``,
        ``phase``, ``exitcode``, ``spawned_at``, ``updated_at``) in
        spawn order; empty for serial campaigns.
        """
        campaign_id = self.campaign_id(name)
        return [
            dict(row)
            for row in self._conn.execute(
                "SELECT pid, state, fault_idx, phase, exitcode,"
                " spawned_at, updated_at FROM workers"
                " WHERE campaign_id = ? ORDER BY spawned_at, pid",
                (campaign_id,),
            )
        ]

    def load_result(self, name=None):
        """Rebuild a full :class:`CampaignResult` without simulating.

        The result carries the stored spec (with reconstructed fault
        instances), every successful run in fault-list order, the
        stored execution stats, and empty golden probes (traces are
        not persisted — only their digests are).
        """
        from ..campaign.results import CampaignResult

        campaign_id = self.campaign_id(name)
        spec = self.load_spec(campaign_id)
        result = CampaignResult(spec)
        runs = self.load_runs(campaign_id, spec.faults)
        for index in sorted(runs):
            result.add(runs[index])
        result.errors = self.load_errors(campaign_id, spec.faults)
        row = self._conn.execute(
            "SELECT execution_json FROM campaigns WHERE id = ?",
            (campaign_id,),
        ).fetchone()
        if row["execution_json"]:
            result.execution = json.loads(row["execution_json"])
        return result

    def status(self):
        """Per-campaign progress summary for every stored campaign.

        Returns a list of dicts with ``name``, ``status``, ``total``,
        ``completed``, ``errors``, ``created_at``, ``updated_at`` and
        ``mode`` (the recorded execution mode — ``cold`` / ``warm`` /
        ``batched``, suffixed with the batch mode when one was
        recorded; ``"?"`` until an execution record lands).
        """
        summaries = []
        for row in self._conn.execute(
            "SELECT id, name, status, created_at, updated_at,"
            " execution_json FROM campaigns ORDER BY id"
        ):
            mode = "?"
            if row["execution_json"]:
                execution = json.loads(row["execution_json"])
                mode = execution.get("mode", "?")
                batch_mode = (execution.get("batch") or {}).get("mode")
                if mode == "batched" and batch_mode:
                    mode = f"batched/{batch_mode}"
            total = self._conn.execute(
                "SELECT COUNT(*) AS n FROM faults WHERE campaign_id = ?",
                (row["id"],),
            ).fetchone()["n"]
            completed = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ?"
                " AND status = 'ok'",
                (row["id"],),
            ).fetchone()["n"]
            errors = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ?"
                " AND status != 'ok'",
                (row["id"],),
            ).fetchone()["n"]
            quarantined = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ?"
                " AND quarantined != 0",
                (row["id"],),
            ).fetchone()["n"]
            summaries.append(
                {
                    "name": row["name"],
                    "status": row["status"],
                    "mode": mode,
                    "total": total,
                    "completed": completed,
                    "errors": errors,
                    "quarantined": quarantined,
                    "created_at": row["created_at"],
                    "updated_at": row["updated_at"],
                }
            )
        return summaries

    def run_status_counts(self, name=None):
        """Terminal run status -> row count, straight from SQL.

        ``ok`` counts completed runs; failure statuses (``timeout``/
        ``diverged``/``crashed``/``error``) count their terminal rows.
        The live view (``campaign watch``) polls this.
        """
        campaign_id = self.campaign_id(name)
        return {
            row["status"]: row["n"]
            for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM runs"
                " WHERE campaign_id = ? GROUP BY status ORDER BY status",
                (campaign_id,),
            )
        }

    def class_counts(self, name=None):
        """Classification label -> run count, straight from SQL."""
        campaign_id = self.campaign_id(name)
        return {
            row["label"]: row["n"]
            for row in self._conn.execute(
                "SELECT label, COUNT(*) AS n FROM runs"
                " WHERE campaign_id = ? AND status = 'ok'"
                " GROUP BY label ORDER BY label",
                (campaign_id,),
            )
        }
