"""Statistical treatment of sampled campaigns.

When the exhaustive fault space (every flip-flop x every cycle, or
every node x every instant x every pulse shape) is too large, campaigns
sample it; these helpers put confidence intervals on the estimated
error rates and size the sample for a target precision.
"""

from __future__ import annotations

import math

from scipy.stats import beta, norm

from ..core.errors import CampaignError


def wilson_interval(successes, trials, confidence=0.95):
    """Wilson score interval for a binomial proportion.

    Well-behaved near 0 and 1 — important because good designs have
    failure rates near 0.

    :returns: ``(low, high)``.
    """
    if trials <= 0:
        raise CampaignError("trials must be positive")
    if not 0 <= successes <= trials:
        raise CampaignError("successes must be within [0, trials]")
    # float() casts: norm.ppf returns a numpy scalar, which would
    # otherwise leak into JSON-serialized execution records and wire
    # frames.
    z = float(norm.ppf(0.5 + confidence / 2.0))
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    # Pin the degenerate edges exactly: at 0/n and n/n the closed form
    # touches the boundary in real arithmetic but can round one ulp
    # inside it, leaving the point estimate outside its own interval.
    low = 0.0 if successes == 0 else float(max(0.0, centre - margin))
    high = 1.0 if successes == trials else float(min(1.0, centre + margin))
    return low, high


def clopper_pearson_interval(successes, trials, confidence=0.95):
    """Exact (conservative) Clopper–Pearson binomial interval."""
    if trials <= 0:
        raise CampaignError("trials must be positive")
    if not 0 <= successes <= trials:
        raise CampaignError("successes must be within [0, trials]")
    alpha = 1.0 - confidence
    low = 0.0 if successes == 0 else float(
        beta.ppf(alpha / 2, successes, trials - successes + 1)
    )
    high = 1.0 if successes == trials else float(
        beta.ppf(1 - alpha / 2, successes + 1, trials - successes)
    )
    return low, high


def safe_interval(successes, trials, confidence=0.95, method="wilson"):
    """Interval that degrades gracefully when there is no data yet.

    Live early-stopping loops evaluate the running interval after
    every chunk of runs, including before the first one lands; with
    ``trials == 0`` this returns the vacuous ``(0.0, 1.0)`` instead of
    raising :class:`~repro.core.errors.CampaignError`, so callers
    don't special-case the first draw.

    :param method: ``"wilson"`` (default) or ``"clopper-pearson"``.
    :returns: ``(low, high)``.
    """
    if method not in ("wilson", "clopper-pearson"):
        raise CampaignError(f"unknown interval method {method!r}")
    if trials <= 0:
        return 0.0, 1.0
    fn = wilson_interval if method == "wilson" else clopper_pearson_interval
    return fn(successes, trials, confidence)


def interval_half_width(successes, trials, confidence=0.95):
    """Half-width of the Wilson interval, ``0.5`` with no trials.

    The quantity the early-stopping rule compares against the
    requested margin: a stratum (or the pooled estimate) has converged
    when this drops to or below the margin.
    """
    low, high = safe_interval(successes, trials, confidence)
    return (high - low) / 2.0


def required_sample_size(margin, confidence=0.95, p_expected=0.5):
    """Runs needed to estimate a proportion within ``±margin``.

    Uses the normal approximation ``n = z^2 p(1-p) / margin^2``; with
    the default ``p_expected = 0.5`` this is the worst case.
    """
    if not 0 < margin < 1:
        raise CampaignError("margin must be in (0, 1)")
    z = norm.ppf(0.5 + confidence / 2.0)
    n = z * z * p_expected * (1.0 - p_expected) / (margin * margin)
    return int(math.ceil(n))


def estimate_error_rate(result, confidence=0.95):
    """Error-rate estimate with a Wilson interval for a campaign.

    :param result: a :class:`repro.campaign.results.CampaignResult`.
    :returns: ``(point_estimate, (low, high))``.
    """
    trials = len(result)
    if trials == 0:
        raise CampaignError("campaign has no runs")
    errors = sum(1 for run in result if run.classification.is_error())
    return errors / trials, wilson_interval(errors, trials, confidence)
