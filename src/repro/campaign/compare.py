"""Golden-vs-faulty trace comparison.

The "results (traces) analysis" box of Figures 2 and 3: each monitored
trace of a faulty run is compared against the same trace of the golden
(fault-free) run.  Digital traces must match exactly; analog traces are
compared with an amplitude *tolerance*, "in order to avoid non
significant error identifications" (Section 4.1) — without it, solver
ripple would flag every analog node as erroneous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import MeasurementError
from ..core.trace import LINEAR, STEP


@dataclass
class TraceComparison:
    """Outcome of comparing one faulty trace against its golden twin.

    :ivar name: trace name.
    :ivar match: True when no significant difference was found.
    :ivar first_divergence: time of the first difference (None when
        matching).
    :ivar last_divergence: time of the last difference.
    :ivar mismatch_time: total time spent outside tolerance.
    :ivar max_deviation: worst absolute difference (analog) or 1.0
        for any digital mismatch.
    :ivar final_match: True when the traces agree at the end of the
        run (used for latent-error detection).
    """

    name: str
    match: bool
    first_divergence: float | None
    last_divergence: float | None
    mismatch_time: float
    max_deviation: float
    final_match: bool

    @property
    def diverged(self):
        """True when any significant difference exists."""
        return not self.match


def _window_grid(merged, t0, t1):
    """Clip a sorted-unique time array to ``[t0, t1]`` with endpoints."""
    grid = merged[(merged >= t0) & (merged <= t1)]
    if len(grid) == 0:
        # No activity inside the window on either side: both traces
        # hold their pre-window values, so comparing at the window
        # endpoints is exact.
        return np.array([t0, t1])
    # Always include the endpoints so held values entering/leaving the
    # window participate in the comparison.
    if grid[0] > t0:
        grid = np.concatenate(([t0], grid))
    if grid[-1] < t1:
        grid = np.concatenate((grid, [t1]))
    return grid


class ComparisonGridCache:
    """Reuses comparison grids across the faults of one campaign.

    Warm-started (and batched) campaigns pre-apply the union of every
    fault's solver refinement windows, so analog traces of every run —
    golden and faulty — sample on the *same* time grid.  The
    ``np.union1d`` of golden and faulty times then collapses to the
    golden times themselves; this cache detects that case per trace
    (one ``np.array_equal`` instead of a sort-merge) and builds the
    clipped grid once per ``(trace, window)`` instead of once per
    fault.  Traces whose sample times differ (digital traces with
    shifted edges, diverged analog runs) simply miss the cache and
    take the exact union path — results are identical either way.
    """

    def __init__(self):
        self._grids = {}

    def grid(self, name, golden, faulty, t0, t1):
        """The shared-grid fast path, or ``None`` on time mismatch."""
        gt = golden.times
        ft = faulty.times
        if gt.shape != ft.shape or not np.array_equal(gt, ft):
            return None
        key = (name, t0, t1)
        grid = self._grids.get(key)
        if grid is None:
            grid = self._grids[key] = _window_grid(np.unique(gt), t0, t1)
        return grid


def _comparison_grid(golden, faulty, t0, t1, grid_cache=None, name=None):
    if grid_cache is not None:
        grid = grid_cache.grid(name, golden, faulty, t0, t1)
        if grid is not None:
            return grid
    merged = np.union1d(golden.times, faulty.times)
    return _window_grid(merged, t0, t1)


def compare_digital_edges(golden, faulty, time_tolerance, t0=None, t1=None):
    """Compare two event-sampled traces with an *edge-time* tolerance.

    A clock regenerated through an analog loop never reproduces the
    golden edge times exactly — any disturbance, however negligible,
    shifts edges by picoseconds.  This comparison therefore declares a
    match when both traces carry the same value *sequence* and every
    change time agrees within ``time_tolerance``; an extra or missing
    edge, a different value, or a shift beyond the tolerance is a
    divergence.  This is the digital-clock analogue of the paper's
    analog amplitude tolerance.

    :returns: a :class:`TraceComparison`.
    """
    start = max(golden.t_start, faulty.t_start) if t0 is None else t0
    # Event-sampled traces hold their last value, so a run whose fault
    # froze a signal simply stops producing samples; the comparison
    # must still cover the full span or the freeze goes unnoticed.
    end = max(golden.t_end, faulty.t_end) if t1 is None else t1
    if end < start:
        raise MeasurementError(
            f"comparison window empty for trace {golden.name!r}"
        )

    def events(trace):
        result = [(start, trace.at(start))]
        for t, v in trace:
            if t <= start or t > end:
                continue
            fv = trace.resample([t])[0]
            if result and _same(result[-1][1], fv):
                continue
            result.append((t, fv))
        return result

    def _same(a, b):
        both_nan = np.isnan(a) and np.isnan(b)
        return both_nan or a == b

    ev_g = events(golden)
    ev_f = events(faulty)
    first = None
    worst_shift = 0.0
    for (tg, vg), (tf, vf) in zip(ev_g, ev_f):
        if not _same(vg, vf) or abs(tg - tf) > time_tolerance:
            first = min(tg, tf)
            break
        worst_shift = max(worst_shift, abs(tg - tf))
    if first is None and len(ev_g) != len(ev_f):
        longer = ev_g if len(ev_g) > len(ev_f) else ev_f
        first = longer[min(len(ev_g), len(ev_f))][0]

    if first is None:
        return TraceComparison(
            name=golden.name,
            match=True,
            first_divergence=None,
            last_divergence=None,
            mismatch_time=0.0,
            max_deviation=worst_shift,
            final_match=True,
        )
    # Fall back to the exact comparison for the divergence details,
    # but anchored at the first out-of-tolerance event.
    exact = compare_traces(golden, faulty, tolerance=0.0, t0=start, t1=end)
    return TraceComparison(
        name=golden.name,
        match=False,
        first_divergence=first,
        last_divergence=exact.last_divergence if exact.diverged else first,
        mismatch_time=exact.mismatch_time,
        max_deviation=exact.max_deviation,
        final_match=_same(golden.resample([end])[0], faulty.resample([end])[0]),
    )


def compare_traces(golden, faulty, tolerance=0.0, t0=None, t1=None,
                   grid_cache=None):
    """Compare two traces of the same probe.

    :param tolerance: absolute amplitude tolerance; 0 for digital
        traces (exact match), a voltage band for analog traces.
    :param t0, t1: comparison window (defaults to the overlap).
    :param grid_cache: optional :class:`ComparisonGridCache` shared
        across faults; hit when both traces carry identical sample
        times.
    :returns: a :class:`TraceComparison`.
    """
    start = max(golden.t_start, faulty.t_start) if t0 is None else t0
    # Use the union of the spans: traces extend by holding their last
    # value, and a faulty run that froze a signal early must still be
    # compared against the golden activity after the freeze.
    end = max(golden.t_end, faulty.t_end) if t1 is None else t1
    if end < start:
        raise MeasurementError(
            f"comparison window empty for trace {golden.name!r}"
        )
    grid = _comparison_grid(
        golden, faulty, start, end, grid_cache=grid_cache, name=golden.name
    )
    g = golden.resample(grid)
    f = faulty.resample(grid)
    # NaN (undefined logic) compares equal to NaN and different from
    # any number: an X where the golden run had a value is an error.
    both_nan = np.isnan(g) & np.isnan(f)
    deviation = np.abs(g - f)
    deviation[both_nan] = 0.0
    deviation[np.isnan(deviation)] = np.inf
    outside = deviation > tolerance

    if not outside.any():
        return TraceComparison(
            name=golden.name,
            match=True,
            first_divergence=None,
            last_divergence=None,
            mismatch_time=0.0,
            max_deviation=float(np.max(deviation[np.isfinite(deviation)], initial=0.0)),
            final_match=True,
        )

    bad_indices = np.nonzero(outside)[0]
    first = float(grid[bad_indices[0]])
    last = float(grid[bad_indices[-1]])
    # Total mismatch time: sum of inter-sample gaps that are outside.
    gaps = np.diff(grid)
    bad_gap = outside[:-1] | outside[1:]
    mismatch_time = float(np.sum(gaps[bad_gap])) if len(gaps) else 0.0
    finite = deviation[np.isfinite(deviation)]
    max_dev = float(np.max(finite)) if len(finite) else float("inf")
    if np.isinf(deviation[bad_indices]).any():
        max_dev = float("inf")
    final_match = not outside[-1]
    return TraceComparison(
        name=golden.name,
        match=False,
        first_divergence=first,
        last_divergence=last,
        mismatch_time=mismatch_time,
        max_deviation=max_dev,
        final_match=final_match,
    )


def default_tolerance(trace, analog_tolerance=0.01):
    """Tolerance for a trace: 0 for digital, a band for analog."""
    return analog_tolerance if trace.interp == LINEAR else 0.0


def compare_probe_sets(golden_probes, faulty_probes, tolerances=None,
                       analog_tolerance=0.01, time_tolerances=None,
                       t0=None, t1=None, grid_cache=None):
    """Compare every same-named probe pair.

    :param tolerances: optional per-name amplitude overrides.
    :param time_tolerances: optional per-name *edge-time* tolerances
        (seconds) for event-sampled traces; such probes are compared
        with :func:`compare_digital_edges` instead of exact matching.
    :param grid_cache: optional :class:`ComparisonGridCache` the
        campaign runner shares across its faults.
    :returns: dict name -> :class:`TraceComparison`.
    :raises MeasurementError: when the probe sets differ.
    """
    if set(golden_probes) != set(faulty_probes):
        missing = set(golden_probes) ^ set(faulty_probes)
        raise MeasurementError(
            f"golden and faulty probe sets differ: {sorted(missing)}"
        )
    tolerances = tolerances or {}
    time_tolerances = time_tolerances or {}
    result = {}
    for name, golden in golden_probes.items():
        if name in time_tolerances and golden.interp == STEP:
            result[name] = compare_digital_edges(
                golden, faulty_probes[name],
                time_tolerance=time_tolerances[name], t0=t0, t1=t1,
            )
            continue
        tol = tolerances.get(
            name, default_tolerance(golden, analog_tolerance)
        )
        result[name] = compare_traces(
            golden, faulty_probes[name], tolerance=tol, t0=t0, t1=t1,
            grid_cache=grid_cache,
        )
    return result
