"""Campaign result containers and aggregation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.errors import CampaignError
from .classify import CLASSES, RUN_ERROR, SILENT, Classification


@dataclass
class CampaignRunError:
    """One faulty run that did not complete.

    Collected (rather than raised) when a campaign executes with
    ``on_error="collect"``; the campaign continues, and the failed
    fault is re-run on a store-backed resume (quarantined faults only
    when explicitly requested).

    :ivar index: position of the fault in the campaign's fault list.
    :ivar fault: the fault-model instance whose run failed.
    :ivar message: ``"ExceptionType: message"`` rendering of the error.
    :ivar status: terminal run status — one of
        :data:`~repro.campaign.classify.FAILURE_STATUSES`
        (``timeout``/``diverged``/``crashed``/``error``).
    :ivar attempts: how many times the run was attempted (1 = no
        retries).
    :ivar quarantined: True when the retry policy gave up on the
        fault; resume skips it unless asked to retry quarantined runs.
    :ivar postmortem: path of the flight-recorder post-mortem dumped
        for this failure, or None when none was written.
    """

    index: int
    fault: object
    message: str
    status: str = RUN_ERROR
    attempts: int = 1
    quarantined: bool = False
    postmortem: str = None

    def describe(self):
        """One line: fault -> status and error."""
        suffix = f" ({self.attempts} attempts)" if self.attempts > 1 else ""
        return (
            f"{self.fault.describe():60s} !! "
            f"[{self.status}] {self.message}{suffix}"
        )


@dataclass
class FaultResult:
    """Outcome of one faulty run.

    :ivar fault: the injected fault-model instance.
    :ivar classification: the :class:`Classification`.
    :ivar comparisons: per-trace :class:`TraceComparison` map.
    :ivar metrics: free-form per-run metrics (e.g. perturbed cycles).
    """

    fault: object
    classification: Classification
    comparisons: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def label(self):
        """Classification label shortcut."""
        return self.classification.label

    def describe(self):
        """One line: fault -> class."""
        return f"{self.fault.describe():60s} -> {self.label}"


class CampaignResult:
    """All runs of one campaign plus aggregate views.

    :param spec: the :class:`CampaignSpec` that was executed.
    :param golden_probes: probe traces of the golden run.

    :ivar execution: how the campaign was executed — a dict with keys
        ``mode`` (``"cold"``/``"warm"``), ``workers``, ``checkpoints``,
        ``golden_events``, ``fault_events``, ``kernel_events`` (the
        total), ``wall_s``, ``completed``, ``skipped`` (store-resumed
        runs), ``errors``, and — warm only — ``warm_hits`` /
        ``warm_misses`` (restores from a t>0 checkpoint vs full
        replays from t=0).  Filled in by :meth:`CampaignRunner.run`;
        ``None`` for results assembled by hand.
    :ivar errors: list of :class:`CampaignRunError` for faulty runs
        that raised (``on_error="collect"`` executions only).
    """

    def __init__(self, spec, golden_probes=None):
        self.spec = spec
        self.golden_probes = golden_probes or {}
        self.runs = []
        self.execution = None
        self.errors = []

    def add(self, result):
        """Record one :class:`FaultResult`."""
        self.runs.append(result)

    def __len__(self):
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    # -- aggregation ------------------------------------------------------

    def counts(self):
        """Mapping class label -> number of runs (all classes present)."""
        counter = Counter(run.label for run in self.runs)
        return {label: counter.get(label, 0) for label in CLASSES}

    def fractions(self):
        """Mapping class label -> fraction of runs."""
        if not self.runs:
            raise CampaignError("no runs recorded")
        total = len(self.runs)
        return {label: n / total for label, n in self.counts().items()}

    def error_rate(self):
        """Fraction of faults that were *not* silent."""
        if not self.runs:
            raise CampaignError("no runs recorded")
        errors = sum(1 for run in self.runs if run.label != SILENT)
        return errors / len(self.runs)

    def by_class(self, label):
        """All runs with a given classification label."""
        return [run for run in self.runs if run.label == label]

    def status_counts(self):
        """Mapping terminal run status -> count, completed runs included.

        Completed runs count under ``"ok"``; failed runs count under
        their terminal status (``timeout``/``diverged``/``crashed``/
        ``error``), with quarantined ones *additionally* tallied under
        ``"quarantined"``.  A supervised campaign therefore satisfies
        ``counts["ok"] + sum(failure statuses) == len(spec.faults)``.
        """
        from .classify import RUN_OK, RUN_QUARANTINED

        counts = Counter()
        counts[RUN_OK] = len(self.runs)
        for err in self.errors:
            counts[err.status] += 1
            if err.quarantined:
                counts[RUN_QUARANTINED] += 1
        return dict(counts)

    def by_target(self):
        """Mapping injection-target description -> class counter.

        Targets are derived from each fault's attributes: bit-flip
        state names, SET/stuck-at signal names, analog node names.
        """
        table = {}
        for run in self.runs:
            target = _target_of(run.fault)
            table.setdefault(target, Counter())[run.label] += 1
        return table

    def worst_runs(self, n=5):
        """The ``n`` most severe runs (failures first)."""
        ranked = sorted(
            self.runs,
            key=lambda run: (
                -run.classification.severity,
                run.classification.first_output_divergence or float("inf"),
            ),
        )
        return ranked[:n]


def _target_of(fault):
    if hasattr(fault, "node"):
        return fault.node
    if hasattr(fault, "targets"):
        names = fault.targets()
        return names[0] if len(names) == 1 else "+".join(names)
    if hasattr(fault, "target"):
        return fault.target
    if hasattr(fault, "component"):
        return f"{fault.component}.{fault.attribute}"
    return "<unknown>"
