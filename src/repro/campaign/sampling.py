"""Confidence-bounded adaptive sampling of fault dictionaries.

Exhaustive campaigns enumerate every fault; at production scale the
question a campaign answers — "what is the failure rate, overall and
per injection site?" — needs only a *sample*, provided the sample is
stratified (so rare sites and lock phases are not starved) and the
campaign knows when to stop.  :class:`StratifiedSampler` implements
that loop:

- the fault dictionary is partitioned into **strata** (injection site
  x schedule-time phase by default, configurable via
  :data:`STRATA_MODES` or a callable);
- draws come from one seeded ``numpy`` PCG64 generator: each stratum
  gets a fixed permutation of its faults, so the entire draw sequence
  is a pure function of ``(fault list, strata mode, seed)``;
- draws are organised in **rounds** sized by
  :func:`~repro.campaign.stats.required_sample_size` refined from the
  running pooled estimate (growth-capped doubling), split into
  fixed-size **chunks**;
- after every chunk the sampler updates per-stratum and pooled Wilson
  intervals and stops a stratum — or the whole campaign — the moment
  the interval half-width drops to the requested margin.

Determinism and resume
----------------------

Round contents depend only on the seed and the outcomes of *fully
processed* prior chunks, and convergence is evaluated at chunk
boundaries in chunk order.  Two consequences:

- a resumed campaign replays stored rows through the same sampler
  (``stored=``) and continues the identical draw sequence — no cursor
  needs persisting beyond the seed/margin/confidence/strata/chunk
  configuration (store schema v5);
- a distributed coordinator that executes a round's chunks as
  concurrent shards but merges and evaluates them strictly in chunk
  order produces a store row-identical to a single-host run with the
  same chunk size.

The pooled estimate is the population-weighted stratified estimator
``p = sum(w_h * p_h)``; its interval is a Wilson interval at the
effective sample size ``p(1-p) / Var(p)``, which reduces exactly to
the plain Wilson interval when sampling is proportional (and always
when there is a single stratum).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import norm

from ..core.errors import CampaignError
from .classify import RUN_OK, SILENT
from .faultlist import batch_key, digital_batch_key
from .results import _target_of
from .stats import (
    interval_half_width,
    required_sample_size,
    safe_interval,
)

#: Default number of draws per chunk — convergence is evaluated at
#: every chunk boundary, and in distributed mode one chunk is one
#: shard (matches ``repro.dist.shards.DEFAULT_SHARD_SIZE``).
DEFAULT_CHUNK = 25

#: Built-in stratification modes.
STRATA_MODES = ("none", "site", "phase", "site-phase")

#: Number of schedule-time buckets for phase stratification.
DEFAULT_PHASE_BINS = 4


def _schedule_time(fault):
    """Injection instant used for phase stratification."""
    for attr in ("time", "t_start"):
        value = getattr(fault, attr, None)
        if value is not None:
            return float(value)
    return 0.0


def _site_of(fault):
    """Injection-site label: the batch key when one exists, else the
    target description used by per-target reports."""
    key = digital_batch_key(fault)
    if key is not None:
        return str(key)
    key = batch_key(fault)
    if key is not None:
        return str(key)
    return str(_target_of(fault))


def _phase_labels(faults, bins):
    """Deterministic equal-count phase buckets over schedule times.

    Distinct injection instants are sorted and split into up to
    ``bins`` consecutive groups of near-equal size, so campaigns that
    sweep a lock transient get before/during/after strata without any
    knowledge of the DUT.
    """
    times = [_schedule_time(fault) for fault in faults]
    distinct = sorted(set(times))
    if len(distinct) <= 1 or bins <= 1:
        return ["p0"] * len(faults)
    bins = min(bins, len(distinct))
    group = {
        t: pos * bins // len(distinct) for pos, t in enumerate(distinct)
    }
    return [f"p{group[t]}" for t in times]


def stratify(faults, mode="site-phase", phase_bins=DEFAULT_PHASE_BINS):
    """Stratum label per fault.

    :param mode: one of :data:`STRATA_MODES`, or a callable
        ``fault -> label`` for custom stratifications.
    :returns: list of string labels, one per fault.
    """
    if callable(mode):
        return [str(mode(fault)) for fault in faults]
    if mode not in STRATA_MODES:
        raise CampaignError(
            f"unknown strata mode {mode!r} (expected one of {STRATA_MODES} "
            "or a callable)"
        )
    if mode == "none":
        return ["all"] * len(faults)
    if mode == "site":
        return [_site_of(fault) for fault in faults]
    phases = _phase_labels(faults, phase_bins)
    if mode == "phase":
        return phases
    sites = [_site_of(fault) for fault in faults]
    return [f"{site}/{phase}" for site, phase in zip(sites, phases)]


def row_outcome(row):
    """Sampler outcome of one store row.

    ``True`` = error (non-silent classification), ``False`` = silent,
    ``None`` = the run failed (timeout/diverged/crashed/error) and is
    excluded from estimate trials.
    """
    if row.get("status") != RUN_OK:
        return None
    return row.get("label") != SILENT


def stored_outcomes(rows):
    """Map ``fault index -> outcome`` from store rows, for replay.

    Skipped rows (written after a previous convergence) are excluded:
    they carry no simulated outcome, and replaying the real rows
    re-derives the same convergence point.
    """
    outcomes = {}
    for row in rows:
        if row.get("status") == "skipped":
            continue
        outcomes[row["idx"]] = row_outcome(row)
    return outcomes


@dataclass
class SampleChunk:
    """One convergence-evaluation unit of draws.

    :ivar ident: sequential chunk id (doubles as the shard id in
        distributed mode).
    :ivar round_index: which adaptive round the chunk belongs to.
    :ivar indices: global fault indices drawn, in draw order.
    :ivar pending: the subset still needing simulation (indices whose
        outcome was not replayed from the store).
    """

    ident: int
    round_index: int
    indices: tuple
    pending: tuple = ()


@dataclass
class _Stratum:
    label: str
    indices: tuple
    order: list = field(default_factory=list)
    cursor: int = 0
    trials: int = 0
    errors: int = 0
    failed: int = 0
    converged: bool = False

    @property
    def population(self):
        return len(self.indices)

    @property
    def exhausted(self):
        return self.cursor >= len(self.order)

    @property
    def active(self):
        return not self.converged and not self.exhausted

    @property
    def estimate(self):
        return self.errors / self.trials if self.trials else 0.0


class StratifiedSampler:
    """Stratified adaptive sampler with Wilson early stopping.

    :param faults: the campaign's fault list (the population).
    :param margin: stop when the pooled Wilson half-width drops to
        this value; individual strata stop drawing when *their*
        half-width does.
    :param confidence: interval confidence level (default 0.95).
    :param seed: explicit seed of the draw sequence; two samplers with
        the same ``(faults, strata, seed)`` draw identically.
    :param strata: stratification mode (see :func:`stratify`).
    :param chunk: draws per chunk — the convergence evaluation grain.
    :param stored: optional ``index -> outcome`` map of already
        simulated rows (see :func:`stored_outcomes`); replayed in draw
        order as chunks are handed out, so ``--resume`` continues the
        same sequence.
    :param phase_bins: schedule-time buckets for phase strata.
    """

    def __init__(
        self,
        faults,
        *,
        margin,
        confidence=0.95,
        seed=0,
        strata="site-phase",
        chunk=DEFAULT_CHUNK,
        stored=None,
        phase_bins=DEFAULT_PHASE_BINS,
    ):
        if not faults:
            raise CampaignError("cannot sample an empty fault list")
        if not 0 < margin < 1:
            raise CampaignError("margin must be in (0, 1)")
        if not 0 < confidence < 1:
            raise CampaignError("confidence must be in (0, 1)")
        if chunk < 1:
            raise CampaignError("chunk must be >= 1")
        self.margin = float(margin)
        self.confidence = float(confidence)
        self.seed = int(seed)
        self.chunk = int(chunk)
        self.strata_mode = strata if isinstance(strata, str) else "custom"
        self.population = len(faults)
        self._labels = stratify(faults, strata, phase_bins)
        self._stored = dict(stored or {})
        self._recorded = {}
        self._z = float(norm.ppf(0.5 + self.confidence / 2.0))

        rng = np.random.Generator(np.random.PCG64(self.seed))
        by_label = {}
        for index, label in enumerate(self._labels):
            by_label.setdefault(label, []).append(index)
        self._strata = {}
        for label in sorted(by_label):
            indices = tuple(by_label[label])
            perm = rng.permutation(len(indices))
            self._strata[label] = _Stratum(
                label=label,
                indices=indices,
                order=[indices[j] for j in perm],
            )

        self._queue = deque()
        self._outstanding = {}
        self._rounds = 0
        self._chunks_issued = 0
        self._last_budget = 0
        self.stopped = False
        self.reason = None

    # -- bookkeeping -------------------------------------------------------

    @property
    def finished(self):
        """No further chunks will ever be produced."""
        return self.stopped

    @property
    def trials(self):
        return sum(s.trials for s in self._strata.values())

    @property
    def errors(self):
        return sum(s.errors for s in self._strata.values())

    @property
    def failed(self):
        return sum(s.failed for s in self._strata.values())

    @property
    def simulated(self):
        """Faults with a recorded (simulated or failed) outcome."""
        return len(self._recorded)

    @property
    def rounds(self):
        return self._rounds

    def stratum_of(self, index):
        """Stratum label of fault ``index``."""
        return self._labels[index]

    def record(self, index, outcome):
        """Record one run outcome.

        :param outcome: ``True`` = error, ``False`` = silent,
            ``None`` = the run failed (excluded from trials).
        """
        if index in self._recorded:
            return
        self._recorded[index] = outcome
        stratum = self._strata[self._labels[index]]
        if outcome is None:
            stratum.failed += 1
        else:
            stratum.trials += 1
            if outcome:
                stratum.errors += 1

    # -- estimates ---------------------------------------------------------

    def stratum_interval(self, label):
        """``(estimate, (low, high))`` of one stratum."""
        s = self._strata[label]
        return s.estimate, safe_interval(
            s.errors, s.trials, self.confidence
        )

    def pooled(self):
        """Pooled ``(estimate, (low, high))`` across strata.

        Population-weighted stratified estimator with a Wilson
        interval at the effective sample size.  While any stratum
        that could still be drawn has no trials, the interval is the
        vacuous ``(0.0, 1.0)``; strata exhausted without a single
        successful trial are excluded (and flagged starved).
        """
        strata = list(self._strata.values())
        sampled = [s for s in strata if s.trials > 0]
        blocking = any(
            s.trials == 0 and not s.exhausted for s in strata
        )
        if not sampled:
            return 0.0, (0.0, 1.0)
        weight_pop = sum(s.population for s in sampled)
        estimate = sum(
            s.population * s.estimate for s in sampled
        ) / weight_pop
        if blocking:
            return estimate, (0.0, 1.0)
        variance = sum(
            (s.population / weight_pop) ** 2
            * s.estimate * (1.0 - s.estimate) / s.trials
            for s in sampled
        )
        if variance <= 0.0:
            n_eff = float(sum(s.trials for s in sampled))
        else:
            n_eff = estimate * (1.0 - estimate) / variance
            n_eff = max(n_eff, 1.0)
        low, high = safe_interval(
            estimate * n_eff, n_eff, self.confidence
        )
        # The weighted estimate and the effective-n interval are
        # computed separately; rounding must not leave the estimate
        # outside its own interval.
        return estimate, (min(low, estimate), max(high, estimate))

    def half_width(self):
        """Current pooled interval half-width."""
        _, (low, high) = self.pooled()
        return (high - low) / 2.0

    # -- drawing -----------------------------------------------------------

    def _zero_rate_needed(self):
        """Trials for a zero-error stratum to converge (Wilson 0/n)."""
        z2 = self._z * self._z
        return int(math.ceil(z2 / (2.0 * self.margin) - z2)) + 1

    def _round_budget(self):
        if self._rounds == 0:
            return max(self.chunk, 4 * self.chunk)
        trials = self.trials
        p = self.errors / trials if trials else 0.5
        needed = self._zero_rate_needed()
        if p > 0.0:
            needed = max(
                needed,
                required_sample_size(
                    self.margin, self.confidence, p_expected=p
                ),
            )
        budget = needed - trials
        budget = min(budget, 2 * self._last_budget)
        return max(budget, self.chunk)

    def _plan_round(self):
        active = [
            s for s in self._strata.values() if s.active
        ]
        if not active:
            return
        budget = self._round_budget()
        total_pop = sum(s.population for s in active)
        draws = []
        for s in sorted(active, key=lambda s: s.label):
            share = max(1, budget * s.population // total_pop)
            take = min(share, len(s.order) - s.cursor)
            draws.extend(s.order[s.cursor:s.cursor + take])
            s.cursor += take
        if not draws:
            return
        self._last_budget = len(draws)
        for start in range(0, len(draws), self.chunk):
            self._queue.append(SampleChunk(
                ident=self._chunks_issued,
                round_index=self._rounds,
                indices=tuple(draws[start:start + self.chunk]),
            ))
            self._chunks_issued += 1
        self._rounds += 1

    def next_chunk(self):
        """The next chunk to simulate, or None.

        None means either the sampler is :attr:`finished`, or — in
        concurrent (distributed) use — the current round still has
        chunks in flight and the next round cannot be planned until
        they finish.  Stored outcomes are replayed into the chunk as
        it is handed out; :attr:`SampleChunk.pending` lists what is
        left to simulate.
        """
        if self.stopped:
            return None
        if not self._queue:
            if self._outstanding:
                return None
            self._plan_round()
            if not self._queue:
                self._finish("exhausted")
                return None
        chunk = self._queue.popleft()
        pending = []
        for index in chunk.indices:
            if index in self._stored:
                self.record(index, self._stored.pop(index))
            else:
                pending.append(index)
        chunk.pending = tuple(pending)
        self._outstanding[chunk.ident] = chunk
        return chunk

    def finish_chunk(self, chunk):
        """Evaluate convergence after a chunk's outcomes are recorded.

        Must be called in chunk order (chunk ``k`` only after chunks
        ``< k``); raises if any of the chunk's outcomes is missing.
        Returns True when the campaign has stopped.
        """
        if chunk.ident not in self._outstanding:
            raise CampaignError(
                f"chunk {chunk.ident} is not outstanding"
            )
        if self._outstanding and min(self._outstanding) != chunk.ident:
            raise CampaignError(
                f"chunk {chunk.ident} finished out of order "
                f"(chunk {min(self._outstanding)} still open)"
            )
        missing = [i for i in chunk.indices if i not in self._recorded]
        if missing:
            raise CampaignError(
                f"chunk {chunk.ident} finished with unrecorded "
                f"outcomes: {missing[:5]}"
            )
        del self._outstanding[chunk.ident]
        for s in self._strata.values():
            if not s.converged and s.trials > 0:
                hw = interval_half_width(
                    s.errors, s.trials, self.confidence
                )
                if hw <= self.margin:
                    s.converged = True
        if self.half_width() <= self.margin:
            self._finish("converged")
        elif not self._queue and not self._outstanding:
            # Round complete without convergence; if nothing is left
            # to draw anywhere, the population is exhausted.
            if not any(s.active for s in self._strata.values()):
                self._finish("exhausted")
        return self.stopped

    def _finish(self, reason):
        self.stopped = True
        self.reason = reason
        self._queue.clear()
        self._outstanding.clear()

    def abandon(self, chunk):
        """Drop an in-flight chunk after the campaign stopped.

        Used by the distributed coordinator for chunks whose leases
        were revoked by convergence; their rows are never merged and
        their faults count as skipped.
        """
        self._outstanding.pop(chunk.ident, None)

    # -- results -----------------------------------------------------------

    def skipped_indices(self):
        """Faults never simulated, in index order.

        Meaningful once :attr:`finished`: these are the faults early
        stopping saved, to be marked ``skipped`` in the store.
        """
        return [
            index for index in range(self.population)
            if index not in self._recorded
        ]

    @property
    def converged(self):
        return self.reason == "converged"

    def summary(self):
        """Execution-record / report summary of the sampling run."""
        estimate, (low, high) = self.pooled()
        strata = []
        for label in sorted(self._strata):
            s = self._strata[label]
            s_est, (s_low, s_high) = self.stratum_interval(label)
            # "Exhausted" here means every fault of the stratum was
            # actually simulated (not merely drawn — an early stop
            # discards drawn-but-unsimulated faults); "starved" flags
            # the bad case: population spent, interval still wider
            # than the margin.
            spent = (s.trials + s.failed) >= s.population
            strata.append({
                "stratum": label,
                "population": s.population,
                "trials": s.trials,
                "errors": s.errors,
                "failed": s.failed,
                "estimate": s_est,
                "low": s_low,
                "high": s_high,
                "converged": s.converged,
                "exhausted": spent,
                "starved": spent and not s.converged,
            })
        return {
            "seed": self.seed,
            "margin": self.margin,
            "confidence": self.confidence,
            "strata_mode": self.strata_mode,
            "chunk": self.chunk,
            "population": self.population,
            "simulated": self.simulated,
            "skipped": self.population - self.simulated,
            "trials": self.trials,
            "errors": self.errors,
            "failed": self.failed,
            "estimate": estimate,
            "low": low,
            "high": high,
            "half_width": (high - low) / 2.0,
            "converged": self.converged,
            "reason": self.reason,
            "rounds": self._rounds,
            "chunks": self._chunks_issued,
            "strata": strata,
        }
