"""Campaign specification.

"During the campaign definition, the designer provides all the
information required for the fault injection and the result analysis"
(Section 3.1).  A :class:`CampaignSpec` is exactly that bundle: the
fault list, how long to simulate, which probes are outputs, and the
analog comparison tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import CampaignError
from ..core.units import parse_quantity


@dataclass
class CampaignSpec:
    """Everything needed to run one injection campaign.

    :ivar name: campaign label for reports.
    :ivar faults: the fault list (fault-model instances; see
        :mod:`repro.campaign.faultlist` for generators).
    :ivar t_end: simulated duration of every run, in seconds.
    :ivar outputs: probe names treated as system outputs for
        classification; every other probe is internal state.
    :ivar tolerances: per-probe-name absolute amplitude tolerances.
    :ivar time_tolerances: per-probe-name *edge-time* tolerances in
        seconds, for digital probes (regenerated clocks) whose edge
        positions legitimately shift by picoseconds run-to-run; see
        :func:`repro.campaign.compare.compare_digital_edges`.
    :ivar analog_tolerance: default tolerance for analog probes not
        listed in ``tolerances``.
    :ivar compare_from: start of the comparison window (default 0);
        set it past reset/lock transients to ignore start-up noise.
    :ivar metadata: free-form notes carried into the result.
    """

    name: str
    faults: list
    t_end: float
    outputs: list
    tolerances: dict = field(default_factory=dict)
    time_tolerances: dict = field(default_factory=dict)
    analog_tolerance: float = 0.01
    compare_from: float | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.t_end = parse_quantity(self.t_end, expect_unit="s")
        if self.t_end <= 0:
            raise CampaignError("t_end must be positive")
        if not self.name:
            raise CampaignError("campaign needs a name")
        self.faults = list(self.faults)
        if not self.faults:
            raise CampaignError("campaign needs at least one fault")
        self.outputs = list(self.outputs)
        if not self.outputs:
            raise CampaignError(
                "campaign needs at least one output probe name"
            )
        if self.compare_from is not None:
            self.compare_from = parse_quantity(self.compare_from, expect_unit="s")
            if not 0 <= self.compare_from < self.t_end:
                raise CampaignError(
                    "compare_from must lie inside the simulated window"
                )

    @property
    def n_faults(self):
        """Number of runs the campaign will execute (plus one golden)."""
        return len(self.faults)

    def describe(self):
        """Multi-line summary shown before launching the campaign."""
        lines = [
            f"campaign {self.name!r}: {self.n_faults} faults, "
            f"{self.t_end * 1e6:.3g} us per run",
            f"outputs: {', '.join(self.outputs)}",
            f"analog tolerance: {self.analog_tolerance:g} "
            f"({len(self.tolerances)} overrides)",
        ]
        if self.compare_from:
            lines.append(f"comparison starts at {self.compare_from * 1e6:.3g} us")
        return "\n".join(lines)
