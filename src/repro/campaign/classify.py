"""Fault-effect classification.

The "Failure report / Classification" box of the analysis flow
(Figures 2 and 3).  Each faulty run is sorted into the classical
dependability classes by comparing its traces against the golden run:

========================  =====================================================
:data:`SILENT`            no monitored trace ever diverged — the fault was
                          masked (logically, electrically or by timing).
:data:`LATENT`            only *internal* traces diverged, and at least one
                          still differs at the end of the run: a dormant error
                          that a longer workload could still activate.
:data:`TRANSIENT_ERROR`   an *output* diverged but re-converged, and no
                          internal difference survives: the system failed
                          momentarily and fully recovered (the typical PLL
                          response — the clock is wrong for N cycles, then
                          lock is re-acquired).
:data:`FAILURE`           an output still differs at the end of the run.
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Classification labels, ordered by increasing severity.
SILENT = "silent"
LATENT = "latent"
TRANSIENT_ERROR = "transient-error"
FAILURE = "failure"

#: All classes in severity order.
CLASSES = (SILENT, LATENT, TRANSIENT_ERROR, FAILURE)

#: Rank used to aggregate severities.
SEVERITY = {label: rank for rank, label in enumerate(CLASSES)}

# -- run statuses ------------------------------------------------------------
#
# Orthogonal to the dependability classes above: a *run status* says
# whether the faulty simulation itself completed, and if not, how it
# died.  A supervised campaign terminates with one status per fault —
# the injected fault can classify the circuit only when the run is
# RUN_OK; every other status is a first-class outcome of its own
# (DAVOS-style), never a hung campaign.

#: The run completed and produced comparable traces.
RUN_OK = "ok"
#: The run exhausted its :class:`~repro.core.budget.RunBudget`
#: (wall-clock, kernel events or analog steps) or was killed by the
#: supervisor's per-fault deadline.
RUN_TIMEOUT = "timeout"
#: The analog solver diverged (NaN/Inf or runaway node values).
RUN_DIVERGED = "diverged"
#: The worker process died without reporting (signal, segfault, OOM).
RUN_CRASHED = "crashed"
#: The run raised an ordinary simulation error.
RUN_ERROR = "error"
#: Retries exhausted; the fault is parked and skipped on resume unless
#: explicitly re-requested.
RUN_QUARANTINED = "quarantined"
#: The fault was never simulated because an adaptively sampled
#: campaign converged first ("skipped by early stop").  Distinct from
#: "not sampled": an interrupted sampled campaign leaves *no* row for
#: faults it has not reached, while a converged one marks every
#: remaining fault skipped.  Not a failure — skipped rows carry no
#: classification and are excluded from error counts.
RUN_SKIPPED = "skipped"

#: Every terminal run status a store row or result may carry.
RUN_STATUSES = (
    RUN_OK, RUN_TIMEOUT, RUN_DIVERGED, RUN_CRASHED, RUN_ERROR,
    RUN_QUARANTINED, RUN_SKIPPED,
)

#: Statuses describing a run that did not complete.
FAILURE_STATUSES = (RUN_TIMEOUT, RUN_DIVERGED, RUN_CRASHED, RUN_ERROR)


def classify_failure(exc):
    """Map a per-run exception to its terminal run status.

    The typed errors the kernel's run budget and numerical guard raise
    (and the supervisor's crash report) each have a dedicated status;
    anything else is a plain :data:`RUN_ERROR`.

    :param exc: the exception a faulty run raised.
    :returns: one of :data:`FAILURE_STATUSES`.
    """
    from ..core.errors import (
        BudgetExceededError,
        NumericalDivergenceError,
        WorkerCrashError,
    )

    if isinstance(exc, BudgetExceededError):
        return RUN_TIMEOUT
    if isinstance(exc, NumericalDivergenceError):
        return RUN_DIVERGED
    if isinstance(exc, WorkerCrashError):
        return RUN_CRASHED
    return RUN_ERROR


@dataclass
class Classification:
    """Classification of one faulty run.

    :ivar label: one of :data:`CLASSES`.
    :ivar first_output_divergence: earliest output divergence time.
    :ivar output_mismatch_time: total time any output was wrong.
    :ivar diverged_outputs: names of outputs that diverged.
    :ivar diverged_internal: names of internal traces that diverged.
    :ivar latent_traces: internal traces still differing at run end.
    """

    label: str
    first_output_divergence: float | None = None
    output_mismatch_time: float = 0.0
    diverged_outputs: list = field(default_factory=list)
    diverged_internal: list = field(default_factory=list)
    latent_traces: list = field(default_factory=list)

    @property
    def severity(self):
        """Numeric severity rank (0 = silent)."""
        return SEVERITY[self.label]

    def is_error(self):
        """True unless the fault was completely masked."""
        return self.label != SILENT


def classify(comparisons, outputs):
    """Classify one faulty run from its per-trace comparisons.

    :param comparisons: mapping name -> :class:`TraceComparison` (from
        :func:`repro.campaign.compare.compare_probe_sets`).
    :param outputs: names of traces that count as system outputs; all
        other compared traces are internal state.
    :returns: a :class:`Classification`.
    """
    outputs = set(outputs)
    diverged_outputs = []
    diverged_internal = []
    latent_traces = []
    first_out = None
    mismatch = 0.0
    output_final_bad = False

    for name, cmp_result in comparisons.items():
        if not cmp_result.diverged:
            continue
        if name in outputs:
            diverged_outputs.append(name)
            mismatch += cmp_result.mismatch_time
            if first_out is None or cmp_result.first_divergence < first_out:
                first_out = cmp_result.first_divergence
            if not cmp_result.final_match:
                output_final_bad = True
        else:
            diverged_internal.append(name)
            if not cmp_result.final_match:
                latent_traces.append(name)

    if output_final_bad:
        label = FAILURE
    elif diverged_outputs:
        label = TRANSIENT_ERROR
    elif latent_traces:
        label = LATENT
    elif diverged_internal:
        # Internal divergence that healed: functionally silent, but
        # distinguishable for propagation analysis; counted silent per
        # the classical taxonomy (no observable or dormant error).
        label = SILENT
    else:
        label = SILENT

    return Classification(
        label=label,
        first_output_divergence=first_out,
        output_mismatch_time=mismatch,
        diverged_outputs=sorted(diverged_outputs),
        diverged_internal=sorted(diverged_internal),
        latent_traces=sorted(latent_traces),
    )
