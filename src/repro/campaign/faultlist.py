"""Fault-list generation.

Builders for the campaign's fault list: exhaustive products of targets
and injection times, or seeded random samples when the exhaustive space
is too large — the standard trade-off of simulation-based injection
("new techniques for speeding up fault-injection campaigns", paper
reference [3], attack exactly this cost).

All random generation takes an explicit seed so campaigns are exactly
reproducible.
"""

from __future__ import annotations

import itertools
import random

from ..core.errors import CampaignError
from ..faults.bitflip import BitFlip, MultipleBitUpset
from ..faults.set_pulse import SETPulse
from ..injection.controller import CurrentInjection


def exhaustive_bitflips(targets, times):
    """One :class:`BitFlip` per (target, time) pair, in product order."""
    targets = list(targets)
    times = list(times)
    if not targets or not times:
        raise CampaignError("need at least one target and one time")
    return [
        BitFlip(target, time)
        for target, time in itertools.product(targets, times)
    ]


def random_bitflips(targets, t_window, count, seed=0):
    """``count`` seeded-random bit-flips in a time window.

    :param t_window: ``(t_min, t_max)`` injection window.
    """
    targets = list(targets)
    t_min, t_max = t_window
    if not targets:
        raise CampaignError("need at least one target")
    if t_max <= t_min:
        raise CampaignError("empty time window")
    rng = random.Random(seed)
    return [
        BitFlip(rng.choice(targets), rng.uniform(t_min, t_max))
        for _ in range(count)
    ]


def random_mbus(targets, t_window, count, multiplicity=2, seed=0):
    """Seeded-random multiple-bit upsets (adjacent-target clusters)."""
    targets = list(targets)
    if len(targets) < multiplicity:
        raise CampaignError(
            f"need >= {multiplicity} targets for multiplicity "
            f"{multiplicity}"
        )
    t_min, t_max = t_window
    rng = random.Random(seed)
    faults = []
    for _ in range(count):
        start = rng.randrange(len(targets) - multiplicity + 1)
        cluster = targets[start : start + multiplicity]
        faults.append(MultipleBitUpset(cluster, rng.uniform(t_min, t_max)))
    return faults


def set_sweep(target, times, width):
    """SET pulses on one wire swept over injection times.

    The classical latch-window experiment: sweep the pulse across a
    clock cycle and observe which alignments get captured.
    """
    return [SETPulse(target, t, width) for t in times]


def analog_injections(nodes, times, transients):
    """Exhaustive :class:`CurrentInjection` product.

    One injection per (node, time, transient) triple — the analog
    campaign of Section 4.1, where the designer specifies the pulse
    parameter ranges and the injection times.
    """
    nodes = list(nodes)
    times = list(times)
    transients = list(transients)
    if not nodes or not times or not transients:
        raise CampaignError("need nodes, times and transients")
    return [
        CurrentInjection(transient, node, time)
        for node, time, transient in itertools.product(nodes, times, transients)
    ]


def random_analog_injections(nodes, t_window, transients, count, seed=0):
    """Seeded-random analog injections."""
    nodes = list(nodes)
    transients = list(transients)
    t_min, t_max = t_window
    if not nodes or not transients:
        raise CampaignError("need nodes and transients")
    rng = random.Random(seed)
    return [
        CurrentInjection(
            rng.choice(transients), rng.choice(nodes), rng.uniform(t_min, t_max)
        )
        for _ in range(count)
    ]


def batch_key(fault):
    """Ensemble-batching group key for ``fault``, or ``None``.

    Faults sharing a key target the same circuit site with the same
    injection mechanism and may execute together as one vectorized
    ensemble (see :mod:`repro.core.ensemble`), varying only their
    pulse parameters and times.  Only analog current injections
    batch: each maps to exactly one saboteur (keyed by node), and its
    waveform evaluates per-variant inside the solver step.  Digital
    faults, parametric faults and anything unrecognised return
    ``None`` and always run scalar.
    """
    if isinstance(fault, CurrentInjection):
        return fault.node
    return None


def digital_batch_key(fault):
    """Grouping key for digital faults eligible for bit-flip batching.

    Bit-flips, multi-bit upsets and SET pulses return their primary
    target name; these are the mechanisms whose mutants can fork off a
    shared golden branch walk (copy-on-divergence) and re-join it via
    state re-convergence.  Stuck-ats (often unbounded), parametric and
    analog faults return ``None`` and take their own paths.
    """
    from ..faults.bitflip import BitFlip, MultipleBitUpset
    from ..faults.set_pulse import SETPulse

    if isinstance(fault, (BitFlip, MultipleBitUpset)):
        return fault.targets()[0]
    if isinstance(fault, SETPulse):
        return fault.target
    return None


def sample(faults, count, seed=0):
    """A reproducible without-replacement sample of a fault list."""
    faults = list(faults)
    if count > len(faults):
        raise CampaignError(
            f"cannot sample {count} faults from {len(faults)}"
        )
    rng = random.Random(seed)
    return rng.sample(faults, count)


def cycle_times(t_start, period, n_cycles, phase=0.0):
    """Injection times hitting ``n_cycles`` consecutive clock cycles.

    ``phase`` (0..1) positions the injection within each cycle — the
    paper notes that for analog blocks "the exact injection time (and
    not only the injection cycle ...) may have a noticeable impact".
    """
    if period <= 0 or n_cycles < 1:
        raise CampaignError("period must be positive and n_cycles >= 1")
    if not 0.0 <= phase < 1.0:
        raise CampaignError("phase must be in [0, 1)")
    return [t_start + (k + phase) * period for k in range(n_cycles)]


def intra_cycle_times(t_cycle_start, period, n_points):
    """``n_points`` injection times spread inside one clock cycle."""
    if n_points < 1:
        raise CampaignError("n_points must be >= 1")
    return [
        t_cycle_start + period * (k + 0.5) / n_points for k in range(n_points)
    ]
