"""Error-propagation model generation.

The second exploitation of campaign traces in Figure 2: instead of a
flat failure report, "generate a more complete model showing the error
propagations in the circuit".  For each faulty run the monitored traces
are ordered by *first divergence time*; consecutive divergences form
propagation edges (fault target -> first corrupted probe -> next ...).
Aggregating the edges over a whole campaign yields a weighted directed
graph: which nodes corrupt which, how often, and with what latency.
"""

from __future__ import annotations

import networkx as nx

from ..core.errors import CampaignError
from .results import _target_of

#: Synthetic source node representing the injection site itself.
ORIGIN = "<fault>"


def divergence_order(comparisons):
    """Probes sorted by first divergence time: ``[(time, name), ...]``.

    Matching probes are omitted.
    """
    diverged = [
        (cmp_result.first_divergence, name)
        for name, cmp_result in comparisons.items()
        if cmp_result.diverged
    ]
    return sorted(diverged)


def propagation_path(fault, comparisons):
    """The propagation chain of one run.

    Returns ``[(source, destination, latency_seconds), ...]`` starting
    at the fault target; empty when nothing diverged.
    """
    ordered = divergence_order(comparisons)
    if not ordered:
        return []
    path = []
    prev_name = _target_of(fault)
    prev_time = ordered[0][0]
    first = True
    for time, name in ordered:
        latency = 0.0 if first else time - prev_time
        path.append((prev_name, name, latency))
        prev_name, prev_time = name, time
        first = False
    return path


def build_propagation_graph(result):
    """Aggregate a campaign into a weighted propagation DiGraph.

    Edge attributes:

    * ``count`` — number of runs where the error propagated along the
      edge,
    * ``mean_latency`` — average time between the two divergences.

    Node attribute ``hits`` counts how often each probe was corrupted.

    :param result: a :class:`repro.campaign.results.CampaignResult`.
    """
    graph = nx.DiGraph()
    for run in result:
        path = propagation_path(run.fault, run.comparisons)
        for source, destination, latency in path:
            if graph.has_edge(source, destination):
                data = graph[source][destination]
                total = data["mean_latency"] * data["count"] + latency
                data["count"] += 1
                data["mean_latency"] = total / data["count"]
            else:
                graph.add_edge(
                    source, destination, count=1, mean_latency=latency
                )
            graph.nodes[destination]["hits"] = (
                graph.nodes[destination].get("hits", 0) + 1
            )
    return graph


def dominant_paths(graph, n=5):
    """The ``n`` highest-count edges, most frequent first."""
    edges = sorted(
        graph.edges(data=True), key=lambda e: -e[2]["count"]
    )
    return edges[:n]


def format_propagation_report(graph):
    """Text rendering of a propagation graph."""
    if graph.number_of_edges() == 0:
        return "no error propagation observed (all faults silent)"
    lines = ["error propagation model:"]
    for source, destination, data in sorted(
        graph.edges(data=True), key=lambda e: -e[2]["count"]
    ):
        lines.append(
            f"  {source} -> {destination}: {data['count']} run(s), "
            f"mean latency {data['mean_latency'] * 1e9:.2f} ns"
        )
    return "\n".join(lines)


def reachable_outputs(graph, outputs):
    """Which declared outputs are reachable from the fault origin.

    :raises CampaignError: when the graph is empty.
    """
    if graph.number_of_nodes() == 0:
        raise CampaignError("empty propagation graph")
    sources = [n for n in graph.nodes if graph.in_degree(n) == 0]
    reached = set()
    for source in sources:
        reached.update(nx.descendants(graph, source))
        reached.add(source)
    return sorted(set(outputs) & reached)
