"""Campaign reports.

Text and CSV renderings of campaign results — the "failure report"
output of the flow.  Everything is plain fixed-width text so reports
diff cleanly between campaigns.
"""

from __future__ import annotations

import csv
import io

from .classify import CLASSES
from .results import _target_of


def _format_table(rows):
    """Fixed-width table from a list of string rows (first = header)."""
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def classification_summary(result):
    """Aggregate class counts table."""
    counts = result.counts()
    total = len(result)
    rows = [["class", "runs", "fraction"]]
    for label in CLASSES:
        n = counts[label]
        frac = f"{n / total:.1%}" if total else "-"
        rows.append([label, str(n), frac])
    rows.append(["total", str(total), "100.0%" if total else "-"])
    return _format_table(rows)


def per_target_table(result):
    """Per-injection-target class breakdown."""
    table = result.by_target()
    rows = [["target"] + list(CLASSES) + ["error rate"]]
    for target in sorted(table):
        counter = table[target]
        total = sum(counter.values())
        errors = total - counter.get(CLASSES[0], 0)
        rows.append(
            [target]
            + [str(counter.get(label, 0)) for label in CLASSES]
            + [f"{errors / total:.1%}" if total else "-"]
        )
    return _format_table(rows)


def sampling_headline(sampling, percent=True):
    """The one-line answer of a sampled campaign.

    ``error rate 2.3% ± 0.4% (95% confidence), 48112 of 5000000
    faults simulated`` — rendered from the sampler summary dict
    stored in ``result.execution["sampling"]``.
    """
    fmt = "{:.1%}" if percent else "{:.4f}"
    level = f"{sampling['confidence']:.0%}"
    return (
        f"error rate {fmt.format(sampling['estimate'])}"
        f" ± {fmt.format(sampling['half_width'])}"
        f" ({level} confidence),"
        f" {sampling['simulated']:,} of {sampling['population']:,}"
        " faults simulated"
    )


def sampling_summary(sampling):
    """Report section for a sampled campaign's estimates.

    Headline, stop reason, and the per-stratum estimate table with
    Wilson intervals; strata that ran out of faults before their
    interval closed are flagged ``starved`` (their estimate is
    exact for the population but wider than the requested margin).
    """
    lines = [
        sampling_headline(sampling),
        f"stopped         : {sampling['reason']}"
        f" (margin ±{sampling['margin']:.2%}"
        f" at {sampling['confidence']:.0%},"
        f" {sampling['rounds']} rounds / {sampling['chunks']} chunks,"
        f" seed {sampling['seed']}, strata {sampling['strata_mode']})",
    ]
    if sampling.get("failed"):
        lines.append(
            f"failed runs     : {sampling['failed']}"
            " (excluded from estimate trials)"
        )
    rows = [[
        "stratum", "population", "trials", "errors", "estimate",
        "interval", "state",
    ]]
    for stratum in sampling.get("strata", ()):
        if stratum["converged"]:
            state = "converged"
        elif stratum["starved"]:
            state = "starved"
        elif stratum["exhausted"]:
            state = "exhausted"
        else:
            state = "stopped early"
        interval = (
            f"{stratum['low']:.1%} .. {stratum['high']:.1%}"
            if stratum["trials"] else "-"
        )
        rows.append([
            stratum["stratum"],
            str(stratum["population"]),
            str(stratum["trials"]),
            str(stratum["errors"]),
            f"{stratum['estimate']:.1%}" if stratum["trials"] else "-",
            interval,
            state,
        ])
    lines.append(_format_table(rows))
    starved = [
        s["stratum"] for s in sampling.get("strata", ()) if s["starved"]
    ]
    if starved:
        lines.append(
            f"starved strata  : {', '.join(starved)} — population "
            "exhausted before the interval reached the margin"
        )
    return "\n".join(lines)


def execution_summary(result):
    """How the campaign ran: mode, checkpoints, events, warm stats.

    Renders :attr:`CampaignResult.execution` — the warm-start /
    checkpoint accounting that used to stay buried in the result
    object — as a report section.  Returns an empty string for
    hand-assembled results with no execution record.
    """
    ex = result.execution
    if not ex:
        return ""
    lines = [
        f"mode            : {ex.get('mode', '?')} start"
        f" ({ex.get('workers', 1)} worker"
        f"{'s' if ex.get('workers', 1) != 1 else ''})",
        f"kernel events   : {ex.get('kernel_events', 0)}"
        f" (golden {ex.get('golden_events', 0)}"
        f" + faulty {ex.get('fault_events', 0)})",
    ]
    if ex.get("mode", "").endswith(("warm", "batched")):
        lines.append(f"checkpoints     : {ex.get('checkpoints', 0)}")
        if "warm_hits" in ex:
            lines.append(
                f"warm restores   : {ex['warm_hits']} hit"
                f" / {ex['warm_misses']} miss (replayed from t=0)"
            )
    batch = ex.get("batch")
    if batch:
        lines.append(
            f"batch mode      : {batch.get('mode', 'auto')}"
            f" ({batch.get('batches', 0)} batches:"
            f" {batch.get('analog_batches', 0)} analog,"
            f" {batch.get('digital_batches', 0)} digital)"
        )
        lines.append(
            f"batched runs    : {batch.get('batched_runs', 0)} batched"
            f" / {batch.get('scalar_runs', 0)} scalar"
            f" ({batch.get('peeled', 0)} peeled,"
            f" {batch.get('fallbacks', 0)} fallbacks)"
        )
        if batch.get("converged") or batch.get("branch_snapshots"):
            lines.append(
                f"re-convergence  : {batch.get('converged', 0)} mutants"
                f" spliced onto golden tails"
                f" ({batch.get('branch_snapshots', 0)} branch snapshots)"
            )
    sampling = ex.get("sampling")
    if sampling:
        lines.append(f"sampling        : {sampling_headline(sampling)}")
        lines.append(
            f"early stop      : {sampling['reason']} after"
            f" {sampling['trials']} trials;"
            f" {sampling['skipped']} faults never simulated"
        )
    if "wall_s" in ex:
        completed = ex.get("completed", len(result))
        rate = completed / ex["wall_s"] if ex["wall_s"] > 0 else 0.0
        lines.append(
            f"wall time       : {ex['wall_s']:.3g} s"
            f" ({rate:.2f} runs/s)"
        )
    phases = ex.get("phases")
    if phases and any(phases.values()):
        parts = [
            f"{name} {phases[name]:.3g}s"
            for name in ("restore", "step", "classify", "store_write")
            if phases.get(name)
        ]
        lines.append(f"phase breakdown : {', '.join(parts)}")
    if ex.get("skipped"):
        lines.append(
            f"resumed         : {ex['skipped']} runs loaded from store, "
            f"{ex.get('completed', 0)} executed"
        )
    if ex.get("errors"):
        lines.append(f"run errors      : {ex['errors']}")
    if ex.get("retries"):
        lines.append(f"retries         : {ex['retries']}")
    breakdown = [
        f"{ex[key]} {key}"
        for key in ("timeouts", "diverged", "crashed")
        if ex.get(key)
    ]
    if breakdown:
        lines.append(f"failed runs     : {', '.join(breakdown)}")
    if ex.get("quarantined"):
        lines.append(
            f"quarantined     : {ex['quarantined']}"
            " (skipped on resume unless retried explicitly)"
        )
    return "\n".join(lines)


def error_listing(result, limit=None):
    """One line per failed run (``on_error="collect"`` campaigns)."""
    errors = getattr(result, "errors", None) or []
    lines = []
    for err in errors[: limit if limit is not None else len(errors)]:
        lines.append(err.describe())
    if limit is not None and len(errors) > limit:
        lines.append(f"... ({len(errors) - limit} more)")
    return "\n".join(lines)


def fault_listing(result, limit=None):
    """One line per run: fault description and class."""
    lines = []
    for run in result.runs[: limit if limit is not None else len(result.runs)]:
        lines.append(run.describe())
    if limit is not None and len(result.runs) > limit:
        lines.append(f"... ({len(result.runs) - limit} more)")
    return "\n".join(lines)


def full_report(result, listing_limit=20):
    """Complete text report: header, summary, per-target, worst runs."""
    from .stats import estimate_error_rate

    sections = [
        f"=== campaign report: {result.spec.name} ===",
        result.spec.describe(),
        "",
        "--- classification summary ---",
        classification_summary(result),
    ]
    sampling = (result.execution or {}).get("sampling")
    if sampling:
        sections.extend(
            ["", "--- sampling estimate ---", sampling_summary(sampling)]
        )
    elif len(result):
        rate, (low, high) = estimate_error_rate(result)
        half = (high - low) / 2.0
        sections.append(
            f"error rate: {rate:.1%} ± {half:.1%}"
            f"  (95% Wilson CI: {low:.1%} .. {high:.1%})"
        )
    sections.extend(
        [
            "",
            "--- per-target breakdown ---",
            per_target_table(result),
            "",
            "--- fault listing ---",
            fault_listing(result, listing_limit),
        ]
    )
    if result.execution:
        sections.extend(
            ["", "--- execution ---", execution_summary(result)]
        )
    if getattr(result, "errors", None):
        sections.extend(
            [
                "",
                f"--- run errors ({len(result.errors)}) ---",
                error_listing(result, listing_limit),
            ]
        )
    return "\n".join(sections)


#: One-character severity glyphs for the sensitivity matrix.
SEVERITY_GLYPHS = {
    "silent": ".",
    "latent": "o",
    "transient-error": "T",
    "failure": "F",
}


def sensitivity_matrix(result):
    """ASCII target x injection-time severity map.

    The designer's at-a-glance view of *where* and *when* the circuit
    is vulnerable: one row per injection target, one column per
    distinct injection time, each cell the severity glyph of that run
    (``.`` silent, ``o`` latent, ``T`` transient error, ``F`` failure,
    blank = combination not injected).
    """
    times = sorted({
        getattr(run.fault, "time", None)
        for run in result.runs
        if getattr(run.fault, "time", None) is not None
    })
    if not times:
        return "no timed faults in this campaign"
    index = {t: k for k, t in enumerate(times)}
    rows = {}
    for run in result.runs:
        time = getattr(run.fault, "time", None)
        if time is None:
            continue
        target = _target_of(run.fault)
        cells = rows.setdefault(target, [" "] * len(times))
        cells[index[time]] = SEVERITY_GLYPHS.get(run.label, "?")
    width = max(len(t) for t in rows)
    lines = [
        f"{'target'.ljust(width)}  "
        + "".join("|" if k % 10 == 0 else " " for k in range(len(times))),
        f"{''.ljust(width)}  first column at "
        f"{times[0] * 1e9:.1f} ns, last at {times[-1] * 1e9:.1f} ns",
    ]
    for target in sorted(rows):
        lines.append(f"{target.ljust(width)}  {''.join(rows[target])}")
    lines.append(
        "legend: . silent   o latent   T transient-error   F failure"
    )
    return "\n".join(lines)


def to_csv(result):
    """CSV export: one row per run with key comparison metrics."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "index",
            "fault",
            "target",
            "class",
            "first_output_divergence_s",
            "output_mismatch_time_s",
            "diverged_outputs",
            "diverged_internal",
        ]
    )
    for index, run in enumerate(result.runs):
        cls = run.classification
        writer.writerow(
            [
                index,
                run.fault.describe(),
                _target_of(run.fault),
                cls.label,
                "" if cls.first_output_divergence is None
                else f"{cls.first_output_divergence:.12g}",
                f"{cls.output_mismatch_time:.12g}",
                ";".join(cls.diverged_outputs),
                ";".join(cls.diverged_internal),
            ]
        )
    return buffer.getvalue()
