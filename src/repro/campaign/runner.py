"""Campaign execution.

Runs the full flow of Figures 2 and 3: a golden reference simulation,
then one instrumented simulation per fault, each compared and
classified against the golden traces.

The user supplies a **design factory**: a zero-argument callable
returning a :class:`Design` — a freshly built circuit with its probes.

Two execution strategies are available:

* **cold start** (the default, and the paper's literal flow): every
  faulty run rebuilds the design and re-simulates from t=0.  Runs are
  maximally isolated — the simulation-based equivalent of reloading
  the emulator bitstream between experiments.
* **warm start** (``warm_start=True``): one design is built; during
  the single golden run the kernel takes :class:`Snapshot` checkpoints
  just before the faults' injection times, and each faulty run
  *restores* the nearest checkpoint at or before its injection time
  and simulates only the ``[t_ckpt, t_end]`` suffix.  The shared
  golden prefix of every trace is preserved through the restore, so
  results are bit-identical to cold runs while skipping the identical
  warm-up — for the paper's PLL campaign, where every fault injects
  after lock, that removes the bulk of each run.

Warm start relies on the same grid-identity discipline as comparison:
the union of all faults' solver refinement windows is pre-applied to
the golden run (see :meth:`CampaignRunner._collect_windows`), and all
current-pulse saboteurs are pre-created before the golden run so every
run — golden and faulty — evaluates the identical block set.
"""

from __future__ import annotations

import logging
import os
from bisect import bisect_right
from dataclasses import dataclass, field
from time import perf_counter, sleep

from ..core.budget import NumericalGuard, RunBudget
from ..core.ckpt_tree import CheckpointTree
from ..core.ensemble import Ensemble, EnsembleDrainedError
from ..core.errors import CampaignError
from ..core.trace import Trace
from ..core.units import parse_quantity
from ..injection.controller import CurrentInjection, InjectionController
from ..obs import journal as _journal
from ..obs import metrics as _metrics
from ..obs import tracer as _tracer
from ..obs.flightrec import (
    FlightRecorder,
    build_postmortem,
    postmortem_path,
    write_postmortem,
    write_worker_postmortem,
)
from .classify import (
    RUN_CRASHED,
    RUN_DIVERGED,
    RUN_TIMEOUT,
    SILENT,
    classify,
    classify_failure,
)
from .compare import ComparisonGridCache, compare_probe_sets
from .faultlist import batch_key, digital_batch_key
from .results import CampaignResult, CampaignRunError, FaultResult
from .sampling import DEFAULT_CHUNK, StratifiedSampler, stored_outcomes
from .supervisor import RetryPolicy, WorkerSupervisor, set_worker_phase

LOGGER = logging.getLogger("repro.campaign")

#: Default ceiling on retained golden checkpoints (memory bound).
DEFAULT_MAX_CHECKPOINTS = 64

#: Ceiling on convergence-horizon comparison points past the last
#: flip time of a digital batch (the horizon doubles geometrically, so
#: this bounds both snapshot memory and per-mutant check cost).
MAX_HORIZON_POINTS = 16

#: Valid ``batch`` modes (:func:`normalize_batch_mode`).
BATCH_MODES = ("auto", "analog", "digital", "off")

#: Sentinel: "use the default numerical guard" (pass None to disable).
_DEFAULT_GUARD = object()


def normalize_batch_mode(batch):
    """Map a ``batch`` argument to one of :data:`BATCH_MODES`.

    Accepts the legacy booleans (``True`` -> ``"auto"``, ``False``/
    ``None`` -> ``"off"``) and the mode strings themselves.
    """
    if batch is None or batch is False:
        return "off"
    if batch is True:
        return "auto"
    if isinstance(batch, str) and batch in BATCH_MODES:
        return batch
    raise CampaignError(
        f"batch must be a bool or one of {BATCH_MODES}, got {batch!r}"
    )


@dataclass
class Design:
    """A freshly elaborated design under test.

    :ivar sim: the simulator, not yet run.
    :ivar root: hierarchy root component (mutant/state lookup scope).
    :ivar probes: mapping name -> :class:`Trace`, created before the
        run; must be identical between golden and faulty elaborations.
    :ivar extras: anything the factory wants to expose to per-run
        metric hooks (block references, nodes...).
    """

    sim: object
    root: object
    probes: dict
    extras: dict = field(default_factory=dict)


def _clone_trace(trace):
    """A detached copy of a trace's samples (same name/interpolation)."""
    return trace.clone()


def _fault_schedule_time(fault):
    """When a fault first disturbs the design (checkpoint anchor).

    Faults without a recognisable time attribute anchor at 0.0, which
    degrades to a full replay — always correct, never fast.
    """
    for attr in ("time", "t_start"):
        value = getattr(fault, attr, None)
        if isinstance(value, (int, float)):
            return float(value)
    return 0.0


def _needs_strict_checkpoint(fault):
    """True when the fault must restore *strictly before* its time.

    Parametric faults activate immediately when applied at their start
    time instead of scheduling an event, which would reorder them
    against same-timestamp activity; restoring to an earlier
    checkpoint sidesteps that.  Every other mechanism schedules
    through the event queue inside the injection band, which
    reproduces cold-run delta ordering even at an exactly-coincident
    checkpoint.
    """
    from ..faults.parametric import ParametricFault

    return isinstance(fault, ParametricFault)


class CampaignRunner:
    """Executes a :class:`CampaignSpec` against a design factory.

    :param factory: zero-argument callable returning a :class:`Design`.
    :param spec: the campaign specification.
    :param metric_hooks: optional callables
        ``(design, fault) -> dict`` evaluated after each faulty run;
        their merged results land in :attr:`FaultResult.metrics`.
    :param progress: optional callable ``(index, total, fault)`` for
        progress reporting.
    """

    def __init__(self, factory, spec, metric_hooks=(), progress=None):
        self.factory = factory
        self.spec = spec
        self.metric_hooks = list(metric_hooks)
        self.progress = progress
        self._shared_windows = self._collect_windows(spec.faults)
        self._warm = None
        # Supervision config, set per run() call; faulty runs are
        # armed with these, golden runs never are.
        self._budget = None
        self._guard = None
        self._retry = None
        self._grid_cache = None
        self._flush_store = None
        self._batch_stats = None
        # Telemetry state: the flight-recorder post-mortem directory,
        # the sim/recorder of the faulty run in flight (what a failure
        # dump captures), per-phase wall-time accumulators and the
        # worker-lifecycle monitor (parallel runs only).
        self._postmortem_dir = None
        self._last_sim = None
        self._recorder = None
        self._phase_s = None
        self._worker_monitor = None

    @staticmethod
    def _collect_windows(faults):
        """Union of the solver refinement windows all faults will need.

        Analog injections refine the solver timestep around the pulse;
        if only the faulty run refined, golden and faulty runs would
        integrate on *different* grids and diverge numerically even
        for a negligible pulse.  Pre-applying every fault's window to
        every run (golden included) keeps the grids identical, so any
        observed difference is caused by the fault alone.
        """
        from ..injection.saboteur import CurrentPulseSaboteur

        windows = []
        for fault in faults:
            if isinstance(fault, CurrentInjection):
                windows.append(
                    CurrentPulseSaboteur.window_for(fault.transient, fault.time)
                )
        return windows

    def _apply_shared_windows(self, design):
        for t0, t1, dt in self._shared_windows:
            design.sim.analog.add_refinement_window(t0, t1, dt)

    # -- individual runs ------------------------------------------------------

    def run_golden(self):
        """Execute the fault-free reference run; returns its probes."""
        design = self.factory()
        self._check_probes(design, self.spec.outputs)
        self._apply_shared_windows(design)
        with _tracer.TRACER.span("campaign.golden", t_end=self.spec.t_end):
            design.sim.run(self.spec.t_end)
        return design

    def run_fault(self, fault):
        """Execute one faulty run; returns ``(design, controller)``."""
        self._last_sim = None
        self._recorder = None
        design = self.factory()
        self._apply_shared_windows(design)
        self._arm(design.sim)
        controller = InjectionController(design.sim, design.root)
        controller.apply(fault)
        step_start = perf_counter()
        design.sim.run(self.spec.t_end)
        if self._phase_s is not None:
            self._phase_s["step"] += perf_counter() - step_start
        return design, controller

    def _arm(self, sim):
        """Install the run budget, guard and flight recorder on a sim.

        Golden runs are never armed: they are fault-free by
        construction, and a budget tripping there would abort the whole
        campaign rather than classify one run.  The flight recorder is
        a *fresh* ring per faulty run (armed only when a post-mortem
        directory is configured), so a dump always shows this run's
        recent history, never a predecessor's.
        """
        sim.budget = self._budget
        if self._guard is not None and sim.analog.guard is None:
            sim.analog.guard = self._guard.fresh()
        self._last_sim = sim
        if self._postmortem_dir is not None:
            self._recorder = FlightRecorder()
            sim.analog.recorder = self._recorder
        else:
            self._recorder = None

    def _dump_postmortem(self, index, fault, status, exc, attempt):
        """Best-effort flight-recorder dump for one failed attempt.

        Returns the post-mortem path, or None when dumping is off (no
        post-mortem directory) or itself failed — a broken dump must
        never turn a classified failure into a campaign abort.
        """
        if self._postmortem_dir is None:
            return None
        try:
            payload = build_postmortem(
                self._last_sim, self._recorder, fault=fault, index=index,
                status=status, error=exc, budget=self._budget,
                attempt=attempt,
            )
            path = write_postmortem(self._postmortem_dir, index, payload)
        except Exception:
            LOGGER.exception(
                "failed to write post-mortem for fault %d", index
            )
            return None
        _journal.emit(
            "postmortem_written", index=index, path=path, status=status
        )
        return path

    def _find_postmortem(self, index):
        """The existing post-mortem path for ``index``, or None.

        Post-mortem paths are deterministic precisely so the parent
        can reference a dump a (possibly dead) worker wrote without
        any cross-process handshake: an existence check is the whole
        protocol.
        """
        if self._postmortem_dir is None:
            return None
        path = postmortem_path(self._postmortem_dir, index)
        return path if os.path.exists(path) else None

    def _build_worker_monitor(self, store, campaign_id):
        """The supervisor monitor that turns worker lifecycle events
        into journal events, store worker rows and (for workers that
        die without reporting) parent-written post-mortems."""

        def monitor(info):
            event = info.get("event")
            pid = info.get("pid")
            index = info.get("index")
            if event == "spawned":
                _journal.emit("worker_spawned", pid=pid)
                if store is not None:
                    store.record_worker(campaign_id, pid, "alive",
                                        phase="idle")
            elif event == "task":
                _journal.emit(
                    "run_started", index=index,
                    fault=self.spec.faults[index].describe(),
                    attempt=info.get("attempt"), worker_pid=pid,
                )
                if store is not None:
                    store.record_worker(campaign_id, pid, "alive",
                                        fault_idx=index, phase="running")
            elif event == "heartbeat":
                _journal.emit(
                    "worker_heartbeat", pid=pid, index=index,
                    phase=info.get("phase"),
                )
                if store is not None:
                    store.record_worker(campaign_id, pid, "alive",
                                        fault_idx=index,
                                        phase=info.get("phase"))
            elif event == "died":
                _journal.emit(
                    "worker_died", pid=pid, index=index,
                    exitcode=info.get("exitcode"),
                    killed=bool(info.get("killed")),
                )
                heartbeat = info.get("last_heartbeat") or {}
                if store is not None:
                    store.record_worker(
                        campaign_id, pid, "dead", fault_idx=index,
                        phase=heartbeat.get("phase"),
                        exitcode=info.get("exitcode"),
                    )
                # A killed/crashed worker could not dump its own
                # flight recorder; write what the parent knows.
                if self._postmortem_dir is not None and index is not None:
                    status = info.get("status", RUN_CRASHED)
                    path = write_worker_postmortem(
                        self._postmortem_dir, index,
                        fault=self.spec.faults[index], status=status,
                        error=(
                            f"worker pid {pid} died"
                            f" (exitcode {info.get('exitcode')},"
                            f" killed={bool(info.get('killed'))})"
                        ),
                        pid=pid, exitcode=info.get("exitcode"),
                        last_heartbeat=info.get("last_heartbeat"),
                    )
                    _journal.emit(
                        "postmortem_written", index=index, path=path,
                        status=status,
                    )
            elif event == "retry":
                _journal.emit(
                    "retry", index=index, attempt=info.get("attempt"),
                    delay_s=info.get("delay_s"), status=info.get("status"),
                )

        return monitor

    @staticmethod
    def _check_probes(design, outputs):
        missing = [name for name in outputs if name not in design.probes]
        if missing:
            raise CampaignError(
                f"design factory does not probe declared outputs: {missing}"
            )

    # -- warm-start machinery ---------------------------------------------------

    def checkpoint_times(self, checkpoint_every=None, max_checkpoints=None):
        """The golden-run checkpoint schedule for this campaign.

        Candidates are the faults' injection times (quantised down to
        multiples of ``checkpoint_every`` when given), clipped to the
        simulated window, with a base checkpoint at t=0 so every fault
        has a restore point.  Parametric faults anchor one candidate
        *below* their start time (see :func:`_needs_strict_checkpoint`).
        When the candidate set exceeds ``max_checkpoints`` it is
        thinned evenly — correctness is unaffected, late-injecting
        faults just replay a little more suffix.
        """
        if max_checkpoints is None:
            max_checkpoints = DEFAULT_MAX_CHECKPOINTS
        if max_checkpoints < 1:
            raise CampaignError("max_checkpoints must be >= 1")
        if checkpoint_every is not None:
            checkpoint_every = parse_quantity(
                checkpoint_every, expect_unit="s"
            )
        candidates = {0.0}
        for fault in self.spec.faults:
            t_inj = _fault_schedule_time(fault)
            if _needs_strict_checkpoint(fault):
                # Quantisation already lands below t_inj unless t_inj
                # is an exact multiple; nudging one nominal analog
                # step earlier keeps the restore strictly before the
                # activation without measurable replay cost.
                t_inj -= self._nominal_dt()
            if checkpoint_every:
                t_inj = int(t_inj / checkpoint_every) * checkpoint_every
            if 0.0 < t_inj < self.spec.t_end:
                candidates.add(t_inj)
        times = sorted(candidates)
        if len(times) > max_checkpoints:
            if max_checkpoints == 1:
                return [times[0]]
            step = (len(times) - 1) / (max_checkpoints - 1)
            keep = sorted({round(i * step) for i in range(max_checkpoints)})
            times = [times[i] for i in keep]
        return times

    def _nominal_dt(self):
        # The factory owns the solver step; one nominal nanosecond-ish
        # step is recovered lazily from the warm design when present.
        if self._warm is not None:
            return self._warm["design"].sim.analog.dt_nominal
        return 0.0

    def prepare_warm(self, checkpoint_every=None, max_checkpoints=None):
        """Build the design, run the golden simulation and checkpoint it.

        Returns the warm-state dict (design, snapshots, golden probe
        clones, saboteur map).  Idempotent: subsequent calls reuse the
        prepared state.
        """
        if self._warm is not None:
            return self._warm

        design = self.factory()
        self._check_probes(design, self.spec.outputs)
        self._apply_shared_windows(design)
        sim = design.sim

        # Pre-create every saboteur the fault list needs, so golden
        # and faulty runs evaluate one identical analog block set (an
        # idle saboteur contributes no current).  Created before the
        # elaboration mark: in a cold run the saboteur also exists
        # before the run starts.
        bootstrap = InjectionController(sim, design.root)
        for fault in self.spec.faults:
            if isinstance(fault, CurrentInjection):
                bootstrap.saboteur_for(fault.node)
        saboteurs = dict(bootstrap.saboteurs)

        sim.mark_elaboration()
        self._warm = {"design": design, "saboteurs": saboteurs}

        events_before = sim.events_executed
        snapshots = []
        with _tracer.TRACER.span(
            "campaign.golden", t_end=self.spec.t_end, warm=True
        ):
            for t_ckpt in self.checkpoint_times(
                checkpoint_every, max_checkpoints
            ):
                # Stop *before* the checkpoint timestamp's delta cycles
                # so a fault injected exactly there replays in cold-run
                # order.
                sim.run(t_ckpt, inclusive=False)
                snapshots.append((t_ckpt, sim.snapshot()))
            sim.run(self.spec.t_end)

        tree = CheckpointTree()
        tree.set_trunk(snapshots)
        self._warm.update(
            snapshots=snapshots,
            ckpt_times=[t for t, _ in snapshots],
            tree=tree,
            golden_probes={
                name: _clone_trace(trace)
                for name, trace in design.probes.items()
            },
            # Full golden sample data for every kernel trace, used to
            # re-splice the golden prefix after each restore: a restore
            # only truncates traces back to the checkpoint *length*,
            # and once a faulty run has overwritten the suffix, the
            # region between an earlier restore point and the current
            # checkpoint would otherwise carry stale faulty samples.
            golden_trace_data=[
                (trace, trace._times.copy_data(), trace._values.copy_data())
                for trace in sim._traces
            ],
            golden_events=sim.events_executed - events_before,
        )
        self._warm["golden_by_id"] = {
            id(trace): (times, values)
            for trace, times, values in self._warm["golden_trace_data"]
        }
        return self._warm

    def _restore_point(self, fault):
        """The ``(time, snapshot)`` checkpoint a warm run restores.

        A restore at t > 0 is a warm-start *hit* (golden prefix
        skipped); falling back to the base t=0 checkpoint is a *miss*
        (full replay, always correct).  Requires :meth:`prepare_warm`.
        """
        warm = self.prepare_warm()
        t_inj = _fault_schedule_time(fault)
        if _needs_strict_checkpoint(fault):
            index = bisect_right(warm["ckpt_times"], t_inj - self._nominal_dt())
        else:
            index = bisect_right(warm["ckpt_times"], t_inj)
        return warm["snapshots"][max(index - 1, 0)]

    @staticmethod
    def _resplice_golden_prefixes(warm):
        """Rewrite every kernel trace's prefix with golden sample data.

        A restore truncates traces back to the checkpoint *length*;
        once a faulty run has overwritten the suffix, the region
        between an earlier restore point and the current checkpoint
        would otherwise carry stale faulty samples.
        """
        for trace, times, values in warm["golden_trace_data"]:
            n = len(trace._times)
            trace._times.load_prefix(times, n)
            trace._values.load_prefix(values, n)
            trace._cache = None

    @staticmethod
    def _reinflate_golden(warm):
        """Reload every kernel trace with the *full* golden record.

        A checkpoint restore can only truncate traces, which assumes
        the live trace is at least as long as the snapshot recorded —
        true after a full golden run, but not after a convergence
        early-out stopped a digital mutant mid-window, and not after a
        faulty run that *quieted* a probe (an upset that halts
        activity records fewer samples than golden had by the next
        fault's checkpoint).  Reloading the complete golden data first
        makes any snapshot restorable again: truncation then yields
        exactly the golden prefix, no re-splice needed.
        """
        for trace, times, values in warm["golden_trace_data"]:
            trace._times.load_prefix(times, len(times))
            trace._values.load_prefix(values, len(values))
            trace._cache = None

    @staticmethod
    def _ensure_restorable(warm, snap):
        """Make ``snap``'s trace truncation sound before a restore.

        Cheap guard over :meth:`_reinflate_golden`: only reload the
        full golden record when some live trace is actually shorter
        than the checkpoint recorded, so the common case (previous run
        produced at least as many samples) keeps the prefix-only
        re-splice cost.
        """
        if any(
            len(trace) < length for trace, length in snap.trace_lengths
        ):
            CampaignRunner._reinflate_golden(warm)

    def run_fault_warm(self, fault):
        """Execute one faulty run from the nearest golden checkpoint.

        Returns ``(probes, metrics, events)`` where ``probes`` are
        detached trace copies spanning the full ``[0, t_end]`` window
        (golden prefix + faulty suffix) and ``events`` counts the
        kernel events this run actually executed.
        """
        warm = self.prepare_warm()
        design = warm["design"]
        sim = design.sim
        # Budget the faulty suffix only (the restore below also resets
        # the guard's step history via the solver's invalidate hook).
        self._arm(sim)

        t_ckpt, snap = self._restore_point(fault)

        events_before = sim.events_executed
        set_worker_phase("restore")
        restore_start = perf_counter()
        self._ensure_restorable(warm, snap)
        sim.restore(snap)
        self._resplice_golden_prefixes(warm)
        step_start = perf_counter()
        _journal.emit("checkpoint_restored", t_ckpt=t_ckpt)
        set_worker_phase("simulate")
        controller = InjectionController(
            sim, design.root, saboteurs=warm["saboteurs"]
        )
        with sim.injection_band():
            controller.apply(fault)
        sim.run(self.spec.t_end)
        if self._phase_s is not None:
            self._phase_s["restore"] += step_start - restore_start
            self._phase_s["step"] += perf_counter() - step_start

        probes = {
            name: _clone_trace(trace) for name, trace in design.probes.items()
        }
        metrics = {}
        for hook in self.metric_hooks:
            metrics.update(hook(design, fault))
        return probes, metrics, sim.events_executed - events_before

    # -- batched (ensemble) execution -------------------------------------------

    def _plan_batches(self, pending, mode="auto"):
        """Split pending fault indices into batches and scalar runs.

        Two batch kinds, both grouped by the golden checkpoint their
        faults restore (one restore serves the whole batch):

        * **analog** — current injections advance together as a
          vectorized ensemble.  Grouping is *cross-site*: variants on
          different nodes share the solver step, each saboteur's plan
          carrying per-variant currents (zero outside a variant's
          injection support).
        * **digital** — bit-flip-style mutants fork off one shared
          golden branch walk (see :meth:`run_batch_digital`).

        Per-run metric hooks need a live per-variant design, which a
        batch cannot provide, so campaigns with hooks stay entirely
        scalar.  Returns ``(batches, scalar_indices)`` where each
        batch is ``(kind, t_ckpt, indices)``; the plan is fully
        deterministic — groups are keyed by checkpoint time and
        ordered by (checkpoint, kind, first index), never by dict/hash
        order — so store row order and resume behaviour are stable
        across Python hash seeds.  Singleton groups run scalar — a
        batch of one is pure overhead.
        """
        if self.metric_hooks:
            return [], list(pending)
        analog_groups = {}
        digital_groups = {}
        scalar = []
        for index in sorted(pending):
            fault = self.spec.faults[index]
            if mode in ("auto", "analog") and batch_key(fault) is not None:
                t_ckpt, _snap = self._restore_point(fault)
                analog_groups.setdefault(t_ckpt, []).append(index)
            elif (
                mode in ("auto", "digital")
                and digital_batch_key(fault) is not None
            ):
                t_ckpt, _snap = self._restore_point(fault)
                digital_groups.setdefault(t_ckpt, []).append(index)
            else:
                scalar.append(index)
        batches = []
        for kind, groups in (
            ("analog", analog_groups), ("digital", digital_groups)
        ):
            for t_ckpt in sorted(groups):
                group = groups[t_ckpt]
                if len(group) > 1:
                    batches.append((kind, t_ckpt, group))
                else:
                    scalar.extend(group)
        batches.sort(key=lambda item: (item[1], item[0], item[2][0]))
        return batches, sorted(scalar)

    def _scaled_budget(self, k):
        """The per-variant run budget scaled to a whole ``k``-batch.

        A batched run does ~``k`` variants' work inside one
        ``sim.run`` call, so each ceiling multiplies by ``k``.  A trip
        aborts the whole batch, and every variant then re-runs scalar
        under its own unscaled budget — so budget *semantics* (and the
        resulting per-variant ``timeout`` classifications) stay
        exactly per-variant.
        """
        budget = self._budget
        if budget is None or budget.empty:
            return budget
        return RunBudget(
            max_wall_s=(budget.max_wall_s * k
                        if budget.max_wall_s is not None else None),
            max_events=(budget.max_events * k
                        if budget.max_events is not None else None),
            max_steps=(budget.max_steps * k
                       if budget.max_steps is not None else None),
        )

    def run_batch_warm(self, indices):
        """Execute one batch of same-site faults as a vectorized ensemble.

        One checkpoint restore serves all ``k`` variants; the analog
        solver then advances all of them per step (see
        :mod:`repro.core.ensemble`), while the digital side runs once,
        shared.  Variants whose digital or numerical behaviour
        diverges from the ensemble consensus *peel off* and re-run on
        the ordinary scalar warm path, so every reported result is
        bit-identical to its scalar run.

        Returns ``(completed, leftovers, info)``:

        * ``completed`` — ``(index, payload, wall_s)`` tuples whose
          payload matches :meth:`run_fault_warm`'s
          ``(probes, metrics, events)``; ``events`` is the batch's
          shared kernel-event count, which is what each variant's
          scalar run would have executed.
        * ``leftovers`` — indices that must re-run scalar (peeled
          variants, or all of ``indices`` when the batch fell back).
        * ``info`` — ``peeled`` count and ``fallback`` flag.
        """
        warm = self.prepare_warm()
        design = warm["design"]
        sim = design.sim
        faults = [(index, self.spec.faults[index]) for index in indices]
        k = len(faults)
        info = {"peeled": 0, "fallback": False}
        wall_start = perf_counter()

        _t_ckpt, snap = self._restore_point(faults[0][1])
        events_before = sim.events_executed
        sim.budget = self._scaled_budget(k)
        # The per-run flight recorder is a scalar-path instrument; a
        # leftover ring from a previous scalar run must not record (or
        # dump) ensemble steps.
        sim.analog.recorder = None
        ensemble = Ensemble(sim, k, guard=self._guard)
        try:
            self._ensure_restorable(warm, snap)
            sim.restore(snap)
            self._resplice_golden_prefixes(warm)
            for pos, (_index, fault) in enumerate(faults):
                ensemble.add_injection(
                    pos, warm["saboteurs"][fault.node], fault.transient,
                    fault.time,
                )
            ensemble.attach()
            try:
                sim.run(self.spec.t_end)
            except EnsembleDrainedError:
                pass
            finally:
                ensemble.detach()
        except Exception as exc:
            # The batch is strictly a fast path: *any* failure —
            # unsupported block, budget trip, solver error — demotes
            # the whole batch to scalar execution, where the ordinary
            # supervision machinery budgets, retries and attributes
            # failures per variant.  The next restore rewinds every
            # trace and state array the aborted batch touched.
            ensemble.detach()
            LOGGER.warning(
                "batch of %d variants fell back to scalar execution: %s",
                k, exc,
            )
            info["fallback"] = True
            return [], list(indices), info
        finally:
            sim.budget = None

        wall_s = perf_counter() - wall_start
        events = sim.events_executed - events_before
        survivors = ensemble.completed()
        info["peeled"] = len(ensemble.peeled)
        wall_each = wall_s / len(survivors) if survivors else 0.0
        completed = []
        for pos in survivors:
            index, _fault = faults[pos]
            probes = {
                name: ensemble.variant_trace(trace, pos)
                for name, trace in design.probes.items()
            }
            completed.append((index, (probes, {}, events), wall_each))
        leftovers = [faults[pos][0] for pos in sorted(ensemble.peeled)]
        return completed, leftovers, info

    def _horizon_times(self, flip_times):
        """Convergence comparison points past the last flip time.

        Geometric spacing starting at the flip grid's own granularity:
        most SEUs that heal do so within a few cycles of the last
        flip, so early points are dense; the doubling tail bounds the
        walk for stubborn mutants without giving up the early-out.
        """
        t_last = flip_times[-1]
        t_end = self.spec.t_end
        if t_last >= t_end:
            return []
        gaps = [
            b - a for a, b in zip(flip_times, flip_times[1:]) if b > a
        ]
        gap = min(gaps) if gaps else (t_end - t_last) / 256.0
        if gap <= 0.0:
            return []
        times = []
        t = t_last + gap
        while t < t_end and len(times) < MAX_HORIZON_POINTS:
            times.append(t)
            gap *= 2.0
            t = t_last + (times[-1] - t_last) + gap
        return times

    def run_batch_digital(self, indices):
        """Execute one batch of digital mutants along a golden branch walk.

        The copy-on-divergence strategy: the group's trunk checkpoint
        is restored once, then the *golden* trajectory is advanced
        time-ordered through every distinct flip time (plus a
        geometric convergence horizon), snapshotting each point as a
        branch node of the checkpoint tree.  Every mutant then costs
        one cheap restore of the branch node at exactly its flip time
        — the shared golden prefix is simulated once per batch, not
        once per mutant — and runs forward only until its state
        *re-converges* with a later branch snapshot
        (:meth:`~repro.core.snapshot.Snapshot.matches_live`): a flipped
        bit that is overwritten, shifted out or resynchronised puts
        the mutant back on the golden trajectory, so the rest of its
        traces is spliced from golden sample data — bit-identical by
        determinism — instead of simulated.  Mutants that never
        re-converge run to ``t_end`` exactly like a scalar warm start.

        With a run budget armed the whole batch falls back to scalar
        execution: budget ceilings are *per run call* over the restored
        suffix, and the branch walk both shortens that suffix (the
        restore lands exactly at the flip time) and would segment it
        across several run calls — either way a budget could trip
        differently than the scalar run it must classify like.

        Returns ``(completed, leftovers, info)`` shaped like
        :meth:`run_batch_warm`; ``info`` adds ``converged`` and
        ``branch_snapshots`` counts.
        """
        warm = self.prepare_warm()
        design = warm["design"]
        sim = design.sim
        tree = warm["tree"]
        faults = [(index, self.spec.faults[index]) for index in indices]
        info = {
            "peeled": 0, "fallback": False,
            "converged": 0, "branch_snapshots": 0,
        }
        if self._budget is not None and not self._budget.empty:
            info["fallback"] = True
            return [], list(indices), info

        by_time = {}
        for index, fault in faults:
            by_time.setdefault(_fault_schedule_time(fault), []).append(
                (index, fault)
            )
        flip_times = sorted(by_time)
        trunk = tree.trunk_at(flip_times[0])

        # Shared branch walk: golden work, never budgeted (mirrors the
        # unarmed golden run), one prefix re-splice for the whole batch.
        branch_nodes = []
        try:
            sim.budget = None
            sim.analog.recorder = None  # golden walk is never recorded
            self._reinflate_golden(warm)
            sim.restore(trunk.snapshot)
            parent = trunk
            for t_branch in flip_times + self._horizon_times(flip_times):
                sim.run(t_branch, inclusive=False)
                parent = tree.branch(parent, t_branch, sim.snapshot())
                branch_nodes.append(parent)
        except Exception as exc:
            if branch_nodes:
                tree.release(branch_nodes[0])
            self._reinflate_golden(warm)
            LOGGER.warning(
                "digital batch of %d mutants fell back to scalar "
                "execution: %s", len(faults), exc,
            )
            info["fallback"] = True
            return [], list(indices), info
        info["branch_snapshots"] = len(branch_nodes)

        completed = []
        leftovers = []
        try:
            for position, t_flip in enumerate(flip_times):
                node = branch_nodes[position]
                for index, fault in by_time[t_flip]:
                    wall_start = perf_counter()
                    events_before = sim.events_executed
                    try:
                        self._arm(sim)
                        self._reinflate_golden(warm)
                        sim.restore(node.snapshot)
                        controller = InjectionController(
                            sim, design.root, saboteurs=warm["saboteurs"]
                        )
                        with sim.injection_band():
                            controller.apply(fault)
                        converged = None
                        for later in branch_nodes[position + 1:]:
                            sim.run(later.time, inclusive=False)
                            if later.snapshot.matches_live(sim):
                                converged = later
                                break
                        if converged is not None:
                            info["converged"] += 1
                            probes = self._spliced_probes(
                                design, warm, converged.snapshot
                            )
                        else:
                            sim.run(self.spec.t_end)
                            probes = {
                                name: _clone_trace(trace)
                                for name, trace in design.probes.items()
                            }
                        payload = (
                            probes, {}, sim.events_executed - events_before
                        )
                        completed.append(
                            (index, payload, perf_counter() - wall_start)
                        )
                    except Exception as exc:
                        # One mutant's failure peels it to the scalar
                        # path (budget/guard trips classify there);
                        # the rest of the batch carries on.
                        LOGGER.warning(
                            "digital mutant %d peeled to scalar "
                            "execution: %s", index, exc,
                        )
                        info["peeled"] += 1
                        leftovers.append(index)
                    finally:
                        sim.budget = None
        finally:
            if branch_nodes:
                tree.release(branch_nodes[0])
            # Whatever state the last mutant left (possibly an
            # early-out mid-window), hand the next consumer — scalar
            # runs, other batches — restorable full-length traces.
            self._reinflate_golden(warm)
        return completed, leftovers, info

    def _spliced_probes(self, design, warm, snapshot):
        """Probe clones for a mutant that re-converged at ``snapshot``.

        Each probe trace currently holds the mutant's samples up to
        the convergence boundary; the tail is the golden sample data
        beyond the *golden* trace length recorded in the convergence
        snapshot (the two lengths may differ — a healed mutant
        legitimately recorded extra toggles in its divergence window).
        """
        lengths = {
            id(trace): length for trace, length in snapshot.trace_lengths
        }
        golden_by_id = warm["golden_by_id"]
        probes = {}
        for name, trace in design.probes.items():
            dup = _clone_trace(trace)
            times, values = golden_by_id[id(trace)]
            cut = lengths[id(trace)]
            dup._times.extend(times[cut:])
            dup._values.extend(values[cut:])
            dup._cache = None
            probes[name] = dup
        return probes

    def _batched_outcomes(self, pending, on_error, mode="auto"):
        """Outcome stream for batched execution.

        Batches run first — analog ensembles and digital branch walks
        interleaved in deterministic plan order; their peeled variants
        and every unbatchable fault then drain through the ordinary
        scalar serial stream (same retry/supervision semantics).
        Yields the same ``(index, ok, payload, wall_s, attempts)``
        tuples as :meth:`_serial_outcomes`.
        """
        registry = _metrics.REGISTRY
        stats = self._batch_stats
        batches, scalar = self._plan_batches(pending, mode)
        for position, (kind, t_ckpt, indices) in enumerate(batches):
            if self.progress is not None:
                self.progress(
                    position, len(batches), self.spec.faults[indices[0]]
                )
            _journal.emit(
                "batch_planned", kind=kind, size=len(indices),
                t_ckpt=t_ckpt, position=position, batches=len(batches),
            )
            with _tracer.TRACER.span(
                "campaign.batch", kind=kind, size=len(indices),
                t_ckpt=t_ckpt,
            ):
                if kind == "digital":
                    completed, leftovers, info = self.run_batch_digital(
                        indices
                    )
                else:
                    completed, leftovers, info = self.run_batch_warm(indices)
            stats["batches"] += 1
            stats[f"{kind}_batches"] += 1
            stats["batched_runs"] += len(completed)
            stats["peeled"] += info["peeled"]
            stats["converged"] += info.get("converged", 0)
            stats["branch_snapshots"] += info.get("branch_snapshots", 0)
            registry.inc("campaign.batch.count")
            registry.inc(f"campaign.batch.{kind}")
            registry.observe("campaign.batch.size", len(indices))
            if info["peeled"]:
                registry.inc("campaign.batch.peeled", info["peeled"])
            if info.get("converged"):
                registry.inc("campaign.batch.converged", info["converged"])
            if info["fallback"]:
                stats["fallbacks"] += 1
                registry.inc("campaign.batch.fallback")
            registry.inc("campaign.runs.batched", len(completed))
            for index, payload, wall_s in completed:
                yield index, True, payload, wall_s, 1
            scalar.extend(leftovers)
            # The parent consumed (classified, stored) this batch's
            # outcomes before the generator resumed: flush them as one
            # store transaction.
            if self._flush_store is not None:
                self._flush_store()
        remaining = sorted(scalar)
        stats["scalar_runs"] += len(remaining)
        if remaining:
            registry.inc("campaign.runs.scalar", len(remaining))
        for outcome in self._serial_outcomes(remaining, True, on_error):
            yield outcome
            # One row per transaction on the scalar tail — the same
            # crash-durability record_run gives unbatched campaigns.
            if self._flush_store is not None:
                self._flush_store()

    # -- the campaign -----------------------------------------------------------

    def _evaluate(self, golden_probes, fault, faulty_probes, metrics):
        comparisons = compare_probe_sets(
            golden_probes,
            faulty_probes,
            tolerances=self.spec.tolerances,
            analog_tolerance=self.spec.analog_tolerance,
            time_tolerances=self.spec.time_tolerances,
            t0=self.spec.compare_from,
            t1=self.spec.t_end,
            grid_cache=self._grid_cache,
        )
        classification = classify(comparisons, self.spec.outputs)
        return FaultResult(
            fault=fault,
            classification=classification,
            comparisons=comparisons,
            metrics=metrics,
        )

    def _execute_one(self, fault):
        """Run one faulty simulation; returns (probes, metrics, events).

        Used both in-process and as the body of a worker process —
        only picklable data (traces, metric dicts, counters) crosses
        the boundary in the parallel case.
        """
        design, _controller = self.run_fault(fault)
        metrics = {}
        for hook in self.metric_hooks:
            metrics.update(hook(design, fault))
        return design.probes, metrics, design.sim.events_executed

    @staticmethod
    def _fork_context():
        """The ``fork`` multiprocessing context, or None when missing.

        Workers inherit the active runner (and warm state) by fork;
        ``spawn``/``forkserver`` cannot reproduce that, so platforms
        without ``fork`` degrade gracefully to serial execution (the
        caller logs the downgrade) instead of failing the campaign.
        """
        import multiprocessing

        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return None

    # -- outcome streams ---------------------------------------------------------

    def _serial_outcomes(self, pending, warm_start, on_error):
        """Yield ``(index, ok, payload, wall_s, attempts)`` per fault.

        ``payload`` is the ``(probes, metrics, events)`` tuple on
        success and ``(exception, status)`` on failure, where
        ``status`` is one of
        :data:`~repro.campaign.classify.FAILURE_STATUSES`.  Failed
        attempts are retried under the runner's retry policy before
        their terminal outcome is yielded.  With ``on_error="raise"``
        the first exception propagates untouched, preserving its type
        for callers.
        """
        tracer = _tracer.TRACER
        retry = self._retry
        for position, index in enumerate(pending):
            fault = self.spec.faults[index]
            if self.progress is not None:
                self.progress(position, len(pending), fault)
            attempt = 0
            while True:
                attempt += 1
                wall_start = perf_counter()
                _journal.emit(
                    "run_started", index=index, fault=fault.describe(),
                    attempt=attempt,
                )
                try:
                    with tracer.span(
                        "campaign.fault_run", index=index,
                        fault=fault.describe(), attempt=attempt,
                    ):
                        payload = (
                            self.run_fault_warm(fault)
                            if warm_start
                            else self._execute_one(fault)
                        )
                except Exception as exc:
                    wall_s = perf_counter() - wall_start
                    if on_error == "raise":
                        raise
                    status = classify_failure(exc)
                    self._dump_postmortem(index, fault, status, exc, attempt)
                    if retry is not None and attempt < retry.attempts:
                        _metrics.REGISTRY.inc("campaign.retries")
                        _journal.emit(
                            "retry", index=index, attempt=attempt,
                            delay_s=retry.delay(attempt), status=status,
                        )
                        sleep(retry.delay(attempt))
                        continue
                    yield index, False, (exc, status), wall_s, attempt
                    break
                yield index, True, payload, perf_counter() - wall_start, attempt
                break

    def _parallel_outcomes(self, pending, workers, warm_start, on_error,
                           context):
        """Stream supervised worker outcomes as they complete.

        Workers are forked (inheriting the factory, hooks and — warm —
        the golden design plus snapshots) and individually supervised:
        a dead worker is detected, attributed to the fault it was
        running and replaced; a worker that blows the per-fault
        deadline is killed.  Outcomes stream in *completion* order (the
        consumer re-sorts by index), so the parent classifies and
        persists each run while later runs are still simulating, and
        an interrupt loses at most the results still in flight.
        """
        global _ACTIVE_RUNNER
        body = _worker_execute_warm if warm_start else _worker_execute
        supervisor = WorkerSupervisor(
            context,
            body,
            workers,
            retry=self._retry if on_error == "collect" else None,
            deadline_s=(
                self._budget.max_wall_s if self._budget is not None else None
            ),
            monitor=self._worker_monitor,
        )
        _ACTIVE_RUNNER = self
        try:
            for position, outcome in enumerate(supervisor.outcomes(pending)):
                if self.progress is not None:
                    self.progress(
                        position, len(pending), self.spec.faults[outcome[0]]
                    )
                yield outcome
        finally:
            _ACTIVE_RUNNER = None

    def _sampled_outcomes(self, sampler, warm_start, on_error, batch,
                          batch_mode):
        """Outcome stream driven by a :class:`StratifiedSampler`.

        Chunks are drawn, simulated through the ordinary serial or
        batched inner stream, and closed with
        :meth:`~repro.campaign.sampling.StratifiedSampler.finish_chunk`
        — which is legal here because the parent consumer records each
        outcome into the sampler *before* this generator resumes (the
        same feedback discipline batched mode uses for store flushes).
        The stream ends the moment the pooled interval converges or
        the population runs dry.
        """
        journal_on = _journal.JOURNAL.enabled
        while True:
            chunk = sampler.next_chunk()
            if chunk is None:
                break
            if journal_on:
                _journal.emit(
                    "sample_chunk", chunk=chunk.ident,
                    round=chunk.round_index, size=len(chunk.indices),
                    pending=len(chunk.pending), trials=sampler.trials,
                )
            pending = list(chunk.pending)
            if pending:
                inner = (
                    self._batched_outcomes(pending, on_error, batch_mode)
                    if batch
                    else self._serial_outcomes(pending, warm_start, on_error)
                )
                for outcome in inner:
                    yield outcome
            if sampler.finish_chunk(chunk):
                break
        if sampler.finished:
            estimate, (low, high) = sampler.pooled()
            _journal.emit(
                "sampling_stopped", reason=sampler.reason,
                trials=sampler.trials, estimate=estimate,
                half_width=(high - low) / 2.0,
                skipped=sampler.population - sampler.simulated,
            )

    # -- the campaign -----------------------------------------------------------

    def run(
        self,
        workers=None,
        warm_start=False,
        batch=False,
        checkpoint_every=None,
        max_checkpoints=None,
        store=None,
        resume=False,
        on_error="raise",
        timeout=None,
        event_budget=None,
        budget=None,
        guard=_DEFAULT_GUARD,
        retries=None,
        retry=None,
        retry_quarantined=False,
        postmortem_dir=None,
        sample=False,
        margin=None,
        confidence=0.95,
        sample_seed=0,
        strata="site-phase",
        chunk=None,
    ):
        """Run golden + every (remaining) fault; returns a
        :class:`CampaignResult`.

        :param workers: when > 1 on a platform with ``fork``, faulty
            runs execute under a :class:`WorkerSupervisor` (each
            worker inherits the factory, hooks — and in warm mode the
            golden design with its snapshots — via fork; only probe
            traces and metric dicts are shipped back; dead workers are
            detected, attributed and replaced).  Comparison,
            classification and store writes always happen in the
            parent — the single writer — against the one golden run,
            streaming as results arrive.  Without ``fork`` the
            campaign logs a warning and runs serially.
        :param warm_start: restore golden checkpoints instead of
            re-simulating each fault from t=0 (see the module
            docstring for semantics and caveats).
        :param batch: batched execution mode (implies ``warm_start``).
            One of :data:`BATCH_MODES` — ``"auto"`` enables both batch
            kinds, ``"analog"`` / ``"digital"`` restrict to one,
            ``"off"`` disables; the legacy booleans still work
            (``True`` -> ``"auto"``, ``False`` -> ``"off"``).  Analog
            batches advance current-injection variants — cross-site —
            as one vectorized ensemble per checkpoint group, with
            divergent variants peeled off to the scalar path.  Digital
            batches fork bit-flip mutants off a shared golden branch
            walk (copy-on-divergence) and splice golden trace tails
            when a mutant's state re-converges (see
            :meth:`run_batch_digital`).  Either way results stay
            bit-identical to scalar execution.  Batched groups execute
            serially in the parent (the vectorization is the
            parallelism); leftover scalar runs follow serially too, so
            ``workers`` is ignored with a warning.  Campaigns with
            ``metric_hooks`` degrade to plain warm starts.
        :param checkpoint_every: checkpoint time granularity in
            seconds for warm starts (default: one checkpoint per
            distinct injection time, bounded by ``max_checkpoints``).
        :param max_checkpoints: ceiling on retained golden snapshots
            (default 64).
        :param store: optional
            :class:`~repro.store.CampaignStore`; every completed run
            is committed to it immediately.
        :param resume: with ``store``, skip faults the store already
            holds a successful run for (errored runs are retried).
            The stored fault list and golden traces are verified
            first, and previously stored runs are merged into the
            returned result, so a resumed campaign reports exactly
            like an uninterrupted one.
        :param on_error: ``"raise"`` (default) propagates the first
            per-fault simulation error; ``"collect"`` records it in
            :attr:`CampaignResult.errors` (and the store) and carries
            on with the remaining faults.
        :param timeout: per-fault wall-clock ceiling in seconds
            (accepts ``"30s"``).  Enforced cooperatively inside the
            kernel (:class:`~repro.core.errors.BudgetExceededError`
            -> ``timeout`` status) and, in parallel mode, by a hard
            supervisor kill a grace period later.
        :param event_budget: per-fault ceiling on kernel events.
        :param budget: a full :class:`~repro.core.budget.RunBudget`
            (overrides ``timeout``/``event_budget``).
        :param guard: a :class:`~repro.core.budget.NumericalGuard`
            armed on every faulty run (a fresh instance per design);
            defaults to ``NumericalGuard()``; pass ``None`` to disable.
        :param retries: extra attempts per failed fault before it is
            quarantined (default 1 retry with ``on_error="collect"``,
            none with ``"raise"``); 0 disables retries.
        :param retry: a full :class:`RetryPolicy` (overrides
            ``retries``).
        :param retry_quarantined: with ``resume``, re-run faults a
            previous execution quarantined instead of skipping them.
        :param postmortem_dir: directory for failure flight-recorder
            dumps.  When set, every faulty run carries a
            :class:`~repro.obs.flightrec.FlightRecorder`, and a run
            that fails (timeout/diverged/crashed/error) leaves a
            ``fault_NNNNN.postmortem.json`` there — referenced from
            its store row — with the last recorded solver steps, live
            node values, event-queue tail, fault parameters and budget
            state.  ``None`` (the default) disables recording.
        :param sample: confidence-bounded adaptive sampling — instead
            of enumerating every fault, draw stratified samples from
            the dictionary and **stop when the answer is known**: the
            campaign ends the moment the pooled Wilson interval
            half-width drops to ``margin`` at ``confidence`` (see
            :mod:`repro.campaign.sampling`).  Faults never simulated
            get ``skipped`` store rows; the sampling estimate lands in
            ``result.execution["sampling"]``.  Requires serial (or
            batched) execution — ``workers`` is ignored with a
            warning.
        :param margin: requested half-width of the pooled interval
            (e.g. ``0.005`` = ±0.5%).  Required with ``sample`` unless
            resuming a campaign whose store already holds a sampling
            configuration.
        :param confidence: interval confidence level (default 0.95).
        :param sample_seed: seed of the draw sequence; same seed (and
            faults/strata) -> row-identical campaign.
        :param strata: stratification mode — one of
            :data:`~repro.campaign.sampling.STRATA_MODES` or a
            callable ``fault -> label``.
        :param chunk: draws per convergence-evaluation chunk (default
            :data:`~repro.campaign.sampling.DEFAULT_CHUNK`).  Part of
            the draw sequence: resume verifies it against the store.
        """
        if on_error not in ("raise", "collect"):
            raise CampaignError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        if resume and store is None:
            raise CampaignError("resume=True requires a store")
        batch_mode = normalize_batch_mode(batch)
        batch = batch_mode != "off"
        if batch:
            # Batching is warm-start execution with a vectorized (or
            # branch-walked) inner loop; the checkpoints are what let
            # one restore serve a whole group.
            warm_start = True
            if self.metric_hooks:
                LOGGER.warning(
                    "batched execution disabled: metric hooks need a "
                    "live per-variant design; running plain warm starts"
                )
                batch = False
                batch_mode = "off"

        if budget is None and (timeout is not None or event_budget is not None):
            budget = RunBudget(max_wall_s=timeout, max_events=event_budget)
        self._budget = budget
        self._guard = NumericalGuard() if guard is _DEFAULT_GUARD else guard
        if retry is None and on_error == "collect":
            retry = RetryPolicy(
                attempts=1 + (retries if retries is not None else 1)
            )
        self._retry = retry if on_error == "collect" else None
        self._grid_cache = ComparisonGridCache()
        self._postmortem_dir = (
            None if postmortem_dir is None else str(postmortem_dir)
        )
        self._phase_s = {
            "restore": 0.0, "step": 0.0, "classify": 0.0, "store_write": 0.0,
        }
        self._batch_stats = {
            "mode": batch_mode,
            "batches": 0, "analog_batches": 0, "digital_batches": 0,
            "batched_runs": 0, "peeled": 0, "converged": 0,
            "branch_snapshots": 0, "fallbacks": 0, "scalar_runs": 0,
        }

        wall_start = perf_counter()
        total = len(self.spec.faults)
        campaign_id = None
        pending = list(range(total))
        if store is not None:
            campaign_id = store.open_campaign(self.spec, resume=resume)
            if resume:
                pending = store.pending_indices(
                    campaign_id, total,
                    include_quarantined=retry_quarantined,
                )
            if _journal.JOURNAL.enabled:
                store.record_journal(
                    campaign_id, _journal.JOURNAL.path,
                    _journal.JOURNAL.session_offset,
                )

        sampler = None
        if store is not None and resume and not sample:
            # A stored sampling configuration makes --resume continue
            # the sampled campaign without restating the flags.
            stored_cfg = store.sampling_config(campaign_id)
            if stored_cfg is not None:
                sample = True
                margin = stored_cfg["margin"]
                confidence = stored_cfg["confidence"]
                sample_seed = stored_cfg["seed"]
                strata = stored_cfg["strata"]
                chunk = stored_cfg["chunk"]
        if sample:
            if margin is None:
                raise CampaignError(
                    "sampled campaigns need a margin (e.g. margin=0.005)"
                )
            if chunk is None:
                chunk = DEFAULT_CHUNK
            stored_map = None
            if store is not None:
                # The configuration IS the draw sequence; first write
                # records it, a resume verifies it (StoreError on any
                # drift).  Callable strata persist as "custom" — the
                # caller must supply the same callable again on resume.
                store.record_sampling(
                    campaign_id, sample_seed, margin, confidence,
                    strata if isinstance(strata, str) else "custom",
                    chunk,
                )
                if resume:
                    stored_map = stored_outcomes(
                        store.run_rows(campaign_id)
                    )
            sampler = StratifiedSampler(
                self.spec.faults,
                margin=margin,
                confidence=confidence,
                seed=sample_seed,
                strata=strata,
                chunk=chunk,
                stored=stored_map,
            )
            # In sampled mode the sampler, not pending_indices, owns
            # the execution order; "pending" is every fault without a
            # replayed outcome (what could still be drawn).
            replayed = stored_map or {}
            pending = [
                index for index in range(total) if index not in replayed
            ]

        if warm_start:
            warm = self.prepare_warm(checkpoint_every, max_checkpoints)
            golden_probes = warm["golden_probes"]
            golden_events = warm["golden_events"]
            checkpoints = len(warm["snapshots"])
        else:
            golden = self.run_golden()
            golden_probes = golden.probes
            golden_events = golden.sim.events_executed
            checkpoints = 0
        if store is not None:
            store.check_golden(campaign_id, golden_probes)

        parallel = workers is not None and workers > 1 and len(pending) > 1
        if sampler is not None and parallel:
            LOGGER.warning(
                "adaptive sampling evaluates convergence at chunk "
                "boundaries in draw order; running serially — ignoring "
                "workers=%d (use repro.dist for sampled fan-out)", workers,
            )
            parallel = False
        if batch and parallel:
            LOGGER.warning(
                "batched execution requested with workers=%d; batching "
                "runs serially in the parent (the vectorization is the "
                "parallelism) — ignoring workers", workers,
            )
            parallel = False
        context = None
        if parallel:
            context = self._fork_context()
            if context is None:
                LOGGER.warning(
                    "parallel campaign requested (workers=%d) but the "
                    "'fork' start method is unavailable on this platform; "
                    "falling back to serial execution", workers,
                )
                parallel = False
        mode = "batched" if batch else ("warm" if warm_start else "cold")
        if sampler is not None:
            mode = f"sampled-{mode}"
        _journal.emit(
            "campaign_started", name=self.spec.name, total=total,
            pending=len(pending), mode=mode,
            workers=workers if parallel else 1, resume=bool(resume),
        )
        if parallel:
            self._worker_monitor = self._build_worker_monitor(
                store, campaign_id
            )
        if sampler is not None:
            outcomes = self._sampled_outcomes(
                sampler, warm_start, on_error, batch, batch_mode
            )
        elif batch:
            outcomes = self._batched_outcomes(pending, on_error, batch_mode)
        elif parallel:
            outcomes = self._parallel_outcomes(
                pending, workers, warm_start, on_error, context
            )
        else:
            outcomes = self._serial_outcomes(pending, warm_start, on_error)

        registry = _metrics.REGISTRY
        result = CampaignResult(self.spec, golden_probes=golden_probes)
        new_runs = {}
        errors = []
        fault_events = 0
        retried = 0
        failure_tally = {RUN_TIMEOUT: 0, RUN_DIVERGED: 0, RUN_CRASHED: 0}
        # In batched mode successful rows are buffered and committed in
        # one transaction per batch (the outcome generator triggers the
        # flush at each batch boundary); the finally clause guarantees
        # nothing already classified is lost to a late error.
        store_rows = []

        def _flush_rows():
            if store is not None and store_rows:
                store.record_runs(campaign_id, store_rows)
                store_rows.clear()

        phases = self._phase_s

        def _flush_timed():
            flush_start = perf_counter()
            _flush_rows()
            phases["store_write"] += perf_counter() - flush_start

        self._flush_store = _flush_timed if batch else None
        try:
            for index, ok, payload, wall_s, attempts in outcomes:
                fault = self.spec.faults[index]
                stratum = (
                    sampler.stratum_of(index) if sampler is not None else None
                )
                retried += attempts - 1
                if not ok:
                    exc, status = payload
                    if sampler is not None:
                        # Failed runs are excluded from estimate
                        # trials but still consume their draw.
                        sampler.record(index, None)
                    if on_error == "raise":
                        raise exc
                    quarantined = (
                        self._retry is not None
                        and attempts >= self._retry.attempts
                    )
                    message = f"{type(exc).__name__}: {exc}"
                    postmortem = self._find_postmortem(index)
                    errors.append(CampaignRunError(
                        index, fault, message,
                        status=status, attempts=attempts,
                        quarantined=quarantined, postmortem=postmortem,
                    ))
                    registry.inc("campaign.errors")
                    if status in failure_tally:
                        failure_tally[status] += 1
                        registry.inc(f"campaign.{status}")
                    if quarantined:
                        registry.inc("campaign.quarantined")
                        _journal.emit(
                            "quarantined", index=index, status=status,
                            attempts=attempts,
                        )
                    _journal.emit(
                        "run_finished", index=index, status=status,
                        label=None, wall_s=round(wall_s, 6),
                        attempts=attempts,
                    )
                    if store is not None:
                        write_start = perf_counter()
                        store.record_error(
                            campaign_id, index, message, wall_s,
                            status=status, attempts=attempts,
                            quarantined=quarantined, postmortem=postmortem,
                            stratum=stratum,
                        )
                        phases["store_write"] += perf_counter() - write_start
                    continue
                probes, metrics, events = payload
                fault_events += events
                classify_start = perf_counter()
                run_result = self._evaluate(
                    golden_probes, fault, probes, metrics
                )
                phases["classify"] += perf_counter() - classify_start
                new_runs[index] = run_result
                if sampler is not None:
                    sampler.record(index, run_result.label != SILENT)
                registry.inc("campaign.runs")
                registry.inc(f"campaign.class.{run_result.label}")
                registry.observe("campaign.run_wall_s", wall_s)
                _journal.emit(
                    "run_finished", index=index, status="ok",
                    label=run_result.label, wall_s=round(wall_s, 6),
                    attempts=attempts,
                )
                if store is not None:
                    if batch:
                        store_rows.append(
                            (index, run_result, wall_s, events, attempts,
                             stratum)
                        )
                    else:
                        write_start = perf_counter()
                        store.record_run(
                            campaign_id, index, run_result,
                            wall_s=wall_s, kernel_events=events,
                            attempts=attempts, stratum=stratum,
                        )
                        phases["store_write"] += perf_counter() - write_start
        finally:
            _flush_rows()
            self._flush_store = None
            self._worker_monitor = None
        if retried:
            registry.inc("campaign.retried_runs", retried)
        session_error_indices = {err.index for err in errors}

        if sampler is not None and sampler.finished and store is not None:
            # One transaction marks everything the early stop saved:
            # "skipped" rows are distinguishable from "not sampled"
            # (no row at all — the campaign died before converging).
            write_start = perf_counter()
            store.record_skipped(campaign_id, [
                (index, sampler.stratum_of(index))
                for index in sampler.skipped_indices()
            ])
            phases["store_write"] += perf_counter() - write_start

        merged = dict(new_runs)
        if store is not None and resume:
            # Previously completed runs come back from the store with
            # the live spec's fault instances, so the merged result is
            # indistinguishable from an uninterrupted campaign.
            stored = store.load_runs(campaign_id, self.spec.faults)
            for index, stored_run in stored.items():
                merged.setdefault(index, stored_run)
            # Quarantined faults that were skipped this execution keep
            # their stored terminal error, so the merged result still
            # accounts for every fault in the spec.
            fresh = {err.index for err in errors}
            for stored_err in store.load_errors(campaign_id, self.spec.faults):
                if (
                    stored_err.index not in fresh
                    and stored_err.index not in merged
                ):
                    errors.append(stored_err)
        errors.sort(key=lambda err: err.index)
        result.runs = [merged[index] for index in sorted(merged)]
        result.errors = errors

        result.execution = {
            "mode": mode,
            "workers": workers or 1,
            "checkpoints": checkpoints,
            "golden_events": golden_events,
            "fault_events": fault_events,
            "kernel_events": golden_events + fault_events,
            "wall_s": perf_counter() - wall_start,
            "completed": len(new_runs),
            "skipped": total - len(pending),
            "errors": len(errors),
            "retries": retried,
            "timeouts": failure_tally[RUN_TIMEOUT],
            "diverged": failure_tally[RUN_DIVERGED],
            "crashed": failure_tally[RUN_CRASHED],
            "quarantined": sum(1 for err in errors if err.quarantined),
        }
        if warm_start:
            attempted = pending
            if sampler is not None:
                # Only the faults this session actually simulated say
                # anything about checkpoint reuse.
                attempted = sorted(set(new_runs) | session_error_indices)
            hits = sum(
                1
                for index in attempted
                if self._restore_point(self.spec.faults[index])[0] > 0.0
            )
            result.execution["warm_hits"] = hits
            result.execution["warm_misses"] = len(attempted) - hits
            registry.inc("campaign.warm.hit", hits)
            registry.inc("campaign.warm.miss", len(attempted) - hits)
        if batch:
            result.execution["batch"] = dict(self._batch_stats)
        if sampler is not None:
            result.execution["sampling"] = sampler.summary()
        # Per-phase wall-time breakdown.  restore/step accrue inside
        # the process that simulates — the parent for serial and
        # batched campaigns; forked workers (whose accumulators die
        # with them) for parallel ones — so in parallel mode only the
        # parent-side classify/store_write phases are visible.
        result.execution["phases"] = {
            name: round(value, 6) for name, value in phases.items()
        }
        for name, value in phases.items():
            registry.observe(f"campaign.phase.{name}_s", value)
        if store is not None:
            store.record_execution(
                campaign_id,
                result.execution,
                status="complete" if not errors else "errors",
            )
        _journal.emit(
            "campaign_finished", name=self.spec.name,
            execution=result.execution,
        )
        return result


#: Runner a forked worker should execute against (fork-inherited).
_ACTIVE_RUNNER = None


def _picklable(exc):
    """The exception itself when it pickles, else a CampaignError twin."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return CampaignError(f"{type(exc).__name__}: {exc}")


def _worker_execute(index):
    """Worker body: run fault ``index`` of the inherited runner.

    Failures classify *inside the worker* (on the original exception,
    before any lossy pickling fallback) and ship as an
    ``(exception, status)`` payload — after the worker dumps its own
    flight recorder, which only it holds; the parent locates the dump
    by its deterministic path.
    """
    wall_start = perf_counter()
    runner = _ACTIVE_RUNNER
    fault = runner.spec.faults[index]
    try:
        payload = runner._execute_one(fault)
    except Exception as exc:
        status = classify_failure(exc)
        runner._dump_postmortem(index, fault, status, exc, None)
        return (
            index, False, (_picklable(exc), status),
            perf_counter() - wall_start,
        )
    return index, True, payload, perf_counter() - wall_start


def _worker_execute_warm(index):
    """Worker body: warm-start fault ``index`` from a checkpoint."""
    wall_start = perf_counter()
    runner = _ACTIVE_RUNNER
    fault = runner.spec.faults[index]
    try:
        payload = runner.run_fault_warm(fault)
    except Exception as exc:
        status = classify_failure(exc)
        runner._dump_postmortem(index, fault, status, exc, None)
        return (
            index, False, (_picklable(exc), status),
            perf_counter() - wall_start,
        )
    return index, True, payload, perf_counter() - wall_start


def run_campaign(
    factory,
    spec,
    metric_hooks=(),
    progress=None,
    workers=None,
    warm_start=False,
    batch=False,
    checkpoint_every=None,
    max_checkpoints=None,
    store=None,
    resume=False,
    on_error="raise",
    timeout=None,
    event_budget=None,
    budget=None,
    guard=_DEFAULT_GUARD,
    retries=None,
    retry=None,
    retry_quarantined=False,
    postmortem_dir=None,
    sample=False,
    margin=None,
    confidence=0.95,
    sample_seed=0,
    strata="site-phase",
    chunk=None,
):
    """Convenience wrapper: build a runner and run it."""
    return CampaignRunner(
        factory, spec, metric_hooks=metric_hooks, progress=progress
    ).run(
        workers=workers,
        warm_start=warm_start,
        batch=batch,
        checkpoint_every=checkpoint_every,
        max_checkpoints=max_checkpoints,
        store=store,
        resume=resume,
        on_error=on_error,
        timeout=timeout,
        event_budget=event_budget,
        budget=budget,
        guard=guard,
        retries=retries,
        retry=retry,
        retry_quarantined=retry_quarantined,
        postmortem_dir=postmortem_dir,
        sample=sample,
        margin=margin,
        confidence=confidence,
        sample_seed=sample_seed,
        strata=strata,
        chunk=chunk,
    )
