"""Campaign execution.

Runs the full flow of Figures 2 and 3: a golden reference simulation,
then one fresh, instrumented simulation per fault, each compared and
classified against the golden traces.

The user supplies a **design factory**: a zero-argument callable
returning a :class:`Design` — a freshly built circuit with its probes.
Rebuilding per run guarantees runs are independent (no state leaks
between injections), the simulation-based equivalent of reloading the
emulator bitstream between experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import CampaignError
from ..injection.controller import InjectionController
from .classify import classify
from .compare import compare_probe_sets
from .results import CampaignResult, FaultResult


@dataclass
class Design:
    """A freshly elaborated design under test.

    :ivar sim: the simulator, not yet run.
    :ivar root: hierarchy root component (mutant/state lookup scope).
    :ivar probes: mapping name -> :class:`Trace`, created before the
        run; must be identical between golden and faulty elaborations.
    :ivar extras: anything the factory wants to expose to per-run
        metric hooks (block references, nodes...).
    """

    sim: object
    root: object
    probes: dict
    extras: dict = field(default_factory=dict)


class CampaignRunner:
    """Executes a :class:`CampaignSpec` against a design factory.

    :param factory: zero-argument callable returning a :class:`Design`.
    :param spec: the campaign specification.
    :param metric_hooks: optional callables
        ``(design, fault) -> dict`` evaluated after each faulty run;
        their merged results land in :attr:`FaultResult.metrics`.
    :param progress: optional callable ``(index, total, fault)`` for
        progress reporting.
    """

    def __init__(self, factory, spec, metric_hooks=(), progress=None):
        self.factory = factory
        self.spec = spec
        self.metric_hooks = list(metric_hooks)
        self.progress = progress
        self._shared_windows = self._collect_windows(spec.faults)

    @staticmethod
    def _collect_windows(faults):
        """Union of the solver refinement windows all faults will need.

        Analog injections refine the solver timestep around the pulse;
        if only the faulty run refined, golden and faulty runs would
        integrate on *different* grids and diverge numerically even
        for a negligible pulse.  Pre-applying every fault's window to
        every run (golden included) keeps the grids identical, so any
        observed difference is caused by the fault alone.
        """
        from ..injection.saboteur import CurrentPulseSaboteur
        from ..injection.controller import CurrentInjection

        windows = []
        for fault in faults:
            if isinstance(fault, CurrentInjection):
                windows.append(
                    CurrentPulseSaboteur.window_for(fault.transient, fault.time)
                )
        return windows

    def _apply_shared_windows(self, design):
        for t0, t1, dt in self._shared_windows:
            design.sim.analog.add_refinement_window(t0, t1, dt)

    # -- individual runs ------------------------------------------------------

    def run_golden(self):
        """Execute the fault-free reference run; returns its probes."""
        design = self.factory()
        self._check_probes(design, self.spec.outputs)
        self._apply_shared_windows(design)
        design.sim.run(self.spec.t_end)
        return design

    def run_fault(self, fault):
        """Execute one faulty run; returns ``(design, controller)``."""
        design = self.factory()
        self._apply_shared_windows(design)
        controller = InjectionController(design.sim, design.root)
        controller.apply(fault)
        design.sim.run(self.spec.t_end)
        return design, controller

    @staticmethod
    def _check_probes(design, outputs):
        missing = [name for name in outputs if name not in design.probes]
        if missing:
            raise CampaignError(
                f"design factory does not probe declared outputs: {missing}"
            )

    # -- the campaign -----------------------------------------------------------

    def _evaluate(self, golden_probes, fault, faulty_probes, metrics):
        comparisons = compare_probe_sets(
            golden_probes,
            faulty_probes,
            tolerances=self.spec.tolerances,
            analog_tolerance=self.spec.analog_tolerance,
            time_tolerances=self.spec.time_tolerances,
            t0=self.spec.compare_from,
            t1=self.spec.t_end,
        )
        classification = classify(comparisons, self.spec.outputs)
        return FaultResult(
            fault=fault,
            classification=classification,
            comparisons=comparisons,
            metrics=metrics,
        )

    def _execute_one(self, fault):
        """Run one faulty simulation; returns (probes, metrics).

        Used both in-process and as the body of a worker process —
        only picklable data (traces, metric dicts) crosses the
        boundary in the parallel case.
        """
        design, _controller = self.run_fault(fault)
        metrics = {}
        for hook in self.metric_hooks:
            metrics.update(hook(design, fault))
        return design.probes, metrics

    def run(self, workers=None):
        """Run golden + every fault; returns a :class:`CampaignResult`.

        :param workers: when > 1 on a platform with ``fork``, faulty
            runs execute in a process pool (each worker inherits the
            factory and hooks via fork; only probe traces and metric
            dicts are shipped back).  Comparison and classification
            always happen in the parent, against the one golden run.
        """
        golden = self.run_golden()
        result = CampaignResult(self.spec, golden_probes=golden.probes)
        total = len(self.spec.faults)

        if workers is not None and workers > 1 and total > 1:
            import multiprocessing

            global _ACTIVE_RUNNER
            try:
                context = multiprocessing.get_context("fork")
            except ValueError as exc:
                raise CampaignError(
                    "parallel campaigns need the 'fork' start method"
                ) from exc
            # Workers inherit this runner (factory, hooks and all)
            # through fork; only integer indices go out and picklable
            # (traces, metrics) results come back, so closures are
            # fine as factories and hooks.
            _ACTIVE_RUNNER = self
            try:
                with context.Pool(processes=workers) as pool:
                    outcomes = pool.map(_worker_execute, range(total))
            finally:
                _ACTIVE_RUNNER = None
            for index, (fault, (probes, metrics)) in enumerate(
                zip(self.spec.faults, outcomes)
            ):
                if self.progress is not None:
                    self.progress(index, total, fault)
                result.add(
                    self._evaluate(golden.probes, fault, probes, metrics)
                )
            return result

        for index, fault in enumerate(self.spec.faults):
            if self.progress is not None:
                self.progress(index, total, fault)
            probes, metrics = self._execute_one(fault)
            result.add(self._evaluate(golden.probes, fault, probes, metrics))
        return result


#: Runner a forked worker should execute against (fork-inherited).
_ACTIVE_RUNNER = None


def _worker_execute(index):
    """Pool worker body: run fault ``index`` of the inherited runner."""
    return _ACTIVE_RUNNER._execute_one(_ACTIVE_RUNNER.spec.faults[index])


def run_campaign(factory, spec, metric_hooks=(), progress=None, workers=None):
    """Convenience wrapper: build a runner and run it."""
    return CampaignRunner(
        factory, spec, metric_hooks=metric_hooks, progress=progress
    ).run(workers=workers)
