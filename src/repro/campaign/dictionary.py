"""Fault dictionaries: from campaign results to diagnosis.

A classical exploitation of injection campaigns the paper's flow
enables: store, for every injected fault, the *signature* it produced
(which monitored outputs diverged, in what order, how soon), then use
the dictionary in reverse — given a signature observed in the field or
on the tester, list the faults that could have caused it.  The
dictionary also quantifies **distinguishability**: faults sharing a
signature can never be told apart by the chosen observation points,
which tells the designer where more observability is needed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..core.errors import CampaignError


@dataclass(frozen=True)
class Signature:
    """A canonical, hashable fault signature.

    :ivar label: classification label of the run.
    :ivar diverged: sorted tuple of diverged probe names.
    :ivar order: probe names in first-divergence order.
    :ivar latency_bucket: first output divergence quantised to the
        bucket size (-1 when no output diverged).
    """

    label: str
    diverged: tuple
    order: tuple
    latency_bucket: int

    def describe(self):
        """One-line rendering for reports."""
        chain = " -> ".join(self.order) if self.order else "(none)"
        return f"[{self.label}] {chain} @bucket {self.latency_bucket}"


def signature_of(result_run, time_bucket=1e-6, include_order=True):
    """Build the :class:`Signature` of one :class:`FaultResult`.

    :param time_bucket: quantisation of the first-output-divergence
        time; coarser buckets merge more faults into one signature
        (trading diagnostic resolution for robustness).
    :param include_order: when False the divergence order is dropped
        from the signature (set membership only).
    """
    if time_bucket <= 0:
        raise CampaignError("time_bucket must be positive")
    comparisons = result_run.comparisons
    diverged = tuple(sorted(
        name for name, cmp_result in comparisons.items()
        if cmp_result.diverged
    ))
    ordered = tuple(
        name for _t, name in sorted(
            (cmp_result.first_divergence, name)
            for name, cmp_result in comparisons.items()
            if cmp_result.diverged
        )
    )
    first_out = result_run.classification.first_output_divergence
    bucket = -1 if first_out is None else int(first_out / time_bucket)
    return Signature(
        label=result_run.label,
        diverged=diverged,
        order=ordered if include_order else (),
        latency_bucket=bucket,
    )


class FaultDictionary:
    """Signature -> candidate-fault index over a campaign result.

    :param result: a :class:`~repro.campaign.results.CampaignResult`.
    :param time_bucket: see :func:`signature_of`.
    :param include_order: see :func:`signature_of`.
    """

    def __init__(self, result, time_bucket=1e-6, include_order=True):
        if len(result) == 0:
            raise CampaignError("cannot index an empty campaign")
        self.time_bucket = time_bucket
        self.include_order = include_order
        self._index = defaultdict(list)
        self._signature_by_fault = {}
        for run in result:
            signature = signature_of(run, time_bucket, include_order)
            self._index[signature].append(run.fault)
            self._signature_by_fault[id(run.fault)] = signature
        self.n_faults = len(result)

    # -- lookup ---------------------------------------------------------

    def signatures(self):
        """All distinct signatures, most populous first.

        Ties break on the signature fields themselves (label, diverged
        set, order, latency bucket) so the listing is deterministic
        across processes and Python hash seeds — equally populous
        signatures would otherwise come back in dict-insertion order,
        which batch planning and resume can legitimately permute.
        """
        return sorted(
            self._index,
            key=lambda s: (
                -len(self._index[s]),
                s.label, s.diverged, s.order, s.latency_bucket,
            ),
        )

    def candidates(self, signature):
        """Faults that produced ``signature`` (empty list if unseen)."""
        return list(self._index.get(signature, []))

    def signature_for(self, fault):
        """The signature a (previously indexed) fault produced.

        :raises CampaignError: for faults not in the campaign.
        """
        try:
            return self._signature_by_fault[id(fault)]
        except KeyError:
            raise CampaignError(
                f"fault {fault!r} was not part of the indexed campaign"
            ) from None

    def diagnose(self, signature):
        """Candidates plus the ambiguity count: ``(faults, n)``."""
        faults = self.candidates(signature)
        return faults, len(faults)

    # -- quality metrics --------------------------------------------------------

    def distinguishability(self):
        """Fraction of faults with a *unique* signature.

        1.0 means the observation points fully diagnose every injected
        fault; low values mean more observability is needed.
        """
        unique = sum(
            1 for faults in self._index.values() if len(faults) == 1
        )
        return unique / self.n_faults

    def ambiguity_histogram(self):
        """Mapping equivalence-class size -> number of classes."""
        histogram = defaultdict(int)
        for faults in self._index.values():
            histogram[len(faults)] += 1
        return dict(histogram)

    def largest_ambiguity_class(self):
        """The signature shared by the most faults: ``(sig, faults)``."""
        signature = max(self._index, key=lambda s: len(self._index[s]))
        return signature, list(self._index[signature])

    def to_dict(self):
        """JSON-ready export of the dictionary.

        Used to publish dictionaries built from a campaign store
        (``repro campaign report --from-db``) to downstream tooling;
        faults are referenced by their ``describe()`` line.
        """
        return {
            "n_faults": self.n_faults,
            "time_bucket": self.time_bucket,
            "include_order": self.include_order,
            "distinguishability": self.distinguishability(),
            "signatures": [
                {
                    "label": signature.label,
                    "diverged": list(signature.diverged),
                    "order": list(signature.order),
                    "latency_bucket": signature.latency_bucket,
                    "faults": [
                        fault if isinstance(fault, str)
                        else fault.describe()
                        for fault in self._index[signature]
                    ],
                }
                for signature in self.signatures()
            ],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a dictionary from :meth:`to_dict` output.

        The inverse direction of the publish path: downstream tooling
        (or a later session diagnosing field signatures) reloads the
        exported JSON and gets lookup, metrics and reports back
        without the campaign result.  Faults come back as their
        ``describe()`` strings — the export's fault identity — so
        :meth:`candidates` returns strings here, and
        :meth:`signature_for` (which needs live fault instances) is
        unavailable.  The round trip is exact:
        ``FaultDictionary.from_dict(d).to_dict() == d``, including
        :meth:`signatures` ordering.

        :raises CampaignError: on malformed exports.
        """
        try:
            dictionary = cls.__new__(cls)
            dictionary.time_bucket = data["time_bucket"]
            dictionary.include_order = data["include_order"]
            dictionary.n_faults = data["n_faults"]
            dictionary._index = defaultdict(list)
            dictionary._signature_by_fault = {}
            for entry in data["signatures"]:
                signature = Signature(
                    label=entry["label"],
                    diverged=tuple(entry["diverged"]),
                    order=tuple(entry["order"]),
                    latency_bucket=entry["latency_bucket"],
                )
                dictionary._index[signature] = list(entry["faults"])
        except (KeyError, TypeError) as exc:
            raise CampaignError(
                f"malformed fault-dictionary export: {exc}"
            ) from exc
        return dictionary

    def report(self, limit=10):
        """Text report of the dictionary's diagnostic power."""
        lines = [
            f"fault dictionary: {self.n_faults} faults, "
            f"{len(self._index)} distinct signatures",
            f"distinguishability: {self.distinguishability():.1%} of "
            "faults uniquely diagnosable",
            "signature population (largest first):",
        ]
        for signature in self.signatures()[:limit]:
            count = len(self._index[signature])
            lines.append(f"  {count:4d}x {signature.describe()}")
        if len(self._index) > limit:
            lines.append(f"  ... ({len(self._index) - limit} more)")
        return "\n".join(lines)
