"""Supervised worker-pool execution with retry and quarantine.

The bare ``multiprocessing.Pool.imap`` the campaign runner used to
fan out faulty runs had a fatal flaw for long campaigns: a worker that
dies (segfault, OOM kill, runaway simulation killed by the operator)
simply never reports, and ``imap`` blocks forever waiting for it.
Large fault-injection platforms (DAVOS, FsimNNs) treat hung and
crashed runs as *first-class outcomes*; this module brings the same
discipline to the simulation flow:

* each worker is a **directly supervised process** with a dedicated
  duplex pipe — the parent always knows which fault each worker is
  running, so a death is attributable;
* a worker whose pipe hits EOF mid-run is declared **crashed** (its
  exit code is recorded) and a replacement is forked;
* when a per-fault wall-clock deadline is configured, a worker that
  overruns it (plus a grace period for the kernel's own cooperative
  :class:`~repro.core.budget.RunBudget` to fire first) is killed and
  the fault is declared **timed out**;
* failed faults are **retried** with capped exponential backoff under a
  :class:`RetryPolicy`; when attempts are exhausted the fault is
  **quarantined** — a terminal, classified outcome, never a stalled
  campaign.

The supervisor is transport-only: it never interprets simulation
results.  Outcomes stream back to the single-writer parent exactly
like the serial path's, as ``(index, ok, payload, wall_s, attempts)``
tuples where a failure payload is ``(exception, status)``.
"""

from __future__ import annotations

import logging
import os
import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_ready
from time import monotonic, sleep

from ..core.errors import ReproError, WorkerCrashError
from ..obs import metrics as _metrics
from .classify import RUN_CRASHED, RUN_TIMEOUT

LOGGER = logging.getLogger("repro.campaign")

#: Default seconds between worker heartbeat messages.
DEFAULT_HEARTBEAT_S = 1.0

#: Worker-local run state the heartbeat thread reports.  The campaign
#: worker bodies update it (plain dict assignment — no locking needed
#: for a single-writer, single-reader flag) as a run moves through its
#: phases; fork gives every worker its own copy.
WORKER_PHASE = {"index": None, "phase": "idle"}


def set_worker_phase(phase, index=None):
    """Record the phase the current (worker) process is in."""
    WORKER_PHASE["phase"] = phase
    if index is not None:
        WORKER_PHASE["index"] = index


@dataclass(frozen=True)
class RetryPolicy:
    """How failed faulty runs are retried before quarantine.

    :ivar attempts: total attempts per fault (default 2 = one retry);
        1 disables retries.
    :ivar backoff_s: delay before the first retry, in seconds.
    :ivar backoff_cap_s: ceiling on the exponentially growing delay.
    """

    attempts: int = 2
    backoff_s: float = 0.25
    backoff_cap_s: float = 5.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ReproError(
                f"RetryPolicy.attempts must be >= 1, got {self.attempts!r}"
            )
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ReproError("RetryPolicy backoffs must be >= 0")

    def delay(self, failures):
        """Backoff before the next attempt after ``failures`` failures."""
        if failures < 1:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_s * 2 ** (failures - 1))


def _supervised_worker(conn, body, heartbeat_s=None):
    """Worker main loop: receive a fault index, run it, send the outcome.

    ``body`` catches per-run exceptions itself and folds them into the
    outcome tuple, so the only way this loop dies is a genuine process
    death — which the parent observes as EOF on ``conn``.

    With ``heartbeat_s`` set, a daemon thread periodically sends
    ``("hb", {...})`` liveness messages carrying the pid and the
    current :data:`WORKER_PHASE` (fault index + phase), so the parent
    can tell a *slow* run from a *wedged* one and attribute a kill to
    the exact phase it interrupted.  Outcome messages are tagged
    ``("result", ...)``; a lock serialises the two senders (reads and
    writes travel opposite directions on the duplex pipe, so the main
    thread's blocking ``recv`` never contends with a heartbeat send).
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def _heartbeat_loop():
        while not stop.wait(heartbeat_s):
            message = ("hb", {
                "pid": os.getpid(),
                "index": WORKER_PHASE["index"],
                "phase": WORKER_PHASE["phase"],
            })
            try:
                with send_lock:
                    conn.send(message)
            except (OSError, ValueError):
                return  # pipe gone: the worker is shutting down

    if heartbeat_s:
        threading.Thread(target=_heartbeat_loop, daemon=True).start()
    try:
        while True:
            try:
                task = conn.recv()
            except EOFError:
                break
            if task is None:
                break
            set_worker_phase("running", index=task)
            outcome = body(task)
            set_worker_phase("idle")
            WORKER_PHASE["index"] = None
            with send_lock:
                conn.send(("result", outcome))
    finally:
        stop.set()
        conn.close()


class _Worker:
    """Parent-side record of one supervised worker process."""

    __slots__ = ("process", "conn", "index", "attempt", "started_at",
                 "killed", "last_heartbeat", "heartbeat_at")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.index = None       # fault index in flight (None = idle)
        self.attempt = 0
        self.started_at = 0.0
        self.killed = False     # True when the supervisor killed it
        self.last_heartbeat = None   # most recent hb payload dict
        self.heartbeat_at = None     # monotonic() of that payload

    @property
    def busy(self):
        return self.index is not None


class WorkerSupervisor:
    """Fault-tolerant fan-out of campaign runs over forked workers.

    :param context: a ``fork`` multiprocessing context (workers inherit
        the active runner, design factory and warm state by fork).
    :param body: module-level callable ``(index) -> outcome tuple``;
        must catch run exceptions itself (see
        :func:`repro.campaign.runner._worker_execute`).
    :param workers: maximum concurrent worker processes.
    :param retry: optional :class:`RetryPolicy`; ``None`` fails each
        fault on its first bad attempt (``on_error="raise"`` mode).
    :param deadline_s: optional per-fault wall-clock deadline.  The
        kernel's cooperative budget should be the one to trip it; the
        supervisor hard-kills only ``kill_grace_s`` later, catching
        runs wedged inside a single native call.
    :param kill_grace_s: grace between the deadline and the hard kill.
    :param poll_s: result-poll granularity.
    :param heartbeat_s: seconds between worker liveness heartbeats
        (``None`` disables the heartbeat thread entirely).
    :param monitor: optional callable ``(event_dict)`` notified of
        worker lifecycle events — ``spawned``, ``task``,
        ``heartbeat``, ``died`` — with the worker pid and (where
        known) the fault index, phase and exit code.  The supervisor
        stays transport-only; the campaign runner's monitor turns
        these into journal events and store rows.
    """

    def __init__(self, context, body, workers, retry=None, deadline_s=None,
                 kill_grace_s=2.0, poll_s=0.05,
                 heartbeat_s=DEFAULT_HEARTBEAT_S, monitor=None):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers!r}")
        self.context = context
        self.body = body
        self.n_workers = workers
        self.retry = retry
        self.deadline_s = deadline_s
        self.kill_grace_s = kill_grace_s
        self.poll_s = poll_s
        self.heartbeat_s = heartbeat_s
        self.monitor = monitor

    def _notify(self, event, **fields):
        if self.monitor is None:
            return
        try:
            self.monitor(dict(event=event, **fields))
        except Exception:
            LOGGER.exception("worker monitor callback failed")

    # -- process management ------------------------------------------------

    def _spawn(self):
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=_supervised_worker,
            args=(child_conn, self.body, self.heartbeat_s),
            daemon=True,
        )
        process.start()
        # The parent must not hold the child's pipe end: the EOF that
        # signals a worker death only surfaces once *every* handle on
        # that end is closed.
        child_conn.close()
        self._notify("spawned", pid=process.pid)
        return _Worker(process, parent_conn)

    def _shutdown(self, workers):
        for worker in workers:
            if not worker.busy and worker.process.is_alive():
                try:
                    worker.conn.send(None)
                except OSError:
                    pass
        for worker in workers:
            worker.conn.close()
            worker.process.join(timeout=0.5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=0.5)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=0.5)

    # -- outcome stream ----------------------------------------------------

    def outcomes(self, pending):
        """Yield one terminal outcome per pending fault, as completed.

        Outcomes are ``(index, ok, payload, wall_s, attempts)`` in
        completion order (the campaign parent re-sorts by index).  The
        generator owns the worker processes; closing it (including via
        an exception in the consumer) tears them down.
        """
        queue = deque((index, 1) for index in pending)
        delayed = []            # (ready_at, index, attempt)
        workers = []
        remaining = len(pending)

        try:
            while remaining > 0:
                now = monotonic()

                # Promote retries whose backoff has expired.
                if delayed:
                    due = [item for item in delayed if item[0] <= now]
                    for item in due:
                        delayed.remove(item)
                        queue.append((item[1], item[2]))

                # Grow the pool lazily and hand tasks to idle workers.
                idle = [w for w in workers if not w.busy]
                while queue and not idle and len(workers) < self.n_workers:
                    worker = self._spawn()
                    workers.append(worker)
                    idle.append(worker)
                for worker in idle:
                    if not queue:
                        break
                    index, attempt = queue.popleft()
                    worker.index = index
                    worker.attempt = attempt
                    worker.started_at = monotonic()
                    worker.killed = False
                    try:
                        worker.conn.send(index)
                        self._notify("task", pid=worker.process.pid,
                                     index=index, attempt=attempt)
                    except (OSError, ValueError) as exc:
                        # Worker died before it ever took a task.
                        workers.remove(worker)
                        outcome = self._dispose(
                            delayed, index, attempt,
                            WorkerCrashError(
                                f"worker died before accepting fault "
                                f"{index}: {exc}",
                                exitcode=worker.process.exitcode,
                            ),
                            RUN_CRASHED, 0.0,
                        )
                        if outcome is not None:
                            remaining -= 1
                            yield outcome

                busy = [w for w in workers if w.busy]
                if not busy:
                    if queue or delayed:
                        # Only delayed retries left; nap until one is due.
                        sleep(self.poll_s)
                        continue
                    break  # defensive: nothing in flight, nothing queued

                # Harvest whatever is ready (results or worker EOFs).
                ready = _wait_ready(
                    [w.conn for w in busy], timeout=self.poll_s
                )
                by_conn = {w.conn: w for w in busy}
                for conn in ready:
                    worker = by_conn[conn]
                    outcome = self._harvest(workers, delayed, worker)
                    if outcome is not None:
                        remaining -= 1
                        yield outcome

                # Enforce the hard per-fault deadline.
                if self.deadline_s is not None:
                    limit = self.deadline_s + self.kill_grace_s
                    now = monotonic()
                    for worker in workers:
                        if (
                            worker.busy
                            and not worker.killed
                            and now - worker.started_at > limit
                        ):
                            LOGGER.warning(
                                "killing worker pid=%s: fault %d exceeded "
                                "its %.3gs deadline",
                                worker.process.pid, worker.index, limit,
                            )
                            worker.killed = True
                            worker.process.kill()
        finally:
            self._shutdown(workers)

    def _harvest(self, workers, delayed, worker):
        """Collect one ready message (or death) from ``worker``.

        Returns a terminal outcome tuple, or None when the fault was
        rescheduled for retry.
        """
        index, attempt = worker.index, worker.attempt
        wall_s = monotonic() - worker.started_at
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died mid-run: attribute the death to the fault
            # it was executing, then replace the process.
            workers.remove(worker)
            worker.conn.close()
            worker.process.join(timeout=1.0)
            exitcode = worker.process.exitcode
            if worker.killed:
                status = RUN_TIMEOUT
                error = WorkerCrashError(
                    f"worker killed after fault {index} exceeded its "
                    f"{self.deadline_s:.3g}s deadline "
                    f"(wall {wall_s:.3g}s)",
                    exitcode=exitcode,
                )
            else:
                status = RUN_CRASHED
                error = WorkerCrashError(
                    f"worker running fault {index} died "
                    f"(exitcode {exitcode})",
                    exitcode=exitcode,
                )
            LOGGER.warning("%s", error)
            _metrics.REGISTRY.inc("campaign.worker_deaths")
            self._notify(
                "died", pid=worker.process.pid, index=index,
                attempt=attempt, exitcode=exitcode, killed=worker.killed,
                status=status, last_heartbeat=worker.last_heartbeat,
            )
            return self._dispose(delayed, index, attempt, error, status,
                                 wall_s)

        tag, result = message
        if tag == "hb":
            # Liveness only: the worker stays busy on its fault.
            worker.last_heartbeat = result
            worker.heartbeat_at = monotonic()
            self._notify("heartbeat", **result)
            return None

        worker.index = None  # idle again
        r_index, ok, payload, r_wall = result
        if ok:
            return r_index, True, payload, r_wall, attempt
        exc, status = payload
        return self._dispose(delayed, r_index, attempt, exc, status, r_wall)

    def _dispose(self, delayed, index, attempt, exc, status, wall_s):
        """Retry a failed attempt, or return its terminal outcome."""
        if self.retry is not None and attempt < self.retry.attempts:
            _metrics.REGISTRY.inc("campaign.retries")
            self._notify("retry", index=index, attempt=attempt,
                         delay_s=self.retry.delay(attempt), status=status)
            delayed.append(
                (monotonic() + self.retry.delay(attempt), index, attempt + 1)
            )
            return None
        return index, False, (exc, status), wall_s, attempt
