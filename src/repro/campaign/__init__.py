"""Campaign engine: specification, fault lists, execution, analysis."""

from .classify import (
    CLASSES,
    FAILURE,
    LATENT,
    SEVERITY,
    SILENT,
    TRANSIENT_ERROR,
    Classification,
    classify,
)
from .compare import TraceComparison, compare_probe_sets, compare_traces
from .dictionary import FaultDictionary, Signature, signature_of
from .faultlist import (
    analog_injections,
    cycle_times,
    exhaustive_bitflips,
    intra_cycle_times,
    random_analog_injections,
    random_bitflips,
    random_mbus,
    sample,
    set_sweep,
)
from .propagation import (
    ORIGIN,
    build_propagation_graph,
    divergence_order,
    dominant_paths,
    format_propagation_report,
    propagation_path,
    reachable_outputs,
)
from .report import (
    classification_summary,
    fault_listing,
    full_report,
    per_target_table,
    to_csv,
)
from .results import CampaignResult, FaultResult
from .runner import CampaignRunner, Design, run_campaign
from .spec import CampaignSpec
from .stats import (
    clopper_pearson_interval,
    estimate_error_rate,
    required_sample_size,
    wilson_interval,
)

__all__ = [
    "CLASSES",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "Classification",
    "Design",
    "FAILURE",
    "FaultDictionary",
    "FaultResult",
    "LATENT",
    "ORIGIN",
    "SEVERITY",
    "SILENT",
    "Signature",
    "TRANSIENT_ERROR",
    "TraceComparison",
    "analog_injections",
    "build_propagation_graph",
    "classification_summary",
    "classify",
    "clopper_pearson_interval",
    "compare_probe_sets",
    "compare_traces",
    "cycle_times",
    "divergence_order",
    "dominant_paths",
    "estimate_error_rate",
    "exhaustive_bitflips",
    "fault_listing",
    "format_propagation_report",
    "full_report",
    "intra_cycle_times",
    "per_target_table",
    "propagation_path",
    "random_analog_injections",
    "random_bitflips",
    "random_mbus",
    "reachable_outputs",
    "required_sample_size",
    "run_campaign",
    "sample",
    "set_sweep",
    "signature_of",
    "to_csv",
    "wilson_interval",
]
