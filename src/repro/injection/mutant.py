"""Mutant-based injection into digital state.

The paper's second instrumentation mechanism (Section 3.2): instead of
adding blocks between existing ones, "some blocks in the initial
description have to be directly modified ... the modified description
of the block is called a mutant", which is "more difficult but much
more powerful" because it can reach *memorised* signals.

In this library every sequential component already exposes its memory
elements through ``state_signals()``; :class:`MutantInjector` is the
runtime face of the mutant: it resolves qualified state names and
flips, sets or pins stored bits at programmed times.
"""

from __future__ import annotations

from ..core.errors import InjectionError
from ..core.hierarchy import collect_state_signals
from ..core.logic import flip, logic
from ..faults.bitflip import BitFlip, MultipleBitUpset


class MutantInjector:
    """Bit-flip / state-corruption injector over a design hierarchy.

    :param sim: the simulator.
    :param root: hierarchy root component whose state is injectable.
    """

    def __init__(self, sim, root):
        self.sim = sim
        self.root = root
        self._index = dict(collect_state_signals(root))
        self.log = []

    # -- target resolution --------------------------------------------------

    def targets(self, pattern="*"):
        """Qualified names of injectable state bits (sorted)."""
        from ..core.hierarchy import glob_match

        return sorted(
            name for name in self._index if glob_match(name, pattern)
        )

    def signal_for(self, target):
        """Resolve a qualified state name to its signal.

        :raises InjectionError: for unknown targets.
        """
        try:
            return self._index[target]
        except KeyError:
            known = ", ".join(sorted(self._index)[:8])
            raise InjectionError(
                f"unknown state target {target!r}; known targets start "
                f"with: {known} ..."
            ) from None

    def refresh(self):
        """Re-scan the hierarchy (after adding components)."""
        self._index = dict(collect_state_signals(self.root))

    # -- immediate operations -------------------------------------------------

    def flip_now(self, target):
        """Invert the stored bit immediately (returns new value)."""
        sig = self.signal_for(target)
        new_value = flip(sig.value)
        sig.deposit(new_value)
        self.log.append((self.sim.now, target, "flip", new_value))
        return new_value

    def set_now(self, target, value):
        """Deposit a specific level immediately."""
        sig = self.signal_for(target)
        value = logic(value)
        sig.deposit(value)
        self.log.append((self.sim.now, target, "set", value))
        return value

    # -- scheduled operations ---------------------------------------------------

    def flip_at(self, target, time):
        """Schedule an SEU bit-flip at absolute ``time``."""
        self.signal_for(target)  # validate early
        self.sim.at(time, lambda: self.flip_now(target))

    def set_at(self, target, value, time):
        """Schedule a state overwrite at absolute ``time``."""
        self.signal_for(target)
        self.sim.at(time, lambda: self.set_now(target, value))

    def stick(self, target, value, t_start, t_end=None):
        """Pin a state bit (stuck-at on a memory element)."""
        sig = self.signal_for(target)
        value = logic(value)
        self.sim.at(t_start, lambda: sig.force(value))
        if t_end is not None:
            self.sim.at(t_end, sig.release)

    # -- fault-model application ---------------------------------------------------

    def apply(self, fault):
        """Arm a :class:`BitFlip` or :class:`MultipleBitUpset`.

        :raises InjectionError: for other fault types.
        """
        if isinstance(fault, BitFlip):
            self.flip_at(fault.target, fault.time)
        elif isinstance(fault, MultipleBitUpset):
            for target in fault.targets():
                self.flip_at(target, fault.time)
        else:
            raise InjectionError(
                f"mutant injector cannot apply {type(fault).__name__}"
            )
        return fault
