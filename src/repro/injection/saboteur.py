"""Saboteurs: extra blocks inserted into the circuit to inject faults.

Two families, mirroring Section 3.2 / 4.2 of the paper:

* :class:`CurrentPulseSaboteur` — the analog saboteur.  It attaches to
  a :class:`~repro.core.node.CurrentNode` and superposes a transient
  current waveform on the node, "by superposition of the current spike
  with the normal current at the target node".  It is the Python
  equivalent of the generic VHDL-AMS ``GenCur`` entity of Figure 4.
  Scheduling an injection automatically registers a solver refinement
  window so the picosecond pulse edges are resolved.

* :class:`ControlledCurrentSaboteur` — a literal port of ``GenCur``:
  generics (RT, FT, PA), an external digital injection-control signal,
  and an output current that ramps after the control like the
  ``'ramp(RT, FT)`` attribute; the pulse width PW is the duration of
  the control pulse.

* :class:`DigitalSaboteur` — a serial saboteur spliced into a digital
  interconnection, able to pass the value through, invert it, stick it,
  or pulse it for a programmed window.
"""

from __future__ import annotations

from ..core.component import AnalogBlock, DigitalComponent
from ..core.errors import InjectionError
from ..core.logic import Logic, flip, logic, logic_buf, logic_not
from ..core.node import as_current_node
from ..faults.models import AnalogTransient


class CurrentPulseSaboteur(AnalogBlock):
    """Programmable current-pulse saboteur on a current node.

    :param node: target :class:`CurrentNode`.
    :param refine_margin: extra time around each pulse kept at the
        fine solver step (default 2 ns).
    :param refine_points_per_edge: solver points across the fastest
        pulse edge inside the refinement window.
    """

    def __init__(self, sim, name, node, refine_margin=2e-9,
                 refine_points_per_edge=8, parent=None):
        super().__init__(sim, name, parent=parent)
        self.node = self.writes_node(as_current_node(node))
        self.refine_margin = float(refine_margin)
        self.refine_points_per_edge = int(refine_points_per_edge)
        self._injections = []
        self.injected_charge = 0.0

    @staticmethod
    def window_for(transient, time, refine_margin=2e-9,
                   refine_points_per_edge=8):
        """The ``(t0, t1, dt)`` refinement window one injection needs.

        Exposed so a campaign can pre-apply the *union* of all its
        faults' windows to the golden run and every faulty run: all
        runs then integrate on the same time grid, and golden/faulty
        differences reflect the fault, never the solver.
        """
        dt_fine = transient.suggested_dt(refine_points_per_edge)
        return (
            max(0.0, time - refine_margin),
            time + transient.duration + refine_margin,
            dt_fine,
        )

    def schedule(self, transient, time):
        """Arm one transient injection starting at absolute ``time``.

        :param transient: an :class:`AnalogTransient` (trapezoid or
            double exponential).
        :raises InjectionError: for invalid transients or past times.
        """
        if not isinstance(transient, AnalogTransient):
            raise InjectionError(
                f"saboteur {self.name}: {transient!r} is not an analog "
                "transient fault model"
            )
        if time < self.sim.now:
            raise InjectionError(
                f"saboteur {self.name}: injection time {time} is in the past"
            )
        self._injections.append((float(time), transient))
        t0, t1, dt_fine = self.window_for(
            transient, time, self.refine_margin, self.refine_points_per_edge
        )
        self.sim.analog.add_refinement_window(t0, t1, dt_fine)
        self.injected_charge += transient.charge()
        return transient

    def active_injections(self, t):
        """Transients whose support covers time ``t``."""
        return [
            (t0, tr) for t0, tr in self._injections if t0 <= t < t0 + tr.duration
        ]

    def step(self, t, dt):
        for t0, transient in self._injections:
            if t0 <= t < t0 + transient.duration:
                self.node.add_current(transient.current(t - t0), source=self.path)

    def step_ensemble(self, t, dt, ensemble):
        """Batched :meth:`step`: per-variant pulse currents at once.

        The injection table lives in the ensemble (one pulse per
        variant), not in :attr:`_injections` — batched variants never
        call :meth:`schedule`, their refinement windows having been
        pre-applied by the campaign's shared-window union.
        """
        plan = ensemble.plan_for(self)
        if plan is None:
            return
        currents = plan.currents(t)
        if currents is not None:
            self.node.add_current(currents, source=self.path)

    def clear(self):
        """Drop all armed injections (the windows remain registered)."""
        self._injections.clear()


class ControlledCurrentSaboteur(AnalogBlock):
    """Faithful port of the paper's Figure 4 ``GenCur`` saboteur.

    Generics RT, FT and PA; the output current follows an internal
    target (PA while the injection-control signal is high, else 0)
    with linear ramps of slope ``PA/RT`` up and ``PA/FT`` down —
    VHDL-AMS ``inti'ramp(RT, FT)`` semantics.  The pulse width PW is
    therefore set by the duration of the control pulse, exactly as in
    the paper ("the duration of the current pulse (PW) is in this
    example controlled through the duration of the external injection
    control signal").

    :param inj: digital injection-control signal.
    :param out_cur: target current node.
    :param rt, ft: ramp times (seconds).
    :param pa: plateau amplitude (amperes).
    """

    def __init__(self, sim, name, inj, out_cur, rt, ft, pa, parent=None):
        super().__init__(sim, name, parent=parent)
        if rt <= 0 or ft <= 0:
            raise InjectionError(f"saboteur {name}: RT and FT must be positive")
        self.inj = inj
        self.node = self.writes_node(as_current_node(out_cur))
        self.rt = float(rt)
        self.ft = float(ft)
        self.pa = float(pa)
        self._current = 0.0

    def step(self, t, dt):
        target = self.pa if logic(self.inj.value).is_high() else 0.0
        if dt > 0 and self._current != target:
            if target > self._current:
                rate = abs(self.pa) / self.rt
                self._current = min(self._current + rate * dt, target)
            else:
                rate = abs(self.pa) / self.ft
                self._current = max(self._current - rate * dt, target)
        if self._current:
            self.node.add_current(self._current, source=self.path)


#: Pass-through modes of the digital saboteur.
MODE_TRANSPARENT = "transparent"
MODE_STUCK = "stuck"
MODE_INVERT = "invert"


class DigitalSaboteur(DigitalComponent):
    """Serial saboteur spliced into a digital interconnection.

    In transparent mode the output follows the input (zero delay).
    Fault modes:

    * :meth:`stick` — pin the output to a level for a window,
    * :meth:`invert` — invert the passing value for a window,
    * :meth:`pulse` — SET-style: invert (or force) for a short width.

    :param sig_in: upstream signal (original driver side).
    :param sig_out: downstream signal (readers connect here).
    """

    def __init__(self, sim, name, sig_in, sig_out, parent=None):
        super().__init__(sim, name, parent=parent)
        self.sig_in = sig_in
        self.sig_out = sig_out
        self._driver = sig_out.driver(owner=self)
        self.mode = MODE_TRANSPARENT
        self.stuck_value = None
        self.activations = 0
        self.process(self._propagate, sensitivity=[sig_in])

    def _propagate(self):
        value = self.sig_in.value
        if self.mode == MODE_TRANSPARENT:
            self._driver.set(logic_buf(value))
        elif self.mode == MODE_STUCK:
            self._driver.set(self.stuck_value)
        elif self.mode == MODE_INVERT:
            self._driver.set(logic_not(value))

    def _set_mode(self, mode, stuck_value=None):
        self.mode = mode
        self.stuck_value = stuck_value
        self.activations += 1
        self._propagate()

    def stick(self, value, t_start, t_end=None):
        """Pin the output to ``value`` over ``[t_start, t_end]``."""
        value = logic(value)
        self.sim.at(t_start, lambda: self._set_mode(MODE_STUCK, value))
        if t_end is not None:
            self.sim.at(t_end, lambda: self._set_mode(MODE_TRANSPARENT))

    def invert(self, t_start, t_end=None):
        """Invert the passing value over ``[t_start, t_end]``."""
        self.sim.at(t_start, lambda: self._set_mode(MODE_INVERT))
        if t_end is not None:
            self.sim.at(t_end, lambda: self._set_mode(MODE_TRANSPARENT))

    def pulse(self, t_start, width, value=None):
        """SET pulse: disturb the output for ``width`` seconds.

        ``value=None`` inverts whatever is passing; otherwise the
        output is forced to ``value`` for the window.
        """
        if width <= 0:
            raise InjectionError(f"saboteur {self.name}: width must be positive")
        if value is None:
            self.invert(t_start, t_start + width)
        else:
            self.stick(value, t_start, t_start + width)
