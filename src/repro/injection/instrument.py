"""Design instrumentation pass.

The paper instruments the circuit description *before* simulation
(Figure 3: digital blocks get mutants, analog blocks get saboteurs).
:func:`instrument` walks a live design and prepares both mechanisms,
returning an :class:`Instrumentation` handle listing every legal
injection target — the information the designer reviews during the
campaign-definition step.
"""

from __future__ import annotations

from ..core.hierarchy import (
    collect_current_nodes,
    collect_state_signals,
    glob_match,
)
from .controller import InjectionController
from .saboteur import CurrentPulseSaboteur


class Instrumentation:
    """The instrumented view of a design.

    :ivar controller: ready :class:`InjectionController`.
    :ivar analog_targets: current-node names with saboteurs attached.
    :ivar digital_targets: qualified state names reachable by mutants.
    """

    def __init__(self, controller, analog_targets, digital_targets):
        self.controller = controller
        self.analog_targets = list(analog_targets)
        self.digital_targets = list(digital_targets)

    @property
    def sim(self):
        """The underlying simulator."""
        return self.controller.sim

    def summary(self):
        """Human-readable inventory of injection targets."""
        lines = [
            f"analog saboteur targets ({len(self.analog_targets)}):",
        ]
        lines.extend(f"  {name}" for name in self.analog_targets)
        lines.append(f"digital mutant targets ({len(self.digital_targets)}):")
        lines.extend(f"  {name}" for name in self.digital_targets)
        return "\n".join(lines)


def instrument(sim, root, analog_pattern="*", digital_pattern="*",
               pre_place_saboteurs=True):
    """Instrument a live design for fault injection.

    :param sim: the simulator.
    :param root: hierarchy root component.
    :param analog_pattern: fnmatch filter on current-node names that
        receive saboteurs.
    :param digital_pattern: fnmatch filter on qualified state names
        kept as mutant targets.
    :param pre_place_saboteurs: when True a saboteur component is
        created on every matching node up front (the library-based
        instrumentation of Section 4.2: "since the saboteur description
        can be made available in a library, the instrumentation of the
        analog blocks is very easy"); when False saboteurs are created
        lazily at injection time.
    :returns: an :class:`Instrumentation`.
    """
    saboteurs = {}
    analog_targets = [
        name for name, _node in collect_current_nodes(sim, analog_pattern)
    ]
    if pre_place_saboteurs:
        for name in analog_targets:
            saboteurs[name] = CurrentPulseSaboteur(
                sim, f"saboteur@{name.replace('/', '.')}", sim.nodes[name]
            )
    digital_targets = [
        name
        for name, _sig in collect_state_signals(root)
        if glob_match(name, digital_pattern)
    ]
    controller = InjectionController(sim, root, saboteurs=saboteurs)
    return Instrumentation(controller, analog_targets, digital_targets)
