"""Injection mechanisms: saboteurs, mutants, and the run-time controller."""

from .controller import CurrentInjection, InjectionController
from .instrument import Instrumentation, instrument
from .mutant import MutantInjector
from .saboteur import (
    ControlledCurrentSaboteur,
    CurrentPulseSaboteur,
    DigitalSaboteur,
    MODE_INVERT,
    MODE_STUCK,
    MODE_TRANSPARENT,
)

__all__ = [
    "ControlledCurrentSaboteur",
    "CurrentInjection",
    "CurrentPulseSaboteur",
    "DigitalSaboteur",
    "InjectionController",
    "Instrumentation",
    "MODE_INVERT",
    "MODE_STUCK",
    "MODE_TRANSPARENT",
    "MutantInjector",
    "instrument",
]
